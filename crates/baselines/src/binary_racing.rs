//! Binary consensus from **binary readable swap objects** — the
//! Theorem 18/22 regime of Table 1 (rows 3–4).
//!
//! # Substitution note (see DESIGN.md)
//!
//! The paper cites Bowman \[7\] (TR2011-681) for an obstruction-free binary
//! consensus algorithm from `2n-1` binary registers; that technical report
//! is not openly retrievable, so we implement an original algorithm in the
//! same regime — binary historyless objects, `Θ(n)` of them — and report the
//! literature formula `2n-1` separately in the Table 1 bench.
//!
//! # The algorithm: monotone unary racing
//!
//! Shared: two *tracks* `T[0]`, `T[1]` of `L` binary readable swap objects
//! each, all initially 0. The **position** of track `v` is the index of its
//! first 0 cell. Cells are only ever swapped from 0 to 1, so positions are
//! monotone — this is what makes bounded-domain racing safe (no ABA, no
//! hidden overwrites).
//!
//! Process with preference `v` repeats:
//! 1. scan **own** track `v` (reads, in index order) → `a`;
//! 2. scan the **other** track `v̄` → `b`;
//! 3. if `a ≥ b + M` where `M = n + 2`: **decide** `v`;
//! 4. if `b > a`: adopt `v̄` as preference and restart;
//! 5. otherwise attempt to advance: `Swap(T[v][a], 1)` and restart.
//!
//! # Why the margin `M = n + 2` gives agreement
//!
//! Scanning own-track-first means that when the other-track scan observes
//! its frontier cell `b` equal to 0, there is an instant `τ` at which truly
//! `pos_v ≥ a` and `pos_{v̄} ≤ b` (monotonicity). Suppose `p` decides `v`
//! with `a ≥ b + M`. After `τ`, a process advances track `v̄` only if its
//! *own* scan showed `pos_{v̄} ≥ pos_v`; any scan of track `v` completing
//! after `τ` reports `≥ a`, which track `v̄` cannot match until it has grown
//! by `M ≥ n + 1`. Growth can therefore come only from processes whose
//! track-`v` scans predate `τ` — and each process, after one advance,
//! rescans (now post-`τ`) and is blocked. So track `v̄` gains at most `n-1`
//! cells after `τ`, never reaches `b + M ≤ pos_v`, and no process can ever
//! decide `v̄`. The model checker cross-validates this argument at small `n`.
//!
//! # Bounded laps
//!
//! Positions cannot exceed `L`; a process that needs to advance past the end
//! of a track parks in a read-only `Stuck` phase. This is the documented
//! trade-off versus Bowman's construction: our algorithm is obstruction-free
//! only while fewer than `L` total advances have occurred on a track.
//! Constructors size `L` generously (`track_len` defaults to `8(M+1)`), and
//! [`BinaryRacing::space`] — what Table 1 measures — is `2L + O(1) = Θ(n)`.

use swapcons_objects::{Domain, ObjectOp, ObjectSchema, Response};
use swapcons_sim::{
    KSetTask, ObjectClasses, ObjectId, ProcessId, Protocol, Renaming, Symmetry, Transition,
};

/// Binary consensus from `2L` binary readable swap objects (two monotone
/// unary tracks).
///
/// # Example
///
/// ```
/// use swapcons_baselines::BinaryRacing;
/// use swapcons_sim::{Configuration, ProcessId, runner};
///
/// let p = BinaryRacing::new(3);
/// let mut c = Configuration::initial(&p, &[1, 0, 1]).unwrap();
/// let out = runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
/// assert_eq!(out.decision, 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinaryRacing {
    n: usize,
    track_len: usize,
}

impl BinaryRacing {
    /// An instance for `n` processes with the default track length
    /// `8(M+1)` where `M = n+2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        let m = n + 2;
        Self::with_track_len(n, 8 * (m + 1))
    }

    /// An instance with an explicit track length (tests use short tracks to
    /// exercise the `Stuck` guard).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `track_len < margin + 1`.
    pub fn with_track_len(n: usize, track_len: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        assert!(
            track_len > n + 2,
            "track must be longer than the decision margin"
        );
        BinaryRacing { n, track_len }
    }

    /// The decision margin `M = n + 2`.
    pub fn margin(&self) -> usize {
        self.n + 2
    }

    /// Length of each track.
    pub fn track_len(&self) -> usize {
        self.track_len
    }

    /// Number of binary objects: `2L`.
    pub fn space(&self) -> usize {
        2 * self.track_len
    }

    /// Solo step bound: a solo process needs at most `M+1` advances, each
    /// preceded by two full-track scans.
    pub fn solo_step_bound(&self) -> usize {
        (self.margin() + 2) * (2 * self.track_len + 1)
    }

    fn cell(&self, track: u8, idx: usize) -> ObjectId {
        ObjectId(track as usize * self.track_len + idx)
    }
}

/// Scan/advance phase of a [`BinaryRacing`] process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BrPhase {
    /// Scanning own track at the given index.
    ScanMine {
        /// Cell index being read.
        idx: usize,
    },
    /// Scanning the other track; `mine` holds the completed own-track
    /// position.
    ScanOther {
        /// Cell index being read.
        idx: usize,
        /// Own track position from the preceding scan.
        mine: usize,
    },
    /// Poised to swap 1 into the own track's frontier cell.
    Advance {
        /// The frontier index to set.
        at: usize,
    },
    /// Track exhausted: park on read-only spins (bounded-lap guard).
    Stuck,
}

/// Local state of a [`BinaryRacing`] process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BrState {
    /// Current preference (0 or 1).
    pub pref: u8,
    /// Current phase.
    pub phase: BrPhase,
}

impl Protocol for BinaryRacing {
    type State = BrState;
    type Value = u64;

    fn name(&self) -> String {
        format!(
            "binary racing: {}-process binary consensus from {} binary objects",
            self.n,
            self.space()
        )
    }

    fn task(&self) -> KSetTask {
        KSetTask::consensus(self.n)
    }

    fn num_objects(&self) -> usize {
        self.space()
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::readable_swap(Domain::BINARY)
    }

    fn initial_value(&self, _obj: ObjectId) -> u64 {
        0
    }

    fn initial_state(&self, _pid: ProcessId, input: u64) -> BrState {
        BrState {
            pref: input as u8,
            phase: BrPhase::ScanMine { idx: 0 },
        }
    }

    fn poised(&self, state: &BrState) -> (ObjectId, ObjectOp<u64>) {
        match state.phase {
            BrPhase::ScanMine { idx } => (self.cell(state.pref, idx), ObjectOp::read()),
            BrPhase::ScanOther { idx, .. } => (self.cell(1 - state.pref, idx), ObjectOp::read()),
            BrPhase::Advance { at } => (self.cell(state.pref, at), ObjectOp::swap(1)),
            BrPhase::Stuck => (
                self.cell(state.pref, self.track_len - 1),
                ObjectOp::read(),
            ),
        }
    }

    fn observe(&self, mut state: BrState, response: Response<u64>) -> Transition<BrState> {
        let bit = response.expect_value("reads and swaps return the cell value");
        match state.phase {
            BrPhase::ScanMine { idx } => {
                if bit == 1 && idx + 1 < self.track_len {
                    state.phase = BrPhase::ScanMine { idx: idx + 1 };
                } else {
                    // Frontier found (or track full).
                    let mine = if bit == 1 { idx + 1 } else { idx };
                    state.phase = BrPhase::ScanOther { idx: 0, mine };
                }
                Transition::Continue(state)
            }
            BrPhase::ScanOther { idx, mine } => {
                if bit == 1 && idx + 1 < self.track_len {
                    state.phase = BrPhase::ScanOther { idx: idx + 1, mine };
                    return Transition::Continue(state);
                }
                let other = if bit == 1 { idx + 1 } else { idx };
                if mine >= other + self.margin() {
                    return Transition::Decide(u64::from(state.pref));
                }
                if other > mine {
                    // Adopt the leader and rescan.
                    state.pref = 1 - state.pref;
                    state.phase = BrPhase::ScanMine { idx: 0 };
                } else if mine < self.track_len {
                    state.phase = BrPhase::Advance { at: mine };
                } else {
                    state.phase = BrPhase::Stuck;
                }
                Transition::Continue(state)
            }
            BrPhase::Advance { .. } => {
                // Whether we won the cell (bit == 0) or lost the race to it
                // (bit == 1), positions moved: rescan from scratch.
                state.phase = BrPhase::ScanMine { idx: 0 };
                Transition::Continue(state)
            }
            BrPhase::Stuck => {
                // Bounded-lap guard: remain parked.
                Transition::Continue(state)
            }
        }
    }

    // States carry no process id at all (pref + scan phase only), so any
    // process permutation is a symmetry with the default identity rename
    // hooks. The two *input values* are interchangeable only together with
    // the two tracks they race on: the value-coupled object class ties the
    // track swap to exactly the σ that swaps the preference values, so a
    // renaming either moves both or neither. Cell contents are structural
    // fill marks (0/1 progress bits), never input values — the default
    // identity `rename_value` is correct; only the embedded preference in
    // the local state is nominal.
    fn symmetry(&self) -> Symmetry {
        let track = |t: usize| {
            (0..self.track_len)
                .map(|i| ObjectId(t * self.track_len + i))
                .collect()
        };
        Symmetry::full_process(self.n)
            .with_interchangeable_values()
            .with_object_classes(ObjectClasses::value_coupled(
                vec![track(0), track(1)],
                vec![0, 1],
            ))
    }

    fn rename_state(&self, state: &BrState, renaming: &Renaming) -> BrState {
        BrState {
            pref: renaming.value(u64::from(state.pref)) as u8,
            phase: state.phase.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_sim::explore::ModelChecker;
    use swapcons_sim::runner::{self, solo_run_cloned};
    use swapcons_sim::scheduler::SeededRandom;
    use swapcons_sim::Configuration;

    #[test]
    fn space_is_2l_binary_objects() {
        let p = BinaryRacing::new(4);
        assert_eq!(p.space(), 2 * p.track_len());
        assert!(p.schemas().iter().all(|s| s.domain() == Domain::BINARY));
    }

    #[test]
    fn solo_decides_own_input() {
        for n in 2..=6 {
            let p = BinaryRacing::new(n);
            let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
            let config = Configuration::initial(&p, &inputs).unwrap();
            for (pid, &input) in inputs.iter().enumerate() {
                let (out, _) =
                    solo_run_cloned(&p, &config, ProcessId(pid), p.solo_step_bound()).unwrap();
                assert_eq!(out.decision, input, "n={n} pid={pid}");
            }
        }
    }

    #[test]
    fn contention_then_solo_agrees() {
        for seed in 0..25 {
            let p = BinaryRacing::new(3);
            let inputs = [0, 1, 0];
            let mut c = Configuration::initial(&p, &inputs).unwrap();
            runner::run(&p, &mut c, &mut SeededRandom::new(seed), 150).unwrap();
            for pid in c.running() {
                let out = runner::solo_run(&p, &mut c, pid, p.solo_step_bound())
                    .unwrap_or_else(|e| panic!("seed {seed} {pid}: {e}"));
                assert!(out.steps <= p.solo_step_bound());
            }
            assert_eq!(c.decided_values().len(), 1, "agreement, seed {seed}");
            assert!(p.task().check(&inputs, &c.decisions()).is_ok());
        }
    }

    #[test]
    fn unanimous_inputs_never_advance_the_other_track() {
        let p = BinaryRacing::new(3);
        let inputs = [1, 1, 1];
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        for pid in 0..3 {
            runner::solo_run(&p, &mut c, ProcessId(pid), p.solo_step_bound()).unwrap();
        }
        assert_eq!(c.decided_values(), [1].into_iter().collect());
        // Track 0 cells must all still be 0.
        for i in 0..p.track_len() {
            assert_eq!(*c.value(ObjectId(i)), 0, "track-0 cell {i} was touched");
        }
    }

    #[test]
    fn cells_are_monotone() {
        // No execution may ever swap a 1 back to 0.
        let p = BinaryRacing::new(3);
        let mut c = Configuration::initial(&p, &[0, 1, 0]).unwrap();
        let mut sched = SeededRandom::new(5);
        let out = runner::run(&p, &mut c, &mut sched, 300).unwrap();
        for step in out.history.iter() {
            if let Some(&v) = matches!(step.op.kind(), swapcons_objects::OpKind::Swap)
                .then(|| step.op.payload())
                .flatten()
            {
                assert_eq!(v, 1, "only 1s are ever swapped in");
            }
        }
    }

    #[test]
    fn short_track_parks_in_stuck_instead_of_misbehaving() {
        // A deliberately tiny track: two duelling processes exhaust it.
        let p = BinaryRacing::with_track_len(2, 6);
        let inputs = [0, 1];
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        // Alternate long enough to exhaust 6 cells per track.
        let mut sched = swapcons_sim::scheduler::RoundRobin::new();
        runner::run(&p, &mut c, &mut sched, 2_000).unwrap();
        // Safety must hold regardless of whether anyone decided.
        assert!(p.task().check(&inputs, &c.decisions()).is_ok());
    }

    #[test]
    fn model_check_n2_bounded() {
        let p = BinaryRacing::with_track_len(2, 8);
        let report = ModelChecker::new(30, 250_000).check_all_inputs(&p);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn symmetry_declaration_is_equivariant() {
        swapcons_sim::canon::assert_equivariant(
            &BinaryRacing::with_track_len(3, 8),
            &[1, 1, 1],
            10,
            5,
        );
        swapcons_sim::canon::assert_equivariant(
            &BinaryRacing::with_track_len(3, 8),
            &[0, 1, 0],
            10,
            5,
        );
        // Balanced inputs: the run group contains track-swapping renamings
        // (σ ≠ id coupled to τ), exercised against real executions.
        swapcons_sim::canon::assert_equivariant(
            &BinaryRacing::with_track_len(4, 8),
            &[0, 1, 0, 1],
            10,
            5,
        );
    }

    #[test]
    fn track_swap_composes_into_the_run_group() {
        // [0, 1] admits exactly one non-identity renaming: π = (p0 p1)
        // with σ = (0 1), which the value-coupled class forces to swap the
        // two tracks. Before object symmetry this group was trivial.
        let p = BinaryRacing::with_track_len(2, 8);
        let canon = swapcons_sim::Canonicalizer::for_inputs(&p, &[0, 1]);
        assert_eq!(canon.group_order(), 2);
        let g = &canon.renamings()[0];
        assert!(!g.is_value_identity());
        assert!(!g.is_object_identity());
        // Cell i of track 0 maps to cell i of track 1 and vice versa.
        assert_eq!(g.object(ObjectId(0)), ObjectId(p.track_len()));
        assert_eq!(g.object(ObjectId(p.track_len())), ObjectId(0));
        // Balanced n=4: any π mapping the 0-holders onto the 1-holders (or
        // preserving both) works — |S2 × S2| · 2 = 8.
        let p4 = BinaryRacing::with_track_len(4, 8);
        assert_eq!(
            swapcons_sim::Canonicalizer::for_inputs(&p4, &[0, 1, 0, 1]).group_order(),
            8
        );
    }

    #[test]
    fn track_swap_orbit_count_hand_computed() {
        // Depth 1 from [0, 1]: the initial configuration plus one child per
        // process, each having read cell 0 of its own (still empty) track.
        // The track swap maps the p0-child onto the p1-child: 3 full
        // states, 2 orbits.
        let p = BinaryRacing::with_track_len(2, 8);
        let full = ModelChecker::new(1, 1_000).check(&p, &[0, 1]);
        let reduced = ModelChecker::new(1, 1_000)
            .with_symmetry_reduction()
            .check(&p, &[0, 1]);
        assert_eq!(full.states, 3, "{full}");
        assert_eq!(reduced.states, 2, "{reduced}");
        assert_eq!(reduced.symmetry_group, 2);
        assert!(full.same_verdict(&reduced));
    }

    #[test]
    fn track_swap_halves_distinct_input_checks() {
        // The headline reduction: [0, 1] used to have a trivial group (no
        // value symmetry without the track coupling); now every
        // configuration pairs up with its mirrored twin except the rare
        // self-symmetric ones.
        let p = BinaryRacing::with_track_len(2, 8);
        let full = ModelChecker::new(16, 250_000).check(&p, &[0, 1]);
        let reduced = ModelChecker::new(16, 250_000)
            .with_symmetry_reduction()
            .check(&p, &[0, 1]);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert_eq!(reduced.symmetry_group, 2);
        assert!(
            reduced.states * 19 <= full.states * 10,
            "track swap must collapse ~half the states: {full} vs {reduced}"
        );
    }

    #[test]
    fn reduced_model_check_matches_full() {
        let p = BinaryRacing::with_track_len(3, 8);
        let full = ModelChecker::new(12, 250_000).check(&p, &[1, 1, 1]);
        let reduced = ModelChecker::new(12, 250_000)
            .with_symmetry_reduction()
            .check(&p, &[1, 1, 1]);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert_eq!(reduced.symmetry_group, 6, "unanimous inputs admit S3");
        assert!(reduced.states * 3 <= full.states, "{full} vs {reduced}");
    }

    #[test]
    fn model_check_n3_bounded() {
        let p = BinaryRacing::with_track_len(3, 8);
        let report = ModelChecker::new(16, 250_000).check(&p, &[0, 1, 1]);
        assert!(report.passed(), "{report}");
    }
}
