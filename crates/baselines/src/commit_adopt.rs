//! Obstruction-free m-valued consensus from `2n` single-writer registers
//! via commit–adopt rounds.
//!
//! This is the register baseline for Table 1's first row. The literature
//! algorithms cited by the paper (\[3, 12\]) are randomized wait-free and use
//! exactly `n` registers; we implement instead a *deterministic
//! obstruction-free* protocol with a short, classical safety argument, at
//! the cost of a factor-2 in space (two register arrays). The benches report
//! both the literature formula (`n`) and our measured count (`2n`).
//!
//! # The protocol
//!
//! Shared: single-writer registers `A[0..n-1]` and `B[0..n-1]` (register `j`
//! written only by process `j`), each holding `(round, value, proposed)`
//! stamps, initially round 0 ("absent").
//!
//! Process `p` with preference `v` runs rounds `r = 1, 2, …`:
//!
//! 1. **Phase 1**: write `A[p] = (r, v)`; read all of `A`. If every entry
//!    with round `r` carries the same value `w`, set `proposal = Some(w)`;
//!    otherwise `None`.
//! 2. **Phase 2**: write `B[p] = (r, proposal.unwrap_or(v), proposal.is_some())`;
//!    read all of `B`. If every round-`r` entry has `proposed = true`,
//!    **decide** its value. Otherwise, if any round-`r` entry has
//!    `proposed = true`, adopt its value as the new preference. Enter round
//!    `r+1`.
//!
//! If during any read a stamp with a round greater than `r` is observed, the
//! process jumps to that round, adopting the observed value (preferring a
//! `proposed` stamp).
//!
//! # Why it is safe
//!
//! *At most one value is proposed per round*: two proposers both write `A`
//! before reading all of `A`; the later reader sees both entries, so
//! unanimity forces equal values.
//!
//! *A commit at round `r` fixes all later preferences*: suppose `p` decides
//! `w` at round `r`, so every round-`r` entry of `B` that existed when `p`
//! read it was `(w, proposed)`. Any process that finishes round `r`
//! afterwards wrote its `B` entry before reading `B`, hence reads `B[p] =
//! (r, w, proposed)` and adopts `w` (and proposal uniqueness means no other
//! value can be proposed at `r`). Jumpers into rounds `> r` can only adopt
//! values carried by processes that exited round `r`, i.e. `w`. Therefore
//! every preference from round `r+1` on equals `w`, and only `w` can ever be
//! decided.
//!
//! *Obstruction-freedom*: a process running alone jumps to the maximum
//! round, runs at most one contended round, and then a round in which only
//! its own stamps exist — unanimity on both phases — and decides. The solo
//! step bound is `3(2n + 2)`.

use std::fmt;

use swapcons_objects::{HistorylessOp, ObjectOp, ObjectSchema, Response};
use swapcons_sim::{
    KSetTask, ObjectId, ProcessId, Protocol, Renaming, SimValue, Symmetry, Transition,
};

/// A register stamp: `(round, value, proposed)`. Round 0 means "absent"
/// (the initial value).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Stamp {
    /// The round this stamp belongs to (0 = initial/absent).
    pub round: u64,
    /// The value carried.
    pub value: u64,
    /// Whether the value was a phase-1 unanimous proposal (only meaningful
    /// in `B` registers).
    pub proposed: bool,
}

impl Stamp {
    /// The initial "absent" stamp.
    pub fn absent() -> Self {
        Stamp {
            round: 0,
            value: 0,
            proposed: false,
        }
    }
}

impl SimValue for Stamp {}

/// Obstruction-free m-valued consensus from `2n` single-writer registers.
///
/// # Example
///
/// ```
/// use swapcons_baselines::CommitAdoptConsensus;
/// use swapcons_sim::{Configuration, ProcessId, runner};
///
/// let p = CommitAdoptConsensus::new(3, 4);
/// let mut c = Configuration::initial(&p, &[2, 3, 1]).unwrap();
/// // Solo run: p1 decides its own input within the solo bound.
/// let out = runner::solo_run(&p, &mut c, ProcessId(1), p.solo_step_bound()).unwrap();
/// assert_eq!(out.decision, 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitAdoptConsensus {
    n: usize,
    m: u64,
}

impl CommitAdoptConsensus {
    /// An instance for `n` processes with inputs from `{0, …, m-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `m == 0`.
    pub fn new(n: usize, m: u64) -> Self {
        assert!(n > 0 && m > 0, "need n >= 1 processes and m >= 1 values");
        CommitAdoptConsensus { n, m }
    }

    /// Number of registers: `2n` (arrays `A` and `B`).
    pub fn space(&self) -> usize {
        2 * self.n
    }

    /// Solo step bound: at most 3 rounds of `2n + 2` steps each.
    pub fn solo_step_bound(&self) -> usize {
        3 * (2 * self.n + 2)
    }

    fn a_reg(&self, j: usize) -> ObjectId {
        ObjectId(j)
    }

    fn b_reg(&self, j: usize) -> ObjectId {
        ObjectId(self.n + j)
    }
}

/// Which read/write the process is poised to perform within its round.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CaPhase {
    /// Write `A[me] = (round, pref)`.
    WriteA,
    /// Reading `A[j]`; `unanimous` holds the candidate proposal so far.
    ReadA {
        /// Next register index to read.
        j: usize,
        /// `Some(w)` while all round-`r` entries seen so far equal `w`.
        unanimous: Option<u64>,
    },
    /// Write `B[me] = (round, value, proposed)`.
    WriteB {
        /// The phase-1 proposal, if unanimity held.
        proposal: Option<u64>,
    },
    /// Reading `B[j]`.
    ReadB {
        /// Next register index to read.
        j: usize,
        /// The phase-1 proposal.
        proposal: Option<u64>,
        /// Whether every round-`r` entry seen so far is `proposed`.
        all_proposed: bool,
        /// A proposed value seen, if any (adoption candidate).
        adopt: Option<u64>,
    },
}

/// Local state of a commit–adopt process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CaState {
    /// This process.
    pub pid: ProcessId,
    /// Current preference.
    pub pref: u64,
    /// Current round (starts at 1).
    pub round: u64,
    /// Position within the round.
    pub phase: CaPhase,
}

impl fmt::Display for CaState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@r{} pref={} {:?}",
            self.pid, self.round, self.pref, self.phase
        )
    }
}

impl CaState {
    /// Jump to a higher round observed in a stamp, adopting its value.
    fn jump(mut self, stamp: &Stamp) -> Self {
        debug_assert!(stamp.round > self.round);
        self.round = stamp.round;
        self.pref = stamp.value;
        self.phase = CaPhase::WriteA;
        self
    }
}

impl Protocol for CommitAdoptConsensus {
    type State = CaState;
    type Value = Stamp;

    fn name(&self) -> String {
        format!(
            "commit-adopt consensus: {} processes, {} registers",
            self.n,
            self.space()
        )
    }

    fn task(&self) -> KSetTask {
        KSetTask::new(self.n, 1, self.m)
    }

    fn num_objects(&self) -> usize {
        self.space()
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::register()
    }

    fn initial_value(&self, _obj: ObjectId) -> Stamp {
        Stamp::absent()
    }

    fn initial_state(&self, pid: ProcessId, input: u64) -> CaState {
        CaState {
            pid,
            pref: input,
            round: 1,
            phase: CaPhase::WriteA,
        }
    }

    fn poised(&self, state: &CaState) -> (ObjectId, ObjectOp<Stamp>) {
        let me = state.pid.index();
        match &state.phase {
            CaPhase::WriteA => (
                self.a_reg(me),
                HistorylessOp::Write(Stamp {
                    round: state.round,
                    value: state.pref,
                    proposed: false,
                })
                .into(),
            ),
            CaPhase::ReadA { j, .. } => (self.a_reg(*j), ObjectOp::read()),
            CaPhase::WriteB { proposal } => (
                self.b_reg(me),
                HistorylessOp::Write(Stamp {
                    round: state.round,
                    value: proposal.unwrap_or(state.pref),
                    proposed: proposal.is_some(),
                })
                .into(),
            ),
            CaPhase::ReadB { j, .. } => (self.b_reg(*j), ObjectOp::read()),
        }
    }

    fn observe(&self, mut state: CaState, response: Response<Stamp>) -> Transition<CaState> {
        match state.phase.clone() {
            CaPhase::WriteA => {
                state.phase = CaPhase::ReadA {
                    j: 0,
                    unanimous: Some(state.pref),
                };
                Transition::Continue(state)
            }
            CaPhase::ReadA { j, mut unanimous } => {
                let stamp = response.expect_value("read returns a stamp");
                if stamp.round > state.round {
                    return Transition::Continue(state.jump(&stamp));
                }
                if stamp.round == state.round {
                    if let Some(w) = unanimous {
                        if stamp.value != w {
                            unanimous = None;
                        }
                    }
                }
                if j + 1 < self.n {
                    state.phase = CaPhase::ReadA {
                        j: j + 1,
                        unanimous,
                    };
                } else {
                    state.phase = CaPhase::WriteB {
                        proposal: unanimous,
                    };
                }
                Transition::Continue(state)
            }
            CaPhase::WriteB { proposal } => {
                state.phase = CaPhase::ReadB {
                    j: 0,
                    proposal,
                    all_proposed: proposal.is_some(),
                    adopt: proposal,
                };
                Transition::Continue(state)
            }
            CaPhase::ReadB {
                j,
                proposal,
                mut all_proposed,
                mut adopt,
            } => {
                let stamp = response.expect_value("read returns a stamp");
                if stamp.round > state.round {
                    return Transition::Continue(state.jump(&stamp));
                }
                if stamp.round == state.round {
                    if stamp.proposed {
                        // Proposal uniqueness: all proposed stamps of a round
                        // carry the same value.
                        adopt = Some(stamp.value);
                    } else {
                        all_proposed = false;
                    }
                }
                if j + 1 < self.n {
                    state.phase = CaPhase::ReadB {
                        j: j + 1,
                        proposal,
                        all_proposed,
                        adopt,
                    };
                    return Transition::Continue(state);
                }
                // Round complete.
                if all_proposed {
                    let w = proposal.expect("all_proposed implies own stamp was proposed");
                    return Transition::Decide(w);
                }
                if let Some(w) = adopt {
                    state.pref = w;
                }
                state.round += 1;
                state.phase = CaPhase::WriteA;
                Transition::Continue(state)
            }
        }
    }

    // Values are only compared for equality (phase-1 unanimity, proposal
    // adoption), so the whole input domain is interchangeable. Processes are
    // NOT: a mid-scan state records "read registers 0..j", and permuting
    // processes would permute the registers into a non-prefix — the
    // algorithm is symmetric only up to scan reordering, which is coarser
    // than a renaming. Declared honestly: value symmetry alone.
    fn symmetry(&self) -> Symmetry {
        Symmetry::process_classes(Vec::new()).with_interchangeable_values()
    }

    fn rename_state(&self, state: &CaState, renaming: &Renaming) -> CaState {
        let phase = match &state.phase {
            CaPhase::WriteA => CaPhase::WriteA,
            CaPhase::ReadA { j, unanimous } => CaPhase::ReadA {
                j: *j,
                unanimous: unanimous.map(|w| renaming.value(w)),
            },
            CaPhase::WriteB { proposal } => CaPhase::WriteB {
                proposal: proposal.map(|w| renaming.value(w)),
            },
            CaPhase::ReadB {
                j,
                proposal,
                all_proposed,
                adopt,
            } => CaPhase::ReadB {
                j: *j,
                proposal: proposal.map(|w| renaming.value(w)),
                all_proposed: *all_proposed,
                adopt: adopt.map(|w| renaming.value(w)),
            },
        };
        CaState {
            pid: renaming.pid(state.pid),
            pref: renaming.value(state.pref),
            round: state.round,
            phase,
        }
    }

    fn rename_value(&self, _obj: ObjectId, value: &Stamp, renaming: &Renaming) -> Stamp {
        // Round-0 stamps are "absent": their value field is padding, not an
        // input value, and must stay fixed so renamings fix the initial
        // configuration.
        Stamp {
            round: value.round,
            value: if value.round > 0 {
                renaming.value(value.value)
            } else {
                value.value
            },
            proposed: value.proposed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_sim::explore::ModelChecker;
    use swapcons_sim::runner::{self, solo_run_cloned};
    use swapcons_sim::scheduler::SeededRandom;
    use swapcons_sim::Configuration;

    #[test]
    fn uses_2n_registers() {
        let p = CommitAdoptConsensus::new(5, 2);
        assert_eq!(p.space(), 10);
        assert!(p.schemas().iter().all(|s| *s == ObjectSchema::register()));
    }

    #[test]
    fn solo_decides_own_input_within_bound() {
        for n in 1..=6 {
            let p = CommitAdoptConsensus::new(n, 3);
            let inputs: Vec<u64> = (0..n).map(|i| (i % 3) as u64).collect();
            let config = Configuration::initial(&p, &inputs).unwrap();
            for (pid, &input) in inputs.iter().enumerate() {
                let (out, _) =
                    solo_run_cloned(&p, &config, ProcessId(pid), p.solo_step_bound()).unwrap();
                assert_eq!(out.decision, input);
                assert!(
                    out.steps <= 2 * n + 2,
                    "one solo round suffices from the start"
                );
            }
        }
    }

    #[test]
    fn solo_after_contention_still_decides() {
        for seed in 0..20 {
            let n = 4;
            let p = CommitAdoptConsensus::new(n, 2);
            let inputs = [0, 1, 0, 1];
            let mut config = Configuration::initial(&p, &inputs).unwrap();
            runner::run(&p, &mut config, &mut SeededRandom::new(seed), 60).unwrap();
            for pid in config.running() {
                let out = runner::solo_run(&p, &mut config, pid, p.solo_step_bound())
                    .unwrap_or_else(|e| panic!("seed {seed} {pid}: {e}"));
                assert!(out.steps <= p.solo_step_bound());
            }
            assert!(config.all_decided());
            assert!(
                p.task().check(&inputs, &config.decisions()).is_ok(),
                "seed {seed}"
            );
            assert_eq!(config.decided_values().len(), 1, "agreement, seed {seed}");
        }
    }

    #[test]
    fn model_check_n2_bounded() {
        let p = CommitAdoptConsensus::new(2, 2);
        let report = ModelChecker::new(26, 200_000)
            .with_solo_budget(p.solo_step_bound())
            .check_all_inputs(&p);
        assert!(report.passed(), "{report}");
        assert!(report.states > 500, "nontrivial exploration: {report}");
    }

    #[test]
    fn model_check_n3_mixed_inputs_bounded() {
        let p = CommitAdoptConsensus::new(3, 2);
        let report = ModelChecker::new(16, 250_000).check(&p, &[0, 1, 0]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn value_symmetry_is_cross_run_only() {
        // Value-only symmetry admits NO nontrivial renaming of a fixed run:
        // π is forced to the identity (no process classes) and σ must then
        // fix every appearing input — so the per-run group is trivial, and
        // `assert_equivariant` would be vacuous here. Pin that fact…
        let p = CommitAdoptConsensus::new(2, 3);
        assert!(swapcons_sim::Canonicalizer::for_inputs(&p, &[0, 2]).is_trivial());
        // …and test the symmetry where it actually lives: *across* runs.
        // Value-rotated input vectors must produce isomorphic searches —
        // identical verdicts AND identical state counts (value renaming
        // does not perturb discovery order, unlike process renaming).
        let checker = ModelChecker::new(10, 200_000).with_solo_budget(p.solo_step_bound());
        let base = checker.check(&p, &[0, 2]);
        for rotated in [[1, 0], [2, 1]] {
            let other = checker.check(&p, &rotated);
            assert!(base.same_verdict(&other));
            assert_eq!(base.states, other.states, "value rotation {rotated:?}");
        }
        // The rename hooks themselves (Stamp/CaState under a nontrivial σ)
        // are exercised by RegisterKSet, whose immediate-decider class does
        // admit value-changing renamings and delegates to these hooks.
    }

    #[test]
    fn reduced_check_all_inputs_matches_full() {
        // Value-only symmetry contributes nothing within a run (σ must fix
        // the fixed input vector) but collapses the input grid: the 3^2
        // vectors fold to the 2 canonical ones, [0,0] (both inputs equal)
        // and [0,1] (inputs distinct), under first-occurrence value
        // normalization.
        let p = CommitAdoptConsensus::new(2, 3);
        let full = ModelChecker::new(12, 200_000).check_all_inputs(&p);
        let reduced = ModelChecker::new(12, 200_000)
            .with_symmetry_reduction()
            .check_all_inputs(&p);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert!(reduced.states * 2 <= full.states, "{full} vs {reduced}");
    }

    #[test]
    fn proposal_uniqueness_witnessed() {
        // Drive two processes through phase 1 concurrently; at most one
        // proposal may emerge.
        let p = CommitAdoptConsensus::new(2, 2);
        let mut c = Configuration::initial(&p, &[0, 1]).unwrap();
        // Both write A, then both read all of A.
        c.step(&p, ProcessId(0)).unwrap(); // p0 WriteA
        c.step(&p, ProcessId(1)).unwrap(); // p1 WriteA
        for _ in 0..2 {
            c.step(&p, ProcessId(0)).unwrap(); // p0 ReadA x2
            c.step(&p, ProcessId(1)).unwrap(); // p1 ReadA x2
        }
        // Both saw both (1,0) and (1,1): neither proposes.
        for pid in [0, 1] {
            match &c.state(ProcessId(pid)).unwrap().phase {
                CaPhase::WriteB { proposal } => assert_eq!(*proposal, None),
                other => panic!("expected WriteB, got {other:?}"),
            }
        }
    }

    #[test]
    fn jump_rule_fast_forwards_laggards() {
        let p = CommitAdoptConsensus::new(2, 2);
        let mut c = Configuration::initial(&p, &[0, 1]).unwrap();
        // p0 decides solo (round 1, all alone in its reads? no: p1's stamps
        // are absent, so p0 is unanimous and decides).
        runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
        assert_eq!(c.decision(ProcessId(0)), Some(0));
        // p1 now runs: it must adopt p0's committed value.
        let out = runner::solo_run(&p, &mut c, ProcessId(1), p.solo_step_bound()).unwrap();
        assert_eq!(out.decision, 0, "agreement with the earlier commit");
    }

    #[test]
    fn all_equal_inputs_decide_that_input() {
        let p = CommitAdoptConsensus::new(3, 4);
        let mut c = Configuration::initial(&p, &[3, 3, 3]).unwrap();
        for pid in 0..3 {
            runner::solo_run(&p, &mut c, ProcessId(pid), p.solo_step_bound()).unwrap();
        }
        assert_eq!(c.decided_values(), [3].into_iter().collect());
    }

    #[test]
    fn stamp_absent_is_round_zero() {
        assert_eq!(Stamp::absent().round, 0);
    }
}
