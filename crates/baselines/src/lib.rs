//! Baseline algorithms for the comparison rows of the paper's Table 1.
//!
//! The paper's bounds are relative: `n-1` swap objects for consensus versus
//! `n` registers; `n-k` swap objects for k-set agreement versus `n-k+1`
//! registers; `Θ(n)` binary historyless objects for binary consensus. This
//! crate implements one concrete algorithm per comparison class, each as a
//! deterministic [`swapcons_sim::Protocol`] so the same harness (runner,
//! model checker, benches) measures them all:
//!
//! * [`commit_adopt::CommitAdoptConsensus`] — obstruction-free m-valued
//!   consensus from `2n` single-writer registers (a commit–adopt round
//!   protocol with a classical safety argument). Stands in for the
//!   n-register algorithms cited as \[3, 12\]; Table 1 reports the literature
//!   formula `n` alongside our measured `2n`.
//! * [`register_kset::RegisterKSet`] — obstruction-free k-set agreement from
//!   registers via the standard reduction ("n-k+1 processes use the
//!   registers to solve consensus, the remaining k-1 processes decide their
//!   input values", Section 1); we use commit–adopt as the inner consensus.
//! * [`readable_racing::ReadableRacing`] — consensus from `n-1` **readable**
//!   swap objects (the Ellen–Gelashvili–Shavit–Zhu \[15\] regime): Algorithm 1
//!   extended with a read-only confirmation pass before deciding, which
//!   exercises the `Read` operation while preserving the paper's proof
//!   structure (Observation 2 still holds: decisions follow ⟨V,p⟩-total
//!   configurations).
//! * [`binary_racing::BinaryRacing`] — binary consensus from binary readable
//!   swap objects (the Theorem 18/22 regime): two monotone unary tracks with
//!   decision margin `n+2`. See the module docs for the staleness argument
//!   and the bounded-lap caveat relative to Bowman's \[7\] `2n-1`
//!   construction (whose technical report is not openly available — this is
//!   the documented substitution from DESIGN.md).

// Unsafe-code audit (PR 6): the baselines are pure safe Rust.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binary_racing;
pub mod commit_adopt;
pub mod readable_racing;
pub mod register_kset;

pub use binary_racing::BinaryRacing;
pub use commit_adopt::CommitAdoptConsensus;
pub use readable_racing::ReadableRacing;
pub use register_kset::RegisterKSet;
