//! Consensus from `n-1` **readable** swap objects: the
//! Ellen–Gelashvili–Shavit–Zhu \[15\] regime of Table 1 (row 5).
//!
//! The paper notes that Algorithm 1 is based on the EGSZ algorithm from
//! `n-1` readable swap objects. A plain swap object *is* a readable swap
//! object (that never reads), so Algorithm 1 itself already witnesses the
//! `n-1` upper bound; this variant additionally **exercises the `Read`
//! operation**, which matters downstream: the Lemma 9 adversary must *fail*
//! against it (reads learn without overwriting), demonstrating why
//! Theorem 10's proof is confined to swap-only algorithms.
//!
//! The variant: run Algorithm 1 (k = 1) unchanged, but once a clean lap with
//! a ≥ 2 lead is observed, perform one extra **read-only confirmation pass**
//! over all objects; decide only if every object still holds `⟨U, p⟩`. If
//! any read observes a foreign entry, merge lap counters and resume racing.
//!
//! Safety is inherited from the paper's own argument: the proofs of
//! Lemmas 5–7 use only (a) decisions follow completed laps, so the
//! configuration right before the deciding process's last pass was
//! `⟨V,p⟩`-total (Observation 2), and (b) the decision condition of line 16.
//! Both facts hold verbatim here — the confirmation pass only *adds*
//! preconditions to deciding, and reads by other processes never affect
//! Lemma 5's counting of Swap operations. Obstruction-freedom degrades from
//! `8(n-1)` to at most `11(n-1)` solo steps (each of up to three decision
//! attempts may spend an extra `n-1` reads).

use swapcons_core::lap::{LapVec, SwapEntry};
use swapcons_objects::{Domain, HistorylessOp, ObjectOp, ObjectSchema, Response};
use swapcons_sim::{KSetTask, ObjectId, ProcessId, Protocol, Renaming, Symmetry, Transition};

/// Consensus from `n-1` readable swap objects (Algorithm 1 plus a read-only
/// confirmation pass).
///
/// # Example
///
/// ```
/// use swapcons_baselines::ReadableRacing;
/// use swapcons_sim::{Configuration, ProcessId, runner};
///
/// let p = ReadableRacing::new(3, 2);
/// let mut c = Configuration::initial(&p, &[1, 0, 0]).unwrap();
/// let out = runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
/// assert_eq!(out.decision, 1); // validity: solo runs decide their input
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadableRacing {
    n: usize,
    m: u64,
}

impl ReadableRacing {
    /// An instance for `n` processes with inputs from `{0, …, m-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `m == 0`.
    pub fn new(n: usize, m: u64) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        assert!(m > 0, "need at least one input value");
        ReadableRacing { n, m }
    }

    /// Number of readable swap objects: `n - 1`.
    pub fn space(&self) -> usize {
        self.n - 1
    }

    /// Solo step bound: Lemma 8's `8(n-1)` swaps plus at most three
    /// confirmation passes of `n-1` reads.
    pub fn solo_step_bound(&self) -> usize {
        11 * (self.n - 1)
    }
}

/// Execution mode of a [`ReadableRacing`] process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RacingMode {
    /// Racing exactly as in Algorithm 1.
    Racing {
        /// The `conflict` flag.
        conflict: bool,
    },
    /// Read-only confirmation of a pending decision for `candidate`.
    Confirming {
        /// The value about to be decided.
        candidate: u64,
    },
}

/// Local state of a [`ReadableRacing`] process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RacingState {
    /// This process.
    pub pid: ProcessId,
    /// The local lap counter `U`.
    pub u: LapVec,
    /// Index of the next object to access.
    pub pos: usize,
    /// Racing or confirming.
    pub mode: RacingMode,
}

impl Protocol for ReadableRacing {
    type State = RacingState;
    type Value = SwapEntry;

    fn name(&self) -> String {
        format!(
            "readable racing: {}-process consensus from {} readable swap objects",
            self.n,
            self.space()
        )
    }

    fn task(&self) -> KSetTask {
        KSetTask::new(self.n, 1, self.m)
    }

    fn num_objects(&self) -> usize {
        self.space()
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::readable_swap(Domain::Unbounded)
    }

    fn initial_value(&self, _obj: ObjectId) -> SwapEntry {
        SwapEntry::bot(self.m as usize)
    }

    fn initial_state(&self, pid: ProcessId, input: u64) -> RacingState {
        RacingState {
            pid,
            u: LapVec::initial(self.m as usize, input),
            pos: 0,
            mode: RacingMode::Racing { conflict: false },
        }
    }

    fn poised(&self, state: &RacingState) -> (ObjectId, ObjectOp<SwapEntry>) {
        match state.mode {
            RacingMode::Racing { .. } => (
                ObjectId(state.pos),
                HistorylessOp::Swap(SwapEntry::of(state.u.clone(), state.pid)).into(),
            ),
            RacingMode::Confirming { .. } => (ObjectId(state.pos), ObjectOp::read()),
        }
    }

    fn observe(
        &self,
        mut state: RacingState,
        response: Response<SwapEntry>,
    ) -> Transition<RacingState> {
        let got = response.expect_value("read and swap both return values");
        let mine = got.id == Some(state.pid) && got.laps == state.u;
        match state.mode.clone() {
            RacingMode::Racing { mut conflict } => {
                if !mine {
                    conflict = true;
                    if got.laps != state.u {
                        state.u.merge_max(&got.laps);
                    }
                }
                state.pos += 1;
                if state.pos < self.space() {
                    state.mode = RacingMode::Racing { conflict };
                    return Transition::Continue(state);
                }
                state.pos = 0;
                if conflict {
                    state.mode = RacingMode::Racing { conflict: false };
                    return Transition::Continue(state);
                }
                let (v, _) = state.u.leader();
                if state.u.leads_by(v as usize, 2) {
                    // Algorithm 1 would decide here; we confirm by reading.
                    state.mode = RacingMode::Confirming { candidate: v };
                } else {
                    state.u.increment(v as usize);
                    state.mode = RacingMode::Racing { conflict: false };
                }
                Transition::Continue(state)
            }
            RacingMode::Confirming { candidate } => {
                if !mine {
                    // Confirmation failed: merge any news and race on.
                    if got.laps != state.u {
                        state.u.merge_max(&got.laps);
                    }
                    state.pos = 0;
                    state.mode = RacingMode::Racing { conflict: false };
                    return Transition::Continue(state);
                }
                state.pos += 1;
                if state.pos < self.space() {
                    state.mode = RacingMode::Confirming { candidate };
                    return Transition::Continue(state);
                }
                Transition::Decide(candidate)
            }
        }
    }

    // Same group as Algorithm 1: all processes interchangeable, values not
    // (the inherited line-15 tie-break orders them). The confirmation pass
    // adds no process-id dependence.
    fn symmetry(&self) -> Symmetry {
        Symmetry::full_process(self.n)
    }

    fn rename_state(&self, state: &RacingState, renaming: &Renaming) -> RacingState {
        RacingState {
            pid: renaming.pid(state.pid),
            u: state.u.clone(),
            pos: state.pos,
            mode: state.mode.clone(),
        }
    }

    fn rename_value(&self, _obj: ObjectId, value: &SwapEntry, renaming: &Renaming) -> SwapEntry {
        SwapEntry {
            laps: value.laps.clone(),
            id: value.id.map(|p| renaming.pid(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_objects::OpKind;
    use swapcons_sim::explore::ModelChecker;
    use swapcons_sim::runner::{self, solo_run_cloned};
    use swapcons_sim::scheduler::SeededRandom;
    use swapcons_sim::Configuration;

    #[test]
    fn uses_n_minus_1_readable_swap_objects() {
        let p = ReadableRacing::new(5, 2);
        assert_eq!(p.space(), 4);
        assert!(p
            .schemas()
            .iter()
            .all(|s| s.permits_kind(OpKind::Read) && s.permits_kind(OpKind::Swap)));
    }

    #[test]
    fn solo_decides_own_input_within_bound() {
        for n in 2..=6 {
            let p = ReadableRacing::new(n, 2);
            let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
            let config = Configuration::initial(&p, &inputs).unwrap();
            for (pid, &input) in inputs.iter().enumerate() {
                let (out, _) =
                    solo_run_cloned(&p, &config, ProcessId(pid), p.solo_step_bound()).unwrap();
                assert_eq!(out.decision, input);
            }
        }
    }

    #[test]
    fn executions_actually_issue_reads() {
        // The whole point of this baseline: the Read operation appears.
        let p = ReadableRacing::new(3, 2);
        let mut c = Configuration::initial(&p, &[1, 0, 0]).unwrap();
        let out = runner::run(
            &p,
            &mut c,
            &mut swapcons_sim::scheduler::Solo(ProcessId(0)),
            100,
        )
        .unwrap();
        assert!(
            out.history.iter().any(|s| s.op.kind() == OpKind::Read),
            "confirmation pass must read"
        );
    }

    #[test]
    fn contention_then_solo_agrees() {
        for seed in 0..20 {
            let p = ReadableRacing::new(4, 2);
            let inputs = [0, 1, 1, 0];
            let mut c = Configuration::initial(&p, &inputs).unwrap();
            runner::run(&p, &mut c, &mut SeededRandom::new(seed), 60).unwrap();
            for pid in c.running() {
                let out = runner::solo_run(&p, &mut c, pid, p.solo_step_bound())
                    .unwrap_or_else(|e| panic!("seed {seed} {pid}: {e}"));
                assert!(out.steps <= p.solo_step_bound());
            }
            assert_eq!(c.decided_values().len(), 1, "agreement, seed {seed}");
            assert!(p.task().check(&inputs, &c.decisions()).is_ok());
        }
    }

    #[test]
    fn failed_confirmation_resumes_racing() {
        let p = ReadableRacing::new(2, 2);
        let mut c = Configuration::initial(&p, &[0, 1]).unwrap();
        // Drive p0 to the brink of deciding: race solo until it enters
        // Confirming mode.
        for _ in 0..p.solo_step_bound() {
            if matches!(
                c.state(ProcessId(0)).unwrap().mode,
                RacingMode::Confirming { .. }
            ) {
                break;
            }
            c.step(&p, ProcessId(0)).unwrap();
        }
        assert!(matches!(
            c.state(ProcessId(0)).unwrap().mode,
            RacingMode::Confirming { .. }
        ));
        // p1 swaps the object p0 is about to confirm-read.
        c.step(&p, ProcessId(1)).unwrap();
        // p0's confirmation read sees the foreign entry and resumes racing.
        c.step(&p, ProcessId(0)).unwrap();
        let s = c.state(ProcessId(0)).unwrap();
        assert!(matches!(s.mode, RacingMode::Racing { .. }));
        assert_eq!(c.decision(ProcessId(0)), None);
    }

    #[test]
    fn model_check_n2_bounded() {
        let p = ReadableRacing::new(2, 2);
        let report = ModelChecker::new(26, 150_000)
            .with_solo_budget(p.solo_step_bound())
            .check_all_inputs(&p);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn model_check_n3_bounded() {
        let p = ReadableRacing::new(3, 2);
        let report = ModelChecker::new(14, 200_000).check(&p, &[0, 1, 1]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn symmetry_declaration_is_equivariant() {
        swapcons_sim::canon::assert_equivariant(&ReadableRacing::new(3, 2), &[1, 1, 1], 12, 5);
        swapcons_sim::canon::assert_equivariant(&ReadableRacing::new(3, 2), &[0, 1, 1], 12, 5);
    }

    #[test]
    fn reduced_model_check_matches_full() {
        let p = ReadableRacing::new(3, 2);
        let full = ModelChecker::new(12, 200_000).check(&p, &[1, 1, 1]);
        let reduced = ModelChecker::new(12, 200_000)
            .with_symmetry_reduction()
            .check(&p, &[1, 1, 1]);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert_eq!(reduced.symmetry_group, 6);
        assert!(reduced.states * 3 <= full.states, "{full} vs {reduced}");
    }
}
