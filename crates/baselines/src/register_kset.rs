//! Obstruction-free k-set agreement from registers via the standard
//! reduction (Section 1 of the paper).
//!
//! "There is a simple obstruction-free k-set agreement algorithm using
//! `n-k+1` registers: `n-k+1` processes use the registers to solve
//! consensus, and the remaining `k-1` processes decide their input values."
//!
//! We instantiate the inner consensus with
//! [`CommitAdoptConsensus`] over
//! `c = n-k+1` processes, which uses `2c` registers; Table 1 reports the
//! literature formula `n-k+1` (Bouzid–Raynal–Sutra \[6\]) alongside our
//! measured `2(n-k+1)`.

use swapcons_objects::{ObjectOp, ObjectSchema, Response};
use swapcons_sim::{KSetTask, ObjectId, ProcessId, Protocol, Renaming, Symmetry, Transition};

use crate::commit_adopt::{CaState, CommitAdoptConsensus, Stamp};

/// k-set agreement from registers: processes `0..n-k+1` run consensus,
/// processes `n-k+1..n` decide their inputs immediately.
///
/// # Example
///
/// ```
/// use swapcons_baselines::RegisterKSet;
/// use swapcons_sim::{Configuration, ProcessId, runner};
///
/// let p = RegisterKSet::new(5, 3, 4); // consensus among 3, two immediate
/// let mut c = Configuration::initial(&p, &[0, 1, 2, 3, 3]).unwrap();
/// assert_eq!(c.decision(ProcessId(3)), Some(3)); // immediate deciders
/// assert_eq!(c.decision(ProcessId(4)), Some(3));
/// for pid in c.running() {
///     runner::solo_run(&p, &mut c, pid, p.solo_step_bound()).unwrap();
/// }
/// assert!(c.decided_values().len() <= 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegisterKSet {
    n: usize,
    k: usize,
    inner: CommitAdoptConsensus,
}

impl RegisterKSet {
    /// An instance for `n` processes and degree `k` with inputs from
    /// `{0, …, m-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `n <= k`, or `m == 0`.
    pub fn new(n: usize, k: usize, m: u64) -> Self {
        assert!(k > 0 && n > k && m > 0, "require n > k >= 1 and m >= 1");
        RegisterKSet {
            n,
            k,
            inner: CommitAdoptConsensus::new(n - k + 1, m),
        }
    }

    /// Number of consensus participants: `n - k + 1`.
    pub fn participants(&self) -> usize {
        self.n - self.k + 1
    }

    /// Number of registers used: `2(n-k+1)` (our inner consensus uses two
    /// arrays; the literature bound is `n-k+1`).
    pub fn space(&self) -> usize {
        self.inner.space()
    }

    /// Solo step bound, inherited from the inner consensus.
    pub fn solo_step_bound(&self) -> usize {
        self.inner.solo_step_bound()
    }
}

impl Protocol for RegisterKSet {
    type State = CaState;
    type Value = Stamp;

    fn name(&self) -> String {
        format!(
            "register k-set: {}-process {}-set agreement, {} registers",
            self.n,
            self.k,
            self.space()
        )
    }

    fn task(&self) -> KSetTask {
        KSetTask::new(self.n, self.k, self.inner.task().m)
    }

    fn num_objects(&self) -> usize {
        self.inner.num_objects()
    }

    fn schema(&self, obj: ObjectId) -> ObjectSchema {
        self.inner.schema(obj)
    }

    fn initial_value(&self, obj: ObjectId) -> Stamp {
        self.inner.initial_value(obj)
    }

    fn initial_state(&self, pid: ProcessId, input: u64) -> CaState {
        assert!(
            pid.index() < self.participants(),
            "non-participants decide at initialization and have no state"
        );
        self.inner.initial_state(pid, input)
    }

    fn initial_decision(&self, pid: ProcessId, input: u64) -> Option<u64> {
        (pid.index() >= self.participants()).then_some(input)
    }

    fn poised(&self, state: &CaState) -> (ObjectId, ObjectOp<Stamp>) {
        self.inner.poised(state)
    }

    fn observe(&self, state: CaState, response: Response<Stamp>) -> Transition<CaState> {
        self.inner.observe(state, response)
    }

    // The k-1 immediate deciders are stateless and objectless — freely
    // interchangeable. The consensus participants inherit the inner
    // commit–adopt's constraint (scan order pins them), and values inherit
    // its full interchangeability.
    fn symmetry(&self) -> Symmetry {
        Symmetry::process_classes(vec![(self.participants()..self.n).map(ProcessId).collect()])
            .with_interchangeable_values()
    }

    fn rename_state(&self, state: &CaState, renaming: &Renaming) -> CaState {
        // Participants are fixed by every admitted renaming, so delegating
        // to the inner protocol (which renames prefs/proposals by σ) is
        // exactly right.
        self.inner.rename_state(state, renaming)
    }

    fn rename_value(&self, obj: ObjectId, value: &Stamp, renaming: &Renaming) -> Stamp {
        self.inner.rename_value(obj, value, renaming)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_sim::explore::ModelChecker;
    use swapcons_sim::runner;
    use swapcons_sim::scheduler::SeededRandom;
    use swapcons_sim::Configuration;

    #[test]
    fn space_formula() {
        let p = RegisterKSet::new(6, 2, 3);
        assert_eq!(p.participants(), 5);
        assert_eq!(p.space(), 10);
    }

    #[test]
    fn immediate_deciders_do_not_participate() {
        let p = RegisterKSet::new(5, 3, 4);
        let c = Configuration::initial(&p, &[0, 1, 2, 3, 2]).unwrap();
        assert_eq!(c.running().len(), 3);
        assert_eq!(c.decision(ProcessId(3)), Some(3));
        assert_eq!(c.decision(ProcessId(4)), Some(2));
    }

    #[test]
    fn at_most_k_values_decided() {
        for seed in 0..20 {
            let p = RegisterKSet::new(6, 3, 4);
            let inputs = [0, 1, 2, 3, 0, 1];
            let mut c = Configuration::initial(&p, &inputs).unwrap();
            runner::run(&p, &mut c, &mut SeededRandom::new(seed), 80).unwrap();
            for pid in c.running() {
                runner::solo_run(&p, &mut c, pid, p.solo_step_bound()).unwrap();
            }
            assert!(c.all_decided());
            assert!(
                p.task().check(&inputs, &c.decisions()).is_ok(),
                "seed {seed}"
            );
            // The k-1 immediate deciders + 1 consensus value.
            assert!(c.decided_values().len() <= 3);
        }
    }

    #[test]
    fn consensus_participants_agree_internally() {
        let p = RegisterKSet::new(4, 2, 3);
        let inputs = [0, 1, 2, 2];
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        for pid in c.running() {
            runner::solo_run(&p, &mut c, pid, p.solo_step_bound()).unwrap();
        }
        assert_eq!(c.decision(ProcessId(0)), c.decision(ProcessId(1)));
        assert_eq!(c.decision(ProcessId(1)), c.decision(ProcessId(2)));
    }

    #[test]
    fn model_check_n3_k2_bounded() {
        // Inner consensus among 2 processes; p2 decides immediately.
        let p = RegisterKSet::new(3, 2, 3);
        let report = ModelChecker::new(24, 150_000)
            .with_solo_budget(p.solo_step_bound())
            .check(&p, &[0, 1, 2]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn symmetry_declaration_is_equivariant() {
        // n=4, k=2: participants {0,1,2} fixed, p3 in the immediate class;
        // the group is nontrivial only through value renamings tied to
        // permutations of the (single-member) class — still worth pinning:
        // a 5-process instance has two interchangeable deciders.
        swapcons_sim::canon::assert_equivariant(
            &RegisterKSet::new(5, 3, 4),
            &[0, 1, 2, 3, 1],
            10,
            4,
        );
        swapcons_sim::canon::assert_equivariant(
            &RegisterKSet::new(5, 3, 4),
            &[2, 2, 1, 0, 3],
            10,
            4,
        );
    }

    #[test]
    fn reduced_check_matches_full() {
        let p = RegisterKSet::new(3, 2, 2);
        let full = ModelChecker::new(14, 150_000).check_all_inputs(&p);
        let reduced = ModelChecker::new(14, 150_000)
            .with_symmetry_reduction()
            .check_all_inputs(&p);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert!(reduced.states < full.states, "{full} vs {reduced}");
    }
}
