//! Property-based safety tests for every baseline algorithm: arbitrary
//! seeded schedules plus solo finishes must satisfy the task predicates,
//! and solo runs must respect each algorithm's stated step bound.

use proptest::prelude::*;
use swapcons_baselines::{BinaryRacing, CommitAdoptConsensus, ReadableRacing, RegisterKSet};
use swapcons_sim::scheduler::{LapLeadChasing, SeededRandom};
use swapcons_sim::{runner, Configuration, Protocol};

fn drive<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    seed: u64,
    solo_budget: usize,
) -> Result<Vec<Option<u64>>, TestCaseError> {
    let mut config =
        Configuration::initial(protocol, inputs).map_err(|e| TestCaseError::fail(e.to_string()))?;
    runner::run(
        protocol,
        &mut config,
        &mut SeededRandom::new(seed),
        contention,
    )
    .map_err(|e| TestCaseError::fail(e.to_string()))?;
    for pid in config.running() {
        let out = runner::solo_run(protocol, &mut config, pid, solo_budget)
            .map_err(|e| TestCaseError::fail(format!("{pid}: {e}")))?;
        prop_assert!(out.steps <= solo_budget);
    }
    Ok(config.decisions())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn commit_adopt_safe_under_random_schedules(
        seed in 0u64..3000,
        n in 1usize..6,
        contention in 0usize..80,
    ) {
        let p = CommitAdoptConsensus::new(n, 3);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 3) as u64).collect();
        let decisions = drive(&p, &inputs, contention, seed, p.solo_step_bound())?;
        prop_assert!(p.task().check(&inputs, &decisions).is_ok());
        let distinct: std::collections::HashSet<_> =
            decisions.iter().flatten().collect();
        prop_assert_eq!(distinct.len(), 1, "consensus: exactly one value");
    }

    #[test]
    fn register_kset_safe_under_random_schedules(
        seed in 0u64..3000,
        n in 3usize..7,
        k_off in 0usize..3,
    ) {
        let k = (2 + k_off).min(n - 1);
        let m = (k + 1) as u64;
        let p = RegisterKSet::new(n, k, m);
        let inputs: Vec<u64> = (0..n).map(|i| (i as u64) % m).collect();
        let decisions = drive(&p, &inputs, 10 * n, seed, p.solo_step_bound())?;
        prop_assert!(p.task().check(&inputs, &decisions).is_ok());
    }

    #[test]
    fn readable_racing_safe_under_random_schedules(
        seed in 0u64..3000,
        n in 2usize..6,
        contention in 0usize..60,
    ) {
        let p = ReadableRacing::new(n, 2);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let decisions = drive(&p, &inputs, contention, seed, p.solo_step_bound())?;
        prop_assert!(p.task().check(&inputs, &decisions).is_ok());
        let distinct: std::collections::HashSet<_> =
            decisions.iter().flatten().collect();
        prop_assert_eq!(distinct.len(), 1);
    }

    #[test]
    fn binary_racing_safe_under_random_schedules(
        seed in 0u64..3000,
        n in 2usize..5,
        contention in 0usize..60,
    ) {
        let p = BinaryRacing::new(n);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let decisions = drive(&p, &inputs, contention, seed, p.solo_step_bound())?;
        prop_assert!(p.task().check(&inputs, &decisions).is_ok());
        let distinct: std::collections::HashSet<_> =
            decisions.iter().flatten().collect();
        prop_assert_eq!(distinct.len(), 1);
    }

    /// Binary racing's track cells are monotone under any schedule: once a
    /// cell reads 1, it reads 1 forever.
    #[test]
    fn binary_racing_cells_monotone(seed in 0u64..2000, steps in 1usize..200) {
        let p = BinaryRacing::with_track_len(3, 8);
        let mut config = Configuration::initial(&p, &[0, 1, 0]).unwrap();
        let mut sched = SeededRandom::new(seed);
        let mut high_water = vec![0u64; p.space()];
        let out = runner::run(&p, &mut config, &mut sched, steps).unwrap();
        let _ = out;
        for (i, hw) in high_water.iter_mut().enumerate() {
            let v = *config.value(swapcons_sim::ObjectId(i));
            prop_assert!(v >= *hw);
            *hw = v;
        }
    }

    /// The lap-lead-chasing adversary (adaptive, state-inspecting) followed
    /// by solo finishes: every baseline stays safe and every solo run
    /// respects its stated step bound. This is the same contract as the
    /// seeded-random suite above, under a strictly nastier scheduler.
    #[test]
    fn commit_adopt_safe_under_lap_lead_chasing(
        n in 1usize..6,
        contention in 0usize..80,
    ) {
        let p = CommitAdoptConsensus::new(n, 3);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 3) as u64).collect();
        let decisions = drive_chased(&p, &inputs, contention, p.solo_step_bound())?;
        prop_assert!(p.task().check(&inputs, &decisions).is_ok());
        let distinct: std::collections::HashSet<_> =
            decisions.iter().flatten().collect();
        prop_assert_eq!(distinct.len(), 1, "consensus: exactly one value");
    }

    #[test]
    fn binary_racing_safe_under_lap_lead_chasing(
        n in 2usize..5,
        contention in 0usize..80,
    ) {
        let p = BinaryRacing::new(n);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let decisions = drive_chased(&p, &inputs, contention, p.solo_step_bound())?;
        prop_assert!(p.task().check(&inputs, &decisions).is_ok());
    }

    #[test]
    fn readable_racing_safe_under_lap_lead_chasing(
        n in 2usize..6,
        contention in 0usize..60,
    ) {
        let p = ReadableRacing::new(n, 2);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let decisions = drive_chased(&p, &inputs, contention, p.solo_step_bound())?;
        prop_assert!(p.task().check(&inputs, &decisions).is_ok());
        let distinct: std::collections::HashSet<_> =
            decisions.iter().flatten().collect();
        prop_assert_eq!(distinct.len(), 1);
    }

    #[test]
    fn register_kset_safe_under_lap_lead_chasing(
        n in 3usize..7,
        k_off in 0usize..3,
    ) {
        let k = (2 + k_off).min(n - 1);
        let m = (k + 1) as u64;
        let p = RegisterKSet::new(n, k, m);
        let inputs: Vec<u64> = (0..n).map(|i| (i as u64) % m).collect();
        let decisions = drive_chased(&p, &inputs, 10 * n, p.solo_step_bound())?;
        prop_assert!(p.task().check(&inputs, &decisions).is_ok());
    }
}

/// [`drive`] under the adaptive lap-lead-chasing adversary instead of a
/// seeded-random schedule (the scheduler is deterministic, so no seed).
fn drive_chased<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    solo_budget: usize,
) -> Result<Vec<Option<u64>>, TestCaseError> {
    let mut config =
        Configuration::initial(protocol, inputs).map_err(|e| TestCaseError::fail(e.to_string()))?;
    runner::run(
        protocol,
        &mut config,
        &mut LapLeadChasing::new(),
        contention,
    )
    .map_err(|e| TestCaseError::fail(e.to_string()))?;
    for pid in config.running() {
        let out = runner::solo_run(protocol, &mut config, pid, solo_budget)
            .map_err(|e| TestCaseError::fail(format!("{pid}: {e}")))?;
        prop_assert!(out.steps <= solo_budget);
    }
    Ok(config.decisions())
}
