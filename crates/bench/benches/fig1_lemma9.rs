//! E2 — **Figure 1**: the Lemma 9 construction, executed. For each `n`, the
//! adversary runs against Algorithm 1 (k = 1) and must force `|Q| = n-1`
//! distinct swap objects — all of the algorithm's objects, showing
//! Theorem 10 is exactly tight at k = 1. Also runs the pairs construction
//! for `k > 1`.
//!
//! Run: `cargo bench -p swapcons-bench --bench fig1_lemma9`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swapcons_bench::harness::render_series;
use swapcons_core::pairs::PairsKSet;
use swapcons_core::SwapKSet;
use swapcons_lower::lemma9;
use swapcons_sim::{Configuration, ProcessId};

fn print_series() {
    let mut points = Vec::new();
    println!("\n====== Figure 1: Lemma 9 adversary vs Algorithm 1 (k=1) ======");
    for n in [3usize, 4, 6, 8, 12, 16, 24, 32] {
        let p = SwapKSet::consensus(n, 2);
        let report = lemma9::theorem10_consensus_witness(&p, p.solo_step_bound())
            .expect("construction succeeds against a correct algorithm");
        assert_eq!(report.forced_objects.len(), n - 1, "tightness at n={n}");
        points.push((n as f64, report.forced_objects.len() as f64));
        println!(
            "n={n:>3}: forced {} / {} objects in {} steps",
            report.forced_objects.len(),
            p.space(),
            report.total_steps
        );
    }
    println!(
        "\n{}",
        render_series(
            "forced objects vs n (lower bound n-1, tight)",
            "n",
            "forced",
            &points
        )
    );

    println!("====== Lemma 9 vs the pairs construction (k > 1) ======");
    for k in [2usize, 3, 4] {
        let n = 2 * k;
        let p = PairsKSet::new(n, k, (k + 1) as u64);
        let mut inputs = vec![0u64; n];
        for pair in 0..k {
            inputs[2 * pair] = pair as u64;
            inputs[2 * pair + 1] = k as u64;
        }
        let mut c_alpha = Configuration::initial(&p, &inputs).unwrap();
        for pair in 0..k {
            swapcons_sim::runner::solo_run(&p, &mut c_alpha, ProcessId(2 * pair), 2).unwrap();
        }
        let q: Vec<ProcessId> = (0..k).map(|pair| ProcessId(2 * pair + 1)).collect();
        let report = lemma9::run(&p, &c_alpha, &q, k as u64, 4).unwrap();
        println!(
            "n={n} k={k}: forced {} / {} objects (theorem bound ⌈n/k⌉-1 = {})",
            report.forced_objects.len(),
            p.space(),
            n.div_ceil(k) - 1
        );
    }
    println!();
}

fn bench_adversary(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig1/lemma9_adversary");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [4usize, 8, 16, 32] {
        let p = SwapKSet::consensus(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| lemma9::theorem10_consensus_witness(&p, p.solo_step_bound()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
