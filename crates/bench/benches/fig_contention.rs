//! E8 — **real-thread contention**: wall-clock time for all `n` threads to
//! decide under threaded Algorithm 1 (lock-free `AtomicSwap` objects,
//! obstruction-free + backoff) and the wait-free pairs construction. Not a
//! paper figure — the paper has no testbed — but it validates that the
//! shared-memory footprint (`n-k` swap objects) is practical and that the
//! obstruction-free race converges under genuine OS scheduling.
//!
//! Run: `cargo bench -p swapcons-bench --bench fig_contention`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swapcons_bench::harness::cyclic_inputs;
use swapcons_core::threaded::{ThreadedKSet, ThreadedPairs};

fn check_kset(inputs: &[u64], decisions: &[u64], k: usize) {
    let distinct: std::collections::HashSet<u64> = decisions.iter().copied().collect();
    assert!(distinct.len() <= k);
    for d in decisions {
        assert!(inputs.contains(d));
    }
}

fn bench_threads(c: &mut Criterion) {
    println!("\n====== threaded Algorithm 1: time for all n threads to decide ======");
    let mut group = c.benchmark_group("fig_contention/threaded");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [2usize, 4, 8] {
        let inputs = cyclic_inputs(n, 2);
        group.bench_with_input(BenchmarkId::new("algorithm1_consensus", n), &n, |b, &n| {
            b.iter(|| {
                let alg = ThreadedKSet::new(n, 1, 2);
                let decisions = alg.run(&inputs);
                check_kset(&inputs, &decisions, 1);
                decisions
            })
        });
    }
    for n in [4usize, 8] {
        let k = n / 2;
        let inputs = cyclic_inputs(n, (k + 1) as u64);
        group.bench_with_input(BenchmarkId::new("algorithm1_kset_k=n/2", n), &n, |b, &n| {
            b.iter(|| {
                let alg = ThreadedKSet::new(n, k, (k + 1) as u64);
                let decisions = alg.run(&inputs);
                check_kset(&inputs, &decisions, k);
                decisions
            })
        });
        group.bench_with_input(BenchmarkId::new("pairs_wait_free", n), &n, |b, &n| {
            b.iter(|| {
                let alg = ThreadedPairs::new(n, k);
                let decisions = alg.run(&inputs);
                check_kset(&inputs, &decisions, k);
                decisions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threads);
criterion_main!(benches);
