//! E9 — the **bounded-domain lower-bound curve**: Theorem 22's
//! `(n-2)/(3b+1)` plotted over `b` and `n`, against Theorem 18's `n-2`
//! (the better bound at `b = 2`), the Ω(√n) bound it supersedes for small
//! `b`, and the measured space of our binary-object algorithm. The shape to
//! verify: for constant `b` the bound is Θ(n) — asymptotically matching the
//! `Θ(n)` algorithms — and it crosses above √n exactly when `b ∈ o(√n)`.
//!
//! Run: `cargo bench -p swapcons-bench --bench fig_domain_bound`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swapcons_baselines::BinaryRacing;
use swapcons_bench::harness::{cyclic_inputs, decide_all, render_series};
use swapcons_lower::Table1Row;
use swapcons_sim::Protocol;

fn print_curves() {
    println!("\n====== Theorem 22 bound (n-2)/(3b+1) over b, n = 1024 ======");
    let n = 1024usize;
    let mut pts = Vec::new();
    for b in [2u64, 3, 4, 8, 16, 32] {
        let bound = Table1Row::ConsensusReadableSwapDomainB
            .lower_bound()
            .at(n, 1, b);
        let sqrt = (n as f64).sqrt();
        println!(
            "b={b:>3}: (n-2)/(3b+1) = {bound:>8.2}   vs Ω(√n) ≈ {sqrt:>6.1}   {}",
            if bound > sqrt {
                "(new bound wins)"
            } else {
                "(√n wins)"
            }
        );
        pts.push((b as f64, bound));
    }
    println!(
        "\n{}",
        render_series("lower bound vs domain size b (n=1024)", "b", "bound", &pts)
    );

    println!("====== scaling in n at b = 2: Theorem 18 vs measured algorithm space ======");
    let mut pts = Vec::new();
    for n in [8usize, 16, 32, 64, 128, 256] {
        let lb18 = Table1Row::ConsensusReadableBinarySwap
            .lower_bound()
            .at(n, 1, 2);
        let ub_bowman = Table1Row::ConsensusReadableBinarySwap
            .upper_bound()
            .at(n, 1, 2);
        let measured = BinaryRacing::new(n).num_objects();
        assert!(measured as f64 >= lb18, "no algorithm may beat Theorem 18");
        println!(
            "n={n:>4}: lower n-2 = {lb18:>6}  Bowman 2n-1 = {ub_bowman:>6}  our measured = {measured:>6}"
        );
        pts.push((n as f64, measured as f64));
    }
    println!(
        "\n{}",
        render_series("measured binary-object space vs n", "n", "objects", &pts)
    );
}

fn bench_binary(c: &mut Criterion) {
    print_curves();
    let mut group = c.benchmark_group("fig_domain/binary_racing_decide");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [2usize, 3, 4] {
        let p = BinaryRacing::new(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (steps, decisions) =
                    decide_all(&p, &cyclic_inputs(n, 2), 3 * n, 5, p.solo_step_bound());
                assert!(p.task().check(&cyclic_inputs(n, 2), &decisions).is_ok());
                steps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_binary);
criterion_main!(benches);
