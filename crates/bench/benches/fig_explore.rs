//! E8 — **exploration throughput**: states/second for the exhaustive
//! searches, the metric every perf PR to the exploration hot path must move.
//!
//! Workloads span the repo's verification surfaces:
//!
//! * `ModelChecker` on Algorithm 1 at n=2 (all 4 input vectors) and n=3
//!   (the "model-checker scale" regime where state explosion made per-node
//!   deep clones the bottleneck), each in **full** and **symmetry-reduced**
//!   mode — the reduced rows report states-explored side by side with the
//!   full rows, which is the PR 3 headline (same verdicts, ≥3x fewer states
//!   on the unanimous-input n=3 row);
//! * the same n=3 run with the solo-termination (obstruction-freedom) check
//!   enabled, with and without the solo-outcome memo;
//! * the Section 5 / Lemma 16 construction on `BinaryRacing` at n=3, whose
//!   inner loop is the valency oracle's bounded search, full and reduced.
//!
//! Each series point is the best of three runs after one warm-up (the
//! measurement box is a shared single-core VM, so minimum-of-N is the
//! stable statistic); EXPERIMENTS.md records the trajectory across PRs.
//!
//! This target doubles as the CI consistency gate: it asserts — in `--test`
//! mode too — that reduced and full searches reach identical verdicts on
//! the n=2 protocol zoo, so a broken symmetry declaration fails the bench
//! smoke, not just unit tests.
//!
//! Run: `cargo bench -p swapcons-bench --bench fig_explore`

use std::fmt::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use swapcons_baselines::{BinaryRacing, CommitAdoptConsensus, ReadableRacing};
use swapcons_bench::harness::{bench_artifact_dir, render_series, write_series_artifact};
use swapcons_core::pairs::PairsKSet;
use swapcons_core::{OneBitSwapConsensus, SwapKSet};
use swapcons_lower::lemma9::searched_solo_pressure;
use swapcons_lower::section5::{lemma16_driver, searched_object_pressure, Budgets};
use swapcons_sim::explore::{CheckReport, ModelChecker};
use swapcons_sim::testing::TwoProcessSwapConsensus;
use swapcons_sim::{engine, Configuration, ObjectId, ProcessId, Protocol};

/// Write `content` to `$BENCH_SERIES_DIR/<name>` when the variable is set
/// (the CI artifact directory). A failed write — including the
/// empty-content refusal, which is how the old log-scrape pipeline would
/// have rotted — costs this artifact a warning line, not the rest of the
/// series: the measurements already printed are the primary record.
fn write_bench_artifact(name: &str, content: &str) {
    let Some(dir) = bench_artifact_dir() else {
        return;
    };
    match write_series_artifact(&dir, name, content) {
        Ok(path) => println!("[bench-series] wrote {}", path.display()),
        Err(e) => eprintln!(
            "[bench-series] WARNING: skipping artifact {name} in {}: {e}",
            dir.display()
        ),
    }
}

/// Best-of-3 wall clock (after one untimed warm-up) for `run`, which
/// returns the number of states (or stages) it processed.
fn best_of_3(mut run: impl FnMut() -> usize) -> (usize, f64) {
    let count = run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let c = run();
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(c, count, "deterministic workload");
    }
    (count, best)
}

/// One full-vs-reduced model-check row: assert identical verdicts, print
/// both state counts and rates, return the pair of reports.
fn reduced_row(
    label: &str,
    checker: ModelChecker,
    run: &dyn Fn(ModelChecker) -> CheckReport,
) -> (f64, f64) {
    let (full_states, full_secs) = best_of_3(|| {
        let report = run(checker);
        assert!(report.passed(), "{report}");
        report.states
    });
    let reduced_checker = checker.with_symmetry_reduction();
    let (reduced_states, reduced_secs) = best_of_3(|| {
        let report = run(reduced_checker);
        assert!(report.passed(), "{report}");
        report.states
    });
    let full = run(checker);
    let reduced = run(reduced_checker);
    assert!(
        full.same_verdict(&reduced),
        "{label}: reduced verdict diverged: {full} vs {reduced}"
    );
    let full_rate = full_states as f64 / full_secs;
    let reduced_rate = reduced_states as f64 / reduced_secs;
    println!(
        "{label:<30} : full {full_states:>8} states {full_secs:>7.3}s ({full_rate:>10.0}/s) | \
         reduced {reduced_states:>8} states {reduced_secs:>7.3}s ({reduced_rate:>10.0}/s) | \
         {:.2}x fewer states, {:.2}x wall",
        full_states as f64 / reduced_states as f64,
        full_secs / reduced_secs,
    );
    (full_rate, reduced_rate)
}

/// One row of the reduction-factor table the gate emits into the
/// bench-series artifact.
struct ReductionRow {
    label: String,
    full_states: usize,
    reduced_states: usize,
    group: usize,
}

/// Render the per-row reduction-factor table (checker + oracle gate rows).
fn render_reduction_table(rows: &[ReductionRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# engine-parity gate: states explored, full vs symmetry-reduced"
    );
    let _ = writeln!(
        out,
        "{:<52} {:>10} {:>10} {:>7} {:>6}",
        "row", "full", "reduced", "factor", "|G|"
    );
    let _ = writeln!(out, "{}", "-".repeat(90));
    for row in rows {
        let factor = if row.reduced_states == 0 {
            "-".to_string()
        } else {
            format!("{:.2}x", row.full_states as f64 / row.reduced_states as f64)
        };
        let _ = writeln!(
            out,
            "{:<52} {:>10} {:>10} {:>7} {:>6}",
            row.label, row.full_states, row.reduced_states, factor, row.group
        );
    }
    out
}

/// The CI gate: reduced and full verdicts must agree on the whole n=2 zoo
/// (plus the Table 1 witness sweep, which covers the k-set rows at n=3/4,
/// and the valency-oracle fixtures, which cover the composed object
/// symmetries). Emits the per-row reduction-factor table into the
/// bench-series artifact.
fn verify_reduction_consistency() {
    println!("\n====== reduced-vs-full verdict gate (n=2 zoo + Table 1 witnesses) ======");
    let mut table: Vec<ReductionRow> = Vec::new();
    let checks: Vec<(&str, CheckReport, CheckReport)> = vec![
        {
            let p = TwoProcessSwapConsensus;
            let c = ModelChecker::new(10, 50_000).with_solo_budget(2);
            (
                "two_process_swap all-inputs",
                c.check_all_inputs(&p),
                c.with_symmetry_reduction().check_all_inputs(&p),
            )
        },
        {
            let p = SwapKSet::consensus(2, 2);
            let c = ModelChecker::new(30, 200_000).with_solo_budget(p.solo_step_bound());
            (
                "alg1 n=2 all-inputs",
                c.check_all_inputs(&p),
                c.with_symmetry_reduction().check_all_inputs(&p),
            )
        },
        {
            let p = CommitAdoptConsensus::new(2, 2);
            let c = ModelChecker::new(14, 200_000).with_solo_budget(p.solo_step_bound());
            (
                "commit_adopt n=2 all-inputs",
                c.check_all_inputs(&p),
                c.with_symmetry_reduction().check_all_inputs(&p),
            )
        },
        {
            let p = BinaryRacing::with_track_len(2, 8);
            let c = ModelChecker::new(16, 200_000);
            (
                "binary_racing n=2 all-inputs",
                c.check_all_inputs(&p),
                c.with_symmetry_reduction().check_all_inputs(&p),
            )
        },
        {
            let p = ReadableRacing::new(2, 2);
            let c = ModelChecker::new(16, 150_000).with_solo_budget(p.solo_step_bound());
            (
                "readable_racing n=2 all-inputs",
                c.check_all_inputs(&p),
                c.with_symmetry_reduction().check_all_inputs(&p),
            )
        },
        {
            // The track swap on a single distinct-inputs vector: [0, 1] had
            // a trivial run group before the value-coupled object class.
            let p = BinaryRacing::with_track_len(2, 8);
            let c = ModelChecker::new(16, 200_000);
            (
                "binary_racing n=2 track-swap [0,1]",
                c.check(&p, &[0, 1]),
                c.with_symmetry_reduction().check(&p, &[0, 1]),
            )
        },
        {
            // The pair swap across the whole input grid: pair blocks fold
            // both the per-run orbits and the canonical-input-vector grid.
            let p = PairsKSet::new(4, 2, 3);
            let c = ModelChecker::new(10, 100_000).with_solo_budget(1);
            (
                "pairs_kset n=4 pair-swap all-inputs",
                c.check_all_inputs(&p),
                c.with_symmetry_reduction().check_all_inputs(&p),
            )
        },
        {
            // The derived-object composition layer: 2-process consensus from
            // one-bit swaps, run on the *flattened* Aspnes construction (one
            // max register + TAS bit per swap) — the engine sees base
            // objects only, and the lifted process symmetry must still fold
            // the orbits.
            let p = OneBitSwapConsensus.derived();
            let c = ModelChecker::new(64, 200_000);
            (
                "onebit consensus derived all-inputs",
                c.check_all_inputs(&p),
                c.with_symmetry_reduction().check_all_inputs(&p),
            )
        },
        {
            // The n=4 full-process-symmetry row: unanimous inputs leave the
            // whole S4 (|G| = 24) as the run group. Under the old
            // enumerate-the-group canonicalization every insert hashed 24
            // whole images and this row was left out of the smoke budget;
            // the pruned stabilizer-chain search gates it per commit.
            let p = SwapKSet::consensus(4, 2);
            let c = ModelChecker::new(10, 500_000);
            (
                "alg1 n=4 full-symmetry [1,1,1,1]",
                c.check(&p, &[1, 1, 1, 1]),
                c.with_symmetry_reduction().check(&p, &[1, 1, 1, 1]),
            )
        },
    ];
    for (label, full, reduced) in checks {
        assert!(
            full.same_verdict(&reduced),
            "{label}: reduced verdict diverged: {full} vs {reduced}"
        );
        assert!(full.passed(), "{label}: {full}");
        println!(
            "{label:<36} : verdict match ✓  ({} -> {} states)",
            full.states, reduced.states
        );
        table.push(ReductionRow {
            label: label.to_string(),
            full_states: full.states,
            reduced_states: reduced.states,
            group: reduced.symmetry_group,
        });
    }
    // The object-symmetry acceptance row: composing τ with (π, σ) must buy
    // at least 2x on a checker row, gated per commit, not just measured
    // once in EXPERIMENTS.md.
    for label in [
        "binary_racing n=2 all-inputs",
        "pairs_kset n=4 pair-swap all-inputs",
    ] {
        let row = table.iter().find(|r| r.label == label).expect("row exists");
        assert!(
            row.full_states >= 2 * row.reduced_states,
            "{label}: object symmetry must halve the explored states: \
             {} -> {}",
            row.full_states,
            row.reduced_states
        );
    }
    // The stabilizer-chain acceptance row: the n=4 unanimous run must carry
    // the *whole* S4 — group order exactly 24, no silent degrade — and buy
    // well past the factor the old per-insert group scan could afford.
    {
        let label = "alg1 n=4 full-symmetry [1,1,1,1]";
        let row = table.iter().find(|r| r.label == label).expect("row exists");
        assert_eq!(
            row.group, 24,
            "{label}: expected the full S4 as the run group"
        );
        assert!(
            row.full_states >= 4 * row.reduced_states,
            "{label}: the S4 reduction collapsed: {} -> {}",
            row.full_states,
            row.reduced_states
        );
    }
    // The derived-object parity gate: the same consensus protocol on atomic
    // one-bit swaps vs the flattened Aspnes construction. Verdicts must
    // match across every binary input vector, and the derived run's state
    // count is pinned alongside (three base steps per visible swap leave
    // mid-operation configurations the native stack never has).
    {
        let c = ModelChecker::new(64, 200_000);
        let native = c.check_all_inputs(&OneBitSwapConsensus);
        let derived = c.check_all_inputs(&OneBitSwapConsensus.derived());
        assert!(native.proves_safety(), "onebit native: {native}");
        assert!(
            native.same_verdict(&derived),
            "onebit consensus: derived verdict diverged: {native} vs {derived}"
        );
        assert!(
            derived.states > native.states,
            "flattening must expand the state space: {} vs {}",
            native.states,
            derived.states
        );
        println!(
            "onebit consensus native-vs-derived   : verdict match ✓  ({} native -> {} derived states)",
            native.states, derived.states
        );
        table.push(ReductionRow {
            label: "onebit consensus native-vs-derived states".to_string(),
            full_states: derived.states,
            reduced_states: native.states,
            group: 1,
        });
    }
    for (row, full, reduced) in swapcons_lower::table1::verify_witnesses() {
        assert!(
            full.same_verdict(&reduced),
            "table1 {row}: reduced verdict diverged: {full} vs {reduced}"
        );
        assert!(full.passed(), "table1 {row}: {full}");
        println!(
            "table1 {row:<48} : verdict match ✓  ({} -> {} states)",
            full.states, reduced.states
        );
        table.push(ReductionRow {
            label: format!("table1 {row}"),
            full_states: full.states,
            reduced_states: reduced.states,
            group: reduced.symmetry_group,
        });
    }
    // The oracle half of the engine-parity sweep: both exploration clients
    // run on the same engine, so the gate covers both — now including the
    // object-symmetry fixtures, whose stabilizer subgroups must come out
    // nontrivial (reduction factor > 1 wherever the bounded search runs).
    for (label, full, reduced) in swapcons_lower::table1::verify_oracle_parity() {
        assert_eq!(
            full.verdict(),
            reduced.verdict(),
            "oracle {label}: verdicts diverged: {full:?} vs {reduced:?}"
        );
        assert_eq!(
            full.witnesses
                .keys()
                .collect::<std::collections::BTreeSet<_>>(),
            reduced
                .witnesses
                .keys()
                .collect::<std::collections::BTreeSet<_>>(),
            "oracle {label}: witness-value sets diverged"
        );
        if label.contains("track-swap") || label.contains("pair-swap") {
            assert!(
                reduced.symmetry_group > 1,
                "oracle {label}: the composed stabilizer degraded to trivial: {reduced:?}"
            );
            assert!(
                reduced.states < full.states,
                "oracle {label}: reduction factor must exceed 1: {full:?} vs {reduced:?}"
            );
        }
        if label.contains("register-pool") {
            assert!(
                reduced.symmetry_group > 1,
                "oracle {label}: the register-pool stabilizer degraded to trivial: {reduced:?}"
            );
        }
        println!(
            "oracle {label:<41} : verdict match ✓  ({} -> {} states, |G|={}, {})",
            full.states,
            reduced.states,
            reduced.symmetry_group,
            full.verdict()
        );
        table.push(ReductionRow {
            label: format!("oracle {label}"),
            full_states: full.states,
            reduced_states: reduced.states,
            group: reduced.symmetry_group,
        });
    }
    let rendered = render_reduction_table(&table);
    println!("\n{rendered}");
    write_bench_artifact("reduction_factors.txt", &rendered);
}

/// Thread counts for the parallel-speedup series: `SWAPCONS_THREADS` as a
/// comma-separated list (e.g. `1,2,4,8`), defaulting to `1,2,4`. A leading
/// `1` is forced in either case — every speedup is relative to the
/// sequential row, and the parity assertion needs it as the baseline.
fn speedup_thread_axis() -> Vec<usize> {
    let mut axis: Vec<usize> = std::env::var("SWAPCONS_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| (1..=swapcons_sim::shard::MAX_THREADS).contains(&t))
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4]);
    if axis[0] != 1 {
        axis.insert(0, 1);
    }
    axis.dedup();
    axis
}

/// The parallel-exploration speedup series: the n=3 acceptance row swept
/// across the thread axis, with a hard parity assertion on every point.
/// Wall-clock ratios are recorded as measured — on the single-vCPU CI box
/// the honest answer is ~1x (parity, not speedup, is the gate there); the
/// series exists so multi-core boxes get a real scaling figure from the
/// same command.
///
/// Parity discipline on this row: the n=3 search is **depth-bounded** (lap
/// counters grow without bound, so no depth completes it), and at a depth
/// cutoff the explored subset is traversal-order-dependent — the sharded
/// engine's breadth-first waves see every state at its *minimum* depth and
/// so legally explore a few more states than the sequential depth-first
/// engine. Verdicts must still agree with the sequential baseline, and all
/// sharded thread counts must agree with each other **exactly** (the wave
/// set is canonical, independent of worker count). Complete searches get
/// the stronger sequential-equal-states guarantee; that is gated in
/// `tests/sharded_parity.rs` and the library tests, not here.
fn parallel_speedup(points: &mut Vec<(f64, f64)>) {
    println!("\n====== parallel exploration speedup (alg1 n=3 [0,1,1], depth=14) ======");
    let p = SwapKSet::consensus(3, 2);
    let checker = ModelChecker::new(14, 2_000_000);
    let axis = speedup_thread_axis();
    let mut rows = String::new();
    let _ = writeln!(
        rows,
        "# parallel speedup: alg1 n=3 [0,1,1] depth=14 (best of 3, {} host cores)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    let _ = writeln!(
        rows,
        "# depth-bounded row: sharded waves explore the canonical min-depth set,"
    );
    let _ = writeln!(
        rows,
        "# so t>=2 state counts match each other, not the depth-first t=1 count"
    );
    let _ = writeln!(
        rows,
        "{:>8} {:>10} {:>10} {:>12} {:>9}",
        "threads", "states", "secs", "states/s", "speedup"
    );
    let mut sequential: Option<(CheckReport, f64)> = None;
    let mut sharded_reference: Option<CheckReport> = None;
    for &t in &axis {
        let threaded = checker.with_threads(t);
        let (states, secs) = best_of_3(|| {
            let report = threaded.check(&p, &[0, 1, 1]);
            assert!(report.passed(), "{report}");
            report.states
        });
        let report = threaded.check(&p, &[0, 1, 1]);
        let (speedup_label, speedup) = match &sequential {
            None => ("baseline".to_string(), 1.0),
            Some((seq, seq_secs)) => {
                assert!(
                    seq.same_verdict(&report),
                    "t={t}: sharded verdict diverged: {seq} vs {report}"
                );
                assert_eq!(seq.deepest, report.deepest, "t={t}: depth horizon moved");
                match &sharded_reference {
                    None => sharded_reference = Some(report.clone()),
                    Some(reference) => assert!(
                        reference.same_verdict(&report) && reference.states == report.states,
                        "t={t}: sharded runs disagree with each other: {reference} vs {report}"
                    ),
                }
                let speedup = seq_secs / secs;
                (format!("{speedup:.2}x vs sequential"), speedup)
            }
        };
        if sequential.is_none() {
            sequential = Some((report, secs));
        }
        let _ = writeln!(
            rows,
            "{t:>8} {states:>10} {secs:>10.3} {:>12.0} {speedup:>8.2}x",
            states as f64 / secs
        );
        println!(
            "alg1 n=3 [0,1,1] t={t:<2}          : {states:>9} states in {secs:>8.3}s \
             ({:>10.0}/s) | {speedup_label}",
            states as f64 / secs
        );
        if t == 1 {
            points.push((6.0, states as f64 / secs));
        }
    }
    write_bench_artifact("parallel_speedup.txt", &rows);
}

/// Adversary synthesis — the engine's first genuinely new client. Each row
/// searches for a worst-case schedule, asserts the domain invariant the
/// extremum must respect, and prints the schedule itself. The section is
/// also written directly to `$BENCH_SERIES_DIR/synthesized_schedules.txt`
/// (no log scraping — the old `awk` pipeline silently depended on section
/// headers staying verbatim), with a hard failure if it would be empty.
fn synthesized_schedules(points: &mut Vec<(f64, f64)>) {
    let mut section = String::new();
    let emit = |line: String, section: &mut String| {
        println!("{line}");
        section.push_str(&line);
        section.push('\n');
    };
    emit(
        "\n====== synthesized worst-case schedules (adversary synthesis) ======".into(),
        &mut section,
    );
    // Lap-maximizing livelock on Algorithm 1 at n=2: the searched analog of
    // the hand-coded lap-lead chaser.
    {
        let p = SwapKSet::consensus(2, 2);
        let objective = |proto: &SwapKSet, c: &Configuration<SwapKSet>| -> u64 {
            if c.decisions_iter().flatten().next().is_some() {
                return 0;
            }
            let local: u64 = (0..proto.num_processes())
                .filter_map(|i| c.state(ProcessId(i)))
                .map(|s| s.u.as_slice().iter().sum::<u64>())
                .sum();
            let shared: u64 = (0..proto.num_objects())
                .map(|i| c.value(ObjectId(i)).laps.as_slice().iter().sum::<u64>())
                .sum();
            local + shared
        };
        // Capture the last run's report from inside the timed closure —
        // the workload is deterministic, so re-running just for the report
        // would waste a full search.
        let mut last = None;
        let (states, secs) = best_of_3(|| {
            let report = engine::synthesize(&p, &[0, 1], 16, 200_000, objective);
            assert!(report.complete);
            assert!(report.config.decided_values().is_empty(), "livelock");
            let states = report.states;
            last = Some(report);
            states
        });
        let report = last.expect("best_of_3 ran the closure");
        emit(
            format!(
                "alg1 n=2 max-laps depth=16     : score {:>3} over {states:>6} states in {secs:>7.3}s ({:>9.0}/s) schedule {:?}",
                report.best_score,
                states as f64 / secs,
                report.schedule
            ),
            &mut section,
        );
        points.push((5.0, states as f64 / secs));
    }
    // Lemma 8 pressure on Algorithm 1 at n=3: the configuration needing the
    // most solo steps to decide — must stay under the paper's 8(n-k).
    {
        let p = SwapKSet::consensus(3, 2);
        let bound = p.solo_step_bound();
        let report = searched_solo_pressure(&p, &[0, 1, 1], 8, 60_000, bound);
        assert!(
            report.best_score <= bound as u64,
            "Lemma 8 violated: {report:?}"
        );
        emit(
            format!(
                "alg1 n=3 solo-pressure depth=8 : score {:>3} (Lemma 8 bound {bound}) over {:>6} states, schedule {:?}",
                report.best_score, report.states, report.schedule
            ),
            &mut section,
        );
    }
    // Track pressure on the racing baseline: maximal undecided progress.
    {
        let p = BinaryRacing::with_track_len(3, 8);
        let report = searched_object_pressure(&p, &[0, 1, 0], 12, 150_000);
        assert!(report.config.decided_values().is_empty());
        emit(
            format!(
                "binary_racing n=3 track-pressure depth=12 : score {:>3} over {:>6} states, schedule {:?}",
                report.best_score, report.states, report.schedule
            ),
            &mut section,
        );
    }
    write_bench_artifact("synthesized_schedules.txt", &section);
}

fn print_series() {
    verify_reduction_consistency();
    println!("\n====== exploration throughput (states/sec, best of 3) ======");
    let mut points = Vec::new();

    // n=2 Algorithm 1, all input vectors, no solo checking.
    {
        let p = SwapKSet::consensus(2, 2);
        let (full_rate, _) = reduced_row(
            "alg1 n=2 all-inputs depth=30",
            ModelChecker::new(30, 200_000),
            &|c| c.check_all_inputs(&p),
        );
        points.push((2.0, full_rate));
    }

    // n=3 Algorithm 1 — THE acceptance metric for exploration perf PRs.
    {
        let p = SwapKSet::consensus(3, 2);
        let (full_rate, _) = reduced_row(
            "alg1 n=3 [0,1,1]   depth=22",
            ModelChecker::new(22, 2_000_000),
            &|c| c.check(&p, &[0, 1, 1]),
        );
        points.push((3.0, full_rate));
    }

    // n=3 unanimous inputs: the full S3 group — the PR 3 headline row.
    {
        let p = SwapKSet::consensus(3, 2);
        let (_, reduced_rate) = reduced_row(
            "alg1 n=3 [1,1,1]   depth=22",
            ModelChecker::new(22, 2_000_000),
            &|c| c.check(&p, &[1, 1, 1]),
        );
        points.push((3.25, reduced_rate));
    }

    // n=3 with the solo-termination check on every visited state — memoized
    // (the default) vs not, same verdicts by construction.
    {
        let p = SwapKSet::consensus(3, 2);
        let memo_checker = ModelChecker::new(12, 2_000_000).with_solo_budget(p.solo_step_bound());
        let (states, secs) = best_of_3(|| {
            let report = memo_checker.check(&p, &[0, 1, 1]);
            assert!(report.passed(), "{report}");
            report.states
        });
        let rate = states as f64 / secs;
        let (nm_states, nm_secs) = best_of_3(|| {
            let report = memo_checker.without_solo_memo().check(&p, &[0, 1, 1]);
            assert!(report.passed(), "{report}");
            report.states
        });
        assert_eq!(states, nm_states, "memo must not change the explored set");
        println!(
            "alg1 n=3 +solo     depth=12    : {states:>9} states in {secs:>8.3}s = {rate:>12.0} states/s (no-memo {nm_secs:>7.3}s, {:.2}x)",
            nm_secs / secs
        );
        points.push((3.5, rate));
    }

    // Section 5: the Lemma 16 construction at n=3 (valency-oracle bound),
    // full and reduced-oracle budgets.
    {
        let p = BinaryRacing::with_track_len(3, 8);
        let (stages, secs) = best_of_3(|| {
            let report = lemma16_driver(&p, &[0, 1, 0], &Budgets::small());
            assert!(report.complete(), "{report}");
            report.stages.len()
        });
        let (red_stages, red_secs) = best_of_3(|| {
            let report = lemma16_driver(&p, &[0, 1, 0], &Budgets::small_reduced());
            assert!(report.complete(), "{report}");
            report.stages.len()
        });
        assert_eq!(stages, red_stages);
        println!(
            "section5 lemma16 n=3           : {stages} stages in {secs:>8.3}s (reduced oracle {red_secs:>8.3}s, {:.2}x)",
            secs / red_secs
        );
        points.push((4.0, 1.0 / secs));
    }

    parallel_speedup(&mut points);
    synthesized_schedules(&mut points);

    println!(
        "\n{}",
        render_series(
            "exploration throughput (x: workload id)",
            "workload",
            "states_per_sec",
            &points
        )
    );
}

fn bench_explore(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig_explore");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("model_check/alg1_n2_all_inputs", |b| {
        let p = SwapKSet::consensus(2, 2);
        let checker = ModelChecker::new(30, 200_000);
        b.iter(|| {
            let report = checker.check_all_inputs(&p);
            assert!(report.passed());
            report.states
        })
    });
    group.bench_function("model_check/alg1_n3_depth14", |b| {
        let p = SwapKSet::consensus(3, 2);
        let checker = ModelChecker::new(14, 2_000_000);
        b.iter(|| {
            let report = checker.check(&p, &[0, 1, 1]);
            assert!(report.passed());
            report.states
        })
    });
    group.bench_function("model_check/alg1_n3_depth14_reduced", |b| {
        let p = SwapKSet::consensus(3, 2);
        let checker = ModelChecker::new(14, 2_000_000).with_symmetry_reduction();
        b.iter(|| {
            let report = checker.check(&p, &[0, 1, 1]);
            assert!(report.passed());
            report.states
        })
    });
    group.bench_function("section5/lemma16_n3", |b| {
        let p = BinaryRacing::with_track_len(3, 8);
        b.iter(|| {
            let report = lemma16_driver(&p, &[0, 1, 0], &Budgets::small());
            assert!(report.complete());
            report.stages.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
