//! E8 — **exploration throughput**: states/second for the exhaustive
//! searches, the metric every perf PR to the exploration hot path must move.
//!
//! Four workloads, spanning the repo's verification surfaces:
//!
//! * `ModelChecker` on Algorithm 1 at n=2 (all 4 input vectors) and n=3
//!   (the "model-checker scale" regime where state explosion made per-node
//!   deep clones the bottleneck);
//! * the same n=3 run with the solo-termination (obstruction-freedom) check
//!   enabled, which layers a solo run per running process on every visited
//!   state;
//! * the Section 5 / Lemma 16 construction on `BinaryRacing` at n=3, whose
//!   inner loop is the valency oracle's bounded search.
//!
//! Each series point is the best of three runs after one warm-up (the
//! measurement box is a shared single-core VM, so minimum-of-N is the
//! stable statistic); EXPERIMENTS.md records the trajectory across PRs.
//!
//! Run: `cargo bench -p swapcons-bench --bench fig_explore`

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use swapcons_baselines::BinaryRacing;
use swapcons_bench::harness::render_series;
use swapcons_core::SwapKSet;
use swapcons_lower::section5::{lemma16_driver, Budgets};
use swapcons_sim::explore::ModelChecker;

/// Best-of-3 wall clock (after one untimed warm-up) for `run`, which
/// returns the number of states (or stages) it processed.
fn best_of_3(mut run: impl FnMut() -> usize) -> (usize, f64) {
    let count = run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let c = run();
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(c, count, "deterministic workload");
    }
    (count, best)
}

fn print_series() {
    println!("\n====== exploration throughput (states/sec, best of 3) ======");
    let mut points = Vec::new();

    // n=2 Algorithm 1, all input vectors, no solo checking.
    {
        let p = SwapKSet::consensus(2, 2);
        let checker = ModelChecker::new(30, 200_000);
        let (states, secs) = best_of_3(|| {
            let report = checker.check_all_inputs(&p);
            assert!(report.passed(), "{report}");
            report.states
        });
        let rate = states as f64 / secs;
        println!(
            "alg1 n=2 all-inputs depth=30   : {states:>9} states in {secs:>8.3}s = {rate:>12.0} states/s"
        );
        points.push((2.0, rate));
    }

    // n=3 Algorithm 1 — THE acceptance metric for exploration perf PRs.
    {
        let p = SwapKSet::consensus(3, 2);
        let checker = ModelChecker::new(22, 2_000_000);
        let (states, secs) = best_of_3(|| {
            let report = checker.check(&p, &[0, 1, 1]);
            assert!(report.passed(), "{report}");
            report.states
        });
        let rate = states as f64 / secs;
        println!(
            "alg1 n=3 [0,1,1]   depth=22    : {states:>9} states in {secs:>8.3}s = {rate:>12.0} states/s"
        );
        points.push((3.0, rate));
    }

    // n=3 with the solo-termination check on every visited state.
    {
        let p = SwapKSet::consensus(3, 2);
        let checker = ModelChecker::new(12, 2_000_000).with_solo_budget(p.solo_step_bound());
        let (states, secs) = best_of_3(|| {
            let report = checker.check(&p, &[0, 1, 1]);
            assert!(report.passed(), "{report}");
            report.states
        });
        let rate = states as f64 / secs;
        println!(
            "alg1 n=3 +solo     depth=12    : {states:>9} states in {secs:>8.3}s = {rate:>12.0} states/s"
        );
        points.push((3.5, rate));
    }

    // Section 5: the Lemma 16 construction at n=3 (valency-oracle bound).
    {
        let p = BinaryRacing::with_track_len(3, 8);
        let (stages, secs) = best_of_3(|| {
            let report = lemma16_driver(&p, &[0, 1, 0], &Budgets::small());
            assert!(report.complete(), "{report}");
            report.stages.len()
        });
        println!("section5 lemma16 n=3           : {stages} stages in {secs:>8.3}s");
        points.push((4.0, 1.0 / secs));
    }

    println!(
        "\n{}",
        render_series(
            "exploration throughput (x: workload id)",
            "workload",
            "states_per_sec",
            &points
        )
    );
}

fn bench_explore(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig_explore");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("model_check/alg1_n2_all_inputs", |b| {
        let p = SwapKSet::consensus(2, 2);
        let checker = ModelChecker::new(30, 200_000);
        b.iter(|| {
            let report = checker.check_all_inputs(&p);
            assert!(report.passed());
            report.states
        })
    });
    group.bench_function("model_check/alg1_n3_depth14", |b| {
        let p = SwapKSet::consensus(3, 2);
        let checker = ModelChecker::new(14, 2_000_000);
        b.iter(|| {
            let report = checker.check(&p, &[0, 1, 1]);
            assert!(report.passed());
            report.states
        })
    });
    group.bench_function("section5/lemma16_n3", |b| {
        let p = BinaryRacing::with_track_len(3, 8);
        b.iter(|| {
            let report = lemma16_driver(&p, &[0, 1, 0], &Budgets::small());
            assert!(report.complete());
            report.stages.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
