//! E7 — the k-set agreement **space/cost sweep**: at fixed `n`, sweep `k`
//! and report the object counts of the swap-based algorithms (Algorithm 1:
//! `n-k`; pairs where applicable: `n-k`) against the register reduction
//! (`2(n-k+1)` measured, `n-k+1` literature) and the lower bounds
//! `⌈n/k⌉-1` (swap) and `⌈n/k⌉` (registers). The "who wins" shape of
//! Table 1: swap saves one object over registers at every `k`, and the
//! lower-bound/upper-bound gap `n-k` vs `⌈n/k⌉-1` opens as `k` grows.
//!
//! Run: `cargo bench -p swapcons-bench --bench fig_kset_sweep`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swapcons_baselines::RegisterKSet;
use swapcons_bench::harness::{cyclic_inputs, decide_all, try_decide_all};
use swapcons_core::pairs::PairsKSet;
use swapcons_core::SwapKSet;
use swapcons_lower::Table1Row;
use swapcons_sim::Protocol;

fn print_sweep() {
    let n = 12usize;
    println!("\n====== k-sweep at n = {n}: space (objects) ======");
    println!(
        "{:>3} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "k", "swap LB", "Alg1 space", "register LB", "regs space", "pairs space"
    );
    for k in 1..n {
        let m = (k + 1) as u64;
        let swap_lb = Table1Row::KSetSwap.lower_bound().at(n, k, 2);
        let alg1 = SwapKSet::new(n, k, m).num_objects();
        let reg_lb = Table1Row::KSetRegisters.lower_bound().at(n, k, 2);
        let regs = RegisterKSet::new(n, k, m).num_objects();
        let pairs = (2 * k >= n).then(|| PairsKSet::new(n, k, m).num_objects());
        println!(
            "{k:>3} {swap_lb:>12.1} {alg1:>12} {reg_lb:>14.1} {regs:>12} {:>12}",
            pairs.map_or("-".into(), |x| x.to_string())
        );
        assert!(alg1 as f64 >= swap_lb, "Algorithm 1 cannot beat Theorem 10");
    }

    println!("\n====== k-sweep at n = {n}: steps to decide everyone ======");
    for k in [1usize, 2, 3, 4, 6, 8, 11] {
        let m = (k + 1) as u64;
        let p = SwapKSet::new(n, k, m);
        let mut total = 0usize;
        let mut completed = 0usize;
        const SEEDS: usize = 5;
        for seed in 0..SEEDS as u64 {
            // One failing seed costs a warning line, not the whole sweep.
            match try_decide_all(&p, &cyclic_inputs(n, m), 5 * n, seed, p.solo_step_bound()) {
                Ok((steps, decisions)) => {
                    assert!(p.task().check(&cyclic_inputs(n, m), &decisions).is_ok());
                    total += steps;
                    completed += 1;
                }
                Err(e) => eprintln!("k={k} seed={seed}: row failed, skipping: {e}"),
            }
        }
        assert!(completed > 0, "k={k}: every seed failed");
        println!(
            "k={k:>2}: avg steps {:>6} (space {})",
            total / completed,
            p.space()
        );
    }
    println!();
}

fn bench_sweep(c: &mut Criterion) {
    print_sweep();
    let n = 12usize;
    let mut group = c.benchmark_group("fig_kset/decide_all_n12");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [1usize, 2, 4, 8] {
        let m = (k + 1) as u64;
        let p = SwapKSet::new(n, k, m);
        group.bench_with_input(BenchmarkId::new("algorithm1", k), &k, |b, _| {
            b.iter(|| decide_all(&p, &cyclic_inputs(n, m), 5 * n, 3, p.solo_step_bound()))
        });
        let r = RegisterKSet::new(n, k, m);
        group.bench_with_input(BenchmarkId::new("registers", k), &k, |b, _| {
            b.iter(|| decide_all(&r, &cyclic_inputs(n, m), 5 * n, 3, r.solo_step_bound()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
