//! E4–E6 — **Figures 2–6**: the Section 5 inductive constructions run
//! against the binary-object consensus baseline. Each stage reports its
//! critical step (Lemma 14's `j`), the critical object, and the case split
//! (frozen vs covered); the drivers re-verify the papers' invariants —
//! Lemma 16 (a)–(d) and Lemma 20's accounting `Σ(2|f|+|g|)+|S| ≥ i` — at
//! every stage.
//!
//! Run: `cargo bench -p swapcons-bench --bench fig_section5`

use criterion::{criterion_group, criterion_main, Criterion};
use swapcons_baselines::BinaryRacing;
use swapcons_lower::section5::{self, Budgets};

fn print_constructions() {
    println!("\n====== Figure 5 / Theorem 18: Lemma 16 construction ======");
    for n in [3usize, 4] {
        let p = BinaryRacing::with_track_len(n, 8);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let report = section5::lemma16_driver(&p, &inputs, &Budgets::small());
        println!("n={n}: {report}");
        for s in &report.stages {
            println!(
                "  stage {}: p{} critical j={} at {:?} value {} -> {:?} (invariants {})",
                s.i,
                s.process.index(),
                s.j,
                s.object,
                s.value,
                s.case,
                if s.invariants_ok { "ok" } else { "FAILED" }
            );
        }
        assert!(
            report.complete(),
            "construction must finish on small instances: {report}"
        );
    }

    println!("\n====== Figure 6 / Theorem 22: Lemma 20 construction (b = 2) ======");
    for n in [3usize, 4] {
        let p = BinaryRacing::with_track_len(n, 8);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let report = section5::lemma20_driver(&p, &inputs, &Budgets::small());
        println!("n={n}: {report}");
        assert!(
            report.accounting >= report.stages.len(),
            "Lemma 20 accounting invariant: {report}"
        );
    }

    println!("\n====== Figures 3–4 / Lemma 14(b) fidelity probe (n = 3) ======");
    {
        use swapcons_sim::{Configuration, ProcessId};
        let p = BinaryRacing::with_track_len(3, 8);
        let budgets = Budgets::small();
        let q = [ProcessId(0), ProcessId(1)];
        let pi = ProcessId(2);
        let config = Configuration::initial(&p, &[0, 1, 0]).unwrap();
        // Probe around stage 0's critical step via the public driver pieces:
        // rerun the driver and reuse its reported critical index by
        // replaying pi's solo prefix.
        let report = section5::lemma16_driver(&p, &[0, 1, 0], &budgets);
        let stage = &report.stages[0];
        let mut world = config.clone();
        let mut critical = None;
        for _ in 0..=stage.j {
            critical = Some(world.step(&p, pi).unwrap());
        }
        let critical = critical.expect("j >= 0 implies at least one recorded step");
        // world has advanced past the critical step; rebuild α_j's config
        // as the solo prefix of length j.
        let mut alpha = config.clone();
        for _ in 0..stage.j {
            alpha.step(&p, pi).unwrap();
        }
        let (checked, still_bivalent) =
            section5::verify_lemma14b(&p, &alpha, &q, &[], pi, &critical, &budgets, 300);
        println!(
            "critical step at j = {}: {} preconditioned samples, {} kept Q bivalent \
             (0 at the exact critical index; positives measure the bounded search's gap)",
            stage.j, checked, still_bivalent
        );
    }
    println!();
}

fn bench_drivers(c: &mut Criterion) {
    print_constructions();
    let mut group = c.benchmark_group("fig_section5");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let p = BinaryRacing::with_track_len(3, 8);
    group.bench_function("lemma16_n3", |b| {
        b.iter(|| section5::lemma16_driver(&p, &[0, 1, 0], &Budgets::small()))
    });
    group.bench_function("lemma20_n3", |b| {
        b.iter(|| section5::lemma20_driver(&p, &[0, 1, 0], &Budgets::small()))
    });
    group.finish();
}

criterion_group!(benches, bench_drivers);
criterion_main!(benches);
