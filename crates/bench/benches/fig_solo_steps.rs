//! E3 — **Lemma 8's solo bound**: from adversarially perturbed reachable
//! configurations, the worst-case solo decision run of Algorithm 1 must stay
//! within `8(n-k)` swaps. The series shows measured worst cases scaling
//! linearly in `n-k` under the paper's bound.
//!
//! Run: `cargo bench -p swapcons-bench --bench fig_solo_steps`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swapcons_bench::harness::{cyclic_inputs, render_series, try_max_solo_steps};
use swapcons_core::SwapKSet;
use swapcons_sim::{Configuration, ProcessId};

fn print_series() {
    println!("\n====== Lemma 8: worst observed solo steps vs the 8(n-k) bound ======");
    let mut points = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64] {
        let p = SwapKSet::consensus(n, 2);
        let mut worst = 0usize;
        let mut failed = false;
        for seed in 0..10 {
            match try_max_solo_steps(&p, &cyclic_inputs(n, 2), 6 * n, seed, p.solo_step_bound()) {
                Ok(w) => worst = worst.max(w),
                Err(e) => {
                    // One failing row costs a warning, not the whole curve
                    // (the exhausted-budget case is itself the finding — it
                    // would mean Lemma 8 broke at this n).
                    eprintln!("n={n} seed={seed}: row failed, skipping: {e}");
                    failed = true;
                }
            }
        }
        assert!(worst <= p.solo_step_bound());
        println!(
            "n={n:>3} k=1: worst solo = {worst:>4} steps, bound 8(n-k) = {}{}",
            p.solo_step_bound(),
            if failed { "  [rows skipped]" } else { "" }
        );
        points.push((n as f64, worst as f64));
    }
    println!(
        "\n{}",
        render_series("worst solo steps vs n (k=1)", "n", "steps", &points)
    );

    println!("====== same, sweeping k at n = 24 ======");
    for k in [1usize, 2, 4, 8, 12, 16, 20] {
        let p = SwapKSet::new(24, k, (k + 1) as u64);
        let mut worst = 0usize;
        for seed in 0..5 {
            match try_max_solo_steps(
                &p,
                &cyclic_inputs(24, (k + 1) as u64),
                120,
                seed,
                p.solo_step_bound(),
            ) {
                Ok(w) => worst = worst.max(w),
                Err(e) => eprintln!("k={k} seed={seed}: row failed, skipping: {e}"),
            }
        }
        assert!(worst <= p.solo_step_bound());
        println!(
            "n=24 k={k:>2}: worst solo = {worst:>4}, bound = {}",
            p.solo_step_bound()
        );
    }
    println!();
}

fn bench_solo(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig_solo/solo_run");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [4usize, 16, 64] {
        let p = SwapKSet::consensus(n, 2);
        let config = Configuration::initial(&p, &cyclic_inputs(n, 2)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                swapcons_sim::runner::solo_run_cloned(
                    &p,
                    &config,
                    ProcessId(0),
                    p.solo_step_bound(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solo);
criterion_main!(benches);
