//! E1 — regenerate **Table 1** of the paper: all eight rows, lower/upper
//! bound formulas evaluated against the measured object counts of this
//! repository's implementations, plus wall-clock cost of deciding under each
//! witness algorithm.
//!
//! Run: `cargo bench -p swapcons-bench --bench table1`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swapcons_baselines::{CommitAdoptConsensus, ReadableRacing};
use swapcons_bench::harness::{cyclic_inputs, decide_all};
use swapcons_core::SwapKSet;
use swapcons_lower::table1;

fn print_table1() {
    let ns = [4usize, 8, 16, 64, 256];
    let ks = [2usize, 4];
    let entries = table1::generate(&ns, &ks, 2);
    println!("\n================ Table 1 (regenerated) ================");
    println!("{}", table1::render(&entries));
    let violations = table1::violations(&entries);
    assert!(
        violations.is_empty(),
        "an implementation undercut a paper lower bound: {violations:?}"
    );
    println!("cross-check: no implementation beats any paper lower bound ✓\n");
}

fn bench_row_witnesses(c: &mut Criterion) {
    print_table1();
    let mut group = c.benchmark_group("table1/decide_all");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [4usize, 8, 16] {
        let swap = SwapKSet::consensus(n, 2);
        group.bench_with_input(BenchmarkId::new("consensus_swap", n), &n, |b, _| {
            b.iter(|| {
                decide_all(
                    &swap,
                    &cyclic_inputs(n, 2),
                    4 * n,
                    11,
                    swap.solo_step_bound(),
                )
            })
        });
        let regs = CommitAdoptConsensus::new(n, 2);
        group.bench_with_input(BenchmarkId::new("consensus_registers", n), &n, |b, _| {
            b.iter(|| {
                decide_all(
                    &regs,
                    &cyclic_inputs(n, 2),
                    4 * n,
                    11,
                    regs.solo_step_bound(),
                )
            })
        });
        let readable = ReadableRacing::new(n, 2);
        group.bench_with_input(
            BenchmarkId::new("consensus_readable_swap", n),
            &n,
            |b, _| {
                b.iter(|| {
                    decide_all(
                        &readable,
                        &cyclic_inputs(n, 2),
                        4 * n,
                        11,
                        readable.solo_step_bound(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_row_witnesses);
criterion_main!(benches);
