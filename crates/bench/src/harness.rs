//! Shared helpers for the benchmark targets: canonical workloads and
//! plain-text series rendering (every bench prints the table/figure data it
//! regenerates, so `cargo bench` output is the artifact recorded in
//! EXPERIMENTS.md).

use swapcons_sim::runner::SoloRunError;
use swapcons_sim::{Configuration, ProcessId, Protocol};

/// A cyclic input assignment `0, 1, …, m-1, 0, 1, …` for `n` processes —
/// the maximally-contended workload used throughout the evaluation.
pub fn cyclic_inputs(n: usize, m: u64) -> Vec<u64> {
    (0..n).map(|i| (i as u64) % m).collect()
}

/// Decide every process: random contention for `contention` steps, then each
/// still-running process runs solo (the canonical obstruction-free
/// schedule). Returns (total steps, decisions).
///
/// # Panics
///
/// Panics if the inputs are rejected by the protocol ([`SimError`] from
/// [`Configuration::initial`]), if any step violates an object schema
/// ([`SimError`] from the contention run or [`SoloRunError::Sim`] from a
/// solo run — a protocol bug either way), or if a solo run exhausts
/// `solo_budget` without deciding ([`SoloRunError::BudgetExhausted`] — an
/// obstruction-freedom violation or an undersized budget).
/// [`SoloRunError::AlreadyDecided`] is *not* a panic: `Configuration::
/// running` only yields undecided processes and solo runs step no one else,
/// so it cannot occur here; it is tolerated as a skip for robustness.
///
/// [`SimError`]: swapcons_sim::SimError
pub fn decide_all<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    seed: u64,
    solo_budget: usize,
) -> (usize, Vec<Option<u64>>) {
    let mut config = Configuration::initial(protocol, inputs).expect("protocol rejected inputs");
    let mut sched = swapcons_sim::scheduler::SeededRandom::new(seed);
    let out = swapcons_sim::runner::run(protocol, &mut config, &mut sched, contention)
        .expect("schema violation during contention phase");
    let mut steps = out.steps;
    for pid in config.running() {
        match swapcons_sim::runner::solo_run(protocol, &mut config, pid, solo_budget) {
            Ok(solo) => steps += solo.steps,
            Err(SoloRunError::AlreadyDecided(_)) => {}
            Err(e @ SoloRunError::BudgetExhausted { .. }) => {
                panic!("obstruction-freedom violation for {pid}: {e}")
            }
            Err(e @ SoloRunError::Sim(_)) => panic!("schema violation in {pid}'s solo run: {e}"),
        }
    }
    (steps, config.decisions())
}

/// Measure the longest solo run over every process from a
/// contention-perturbed configuration (the Lemma 8 experiment's inner loop).
///
/// # Panics
///
/// Same contract as [`decide_all`]: panics on rejected inputs, schema
/// violations, or a solo budget exhaustion; a (normally impossible)
/// [`SoloRunError::AlreadyDecided`] contributes zero steps instead of
/// panicking. Each solo run here clones the configuration
/// ([`swapcons_sim::runner::solo_run_cloned`]), so every process is measured
/// from the *same* perturbed configuration.
pub fn max_solo_steps<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    seed: u64,
    solo_budget: usize,
) -> usize {
    let mut config = Configuration::initial(protocol, inputs).expect("protocol rejected inputs");
    let mut sched = swapcons_sim::scheduler::SeededRandom::new(seed);
    swapcons_sim::runner::run(protocol, &mut config, &mut sched, contention)
        .expect("schema violation during contention phase");
    let mut worst = 0;
    for pid in config.running() {
        match swapcons_sim::runner::solo_run_cloned(protocol, &config, pid, solo_budget) {
            Ok((out, _)) => worst = worst.max(out.steps),
            Err(SoloRunError::AlreadyDecided(_)) => {}
            Err(e @ SoloRunError::BudgetExhausted { .. }) => {
                panic!("obstruction-freedom violation for {pid}: {e}")
            }
            Err(e @ SoloRunError::Sim(_)) => panic!("schema violation in {pid}'s solo run: {e}"),
        }
    }
    worst
}

/// Render a two-column data series as aligned text, with a title line —
/// the "figure" format the benches print.
pub fn render_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "{x_label:>12} {y_label:>16}");
    for (x, y) in points {
        let _ = writeln!(out, "{x:>12.2} {y:>16.3}");
    }
    out
}

/// Processes `0..n` as a vector of ids.
pub fn all_pids(n: usize) -> Vec<ProcessId> {
    ProcessId::all(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_core::SwapKSet;

    #[test]
    fn cyclic_inputs_cover_the_domain() {
        assert_eq!(cyclic_inputs(5, 2), vec![0, 1, 0, 1, 0]);
        assert_eq!(cyclic_inputs(3, 5), vec![0, 1, 2]);
    }

    #[test]
    fn decide_all_satisfies_the_task() {
        let p = SwapKSet::new(5, 2, 3);
        let inputs = cyclic_inputs(5, 3);
        let (steps, decisions) = decide_all(&p, &inputs, 40, 7, p.solo_step_bound());
        assert!(steps > 0);
        assert!(p.task().check(&inputs, &decisions).is_ok());
        assert!(decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn max_solo_steps_respects_lemma8() {
        let p = SwapKSet::consensus(6, 2);
        let worst = max_solo_steps(&p, &cyclic_inputs(6, 2), 60, 3, p.solo_step_bound());
        assert!(worst <= p.solo_step_bound());
        assert!(worst > 0);
    }

    #[test]
    #[should_panic(expected = "obstruction-freedom violation")]
    fn decide_all_panics_on_exhausted_solo_budget() {
        // A zero solo budget cannot decide anyone who is still running.
        let p = SwapKSet::consensus(3, 2);
        let _ = decide_all(&p, &cyclic_inputs(3, 2), 0, 7, 0);
    }

    #[test]
    fn series_rendering() {
        let s = render_series("t", "n", "steps", &[(1.0, 2.0), (3.0, 4.5)]);
        assert!(s.starts_with("# t"));
        assert_eq!(s.lines().count(), 4);
    }
}
