//! Shared helpers for the benchmark targets: canonical workloads and
//! plain-text series rendering (every bench prints the table/figure data it
//! regenerates, so `cargo bench` output is the artifact recorded in
//! EXPERIMENTS.md).

use std::path::{Path, PathBuf};

use swapcons_sim::runner::SoloRunError;
use swapcons_sim::{Configuration, ProcessId, Protocol, SimError};

/// Why a single workload row failed. The fallible entry points
/// ([`try_decide_all`], [`try_max_solo_steps`]) return this instead of
/// panicking, so a bench series can log the failing row and keep measuring
/// the rest instead of losing the whole run to one bad configuration.
#[derive(Debug)]
pub enum HarnessError {
    /// The protocol rejected the input vector at initialization.
    RejectedInputs(SimError),
    /// A step during the random contention phase violated an object schema.
    Contention(SimError),
    /// A solo run failed: budget exhaustion (an obstruction-freedom
    /// violation or an undersized budget) or a schema violation.
    Solo {
        /// The process whose solo run failed.
        pid: ProcessId,
        /// The underlying solo-run error.
        source: SoloRunError,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::RejectedInputs(e) => write!(f, "protocol rejected inputs: {e}"),
            HarnessError::Contention(e) => {
                write!(f, "schema violation during contention phase: {e}")
            }
            HarnessError::Solo {
                pid,
                source: e @ SoloRunError::BudgetExhausted { .. },
            } => write!(f, "obstruction-freedom violation for {pid}: {e}"),
            HarnessError::Solo { pid, source } => {
                write!(f, "schema violation in {pid}'s solo run: {source}")
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::RejectedInputs(e) | HarnessError::Contention(e) => Some(e),
            HarnessError::Solo { source, .. } => Some(source),
        }
    }
}

/// A cyclic input assignment `0, 1, …, m-1, 0, 1, …` for `n` processes —
/// the maximally-contended workload used throughout the evaluation.
pub fn cyclic_inputs(n: usize, m: u64) -> Vec<u64> {
    (0..n).map(|i| (i as u64) % m).collect()
}

/// Decide every process: random contention for `contention` steps, then each
/// still-running process runs solo (the canonical obstruction-free
/// schedule). Returns (total steps, decisions).
///
/// Fallible form of [`decide_all`]: every failure mode — rejected inputs,
/// a schema violation in either phase, or an exhausted solo budget — comes
/// back as a [`HarnessError`] so a series driver can log the row and move
/// on. [`SoloRunError::AlreadyDecided`] is *not* an error:
/// `Configuration::running` only yields undecided processes and solo runs
/// step no one else, so it cannot occur here; it is tolerated as a skip for
/// robustness.
pub fn try_decide_all<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    seed: u64,
    solo_budget: usize,
) -> Result<(usize, Vec<Option<u64>>), HarnessError> {
    let mut config =
        Configuration::initial(protocol, inputs).map_err(HarnessError::RejectedInputs)?;
    let mut sched = swapcons_sim::scheduler::SeededRandom::new(seed);
    let out = swapcons_sim::runner::run(protocol, &mut config, &mut sched, contention)
        .map_err(HarnessError::Contention)?;
    let mut steps = out.steps;
    for pid in config.running() {
        match swapcons_sim::runner::solo_run(protocol, &mut config, pid, solo_budget) {
            Ok(solo) => steps += solo.steps,
            Err(SoloRunError::AlreadyDecided(_)) => {}
            Err(source) => return Err(HarnessError::Solo { pid, source }),
        }
    }
    Ok((steps, config.decisions()))
}

/// Panicking wrapper over [`try_decide_all`] for the hot benchmark loops,
/// where a failing workload should abort the measurement immediately.
///
/// # Panics
///
/// Panics with the [`HarnessError`] message on any failure
/// ([`try_decide_all`] lists the cases).
pub fn decide_all<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    seed: u64,
    solo_budget: usize,
) -> (usize, Vec<Option<u64>>) {
    try_decide_all(protocol, inputs, contention, seed, solo_budget)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Measure the longest solo run over every process from a
/// contention-perturbed configuration (the Lemma 8 experiment's inner loop).
///
/// Fallible form of [`max_solo_steps`]: same error contract as
/// [`try_decide_all`]; a (normally impossible)
/// [`SoloRunError::AlreadyDecided`] contributes zero steps instead of
/// failing. Each solo run here clones the configuration
/// ([`swapcons_sim::runner::solo_run_cloned`]), so every process is measured
/// from the *same* perturbed configuration.
pub fn try_max_solo_steps<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    seed: u64,
    solo_budget: usize,
) -> Result<usize, HarnessError> {
    let mut config =
        Configuration::initial(protocol, inputs).map_err(HarnessError::RejectedInputs)?;
    let mut sched = swapcons_sim::scheduler::SeededRandom::new(seed);
    swapcons_sim::runner::run(protocol, &mut config, &mut sched, contention)
        .map_err(HarnessError::Contention)?;
    let mut worst = 0;
    for pid in config.running() {
        match swapcons_sim::runner::solo_run_cloned(protocol, &config, pid, solo_budget) {
            Ok((out, _)) => worst = worst.max(out.steps),
            Err(SoloRunError::AlreadyDecided(_)) => {}
            Err(source) => return Err(HarnessError::Solo { pid, source }),
        }
    }
    Ok(worst)
}

/// Panicking wrapper over [`try_max_solo_steps`] for the hot benchmark
/// loops.
///
/// # Panics
///
/// Panics with the [`HarnessError`] message on any failure.
pub fn max_solo_steps<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    seed: u64,
    solo_budget: usize,
) -> usize {
    try_max_solo_steps(protocol, inputs, contention, seed, solo_budget)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Render a two-column data series as aligned text, with a title line —
/// the "figure" format the benches print.
pub fn render_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "{x_label:>12} {y_label:>16}");
    for (x, y) in points {
        let _ = writeln!(out, "{x:>12.2} {y:>16.3}");
    }
    out
}

/// The CI artifact directory for bench series files, if configured
/// (`$BENCH_SERIES_DIR`).
pub fn bench_artifact_dir() -> Option<PathBuf> {
    std::env::var_os("BENCH_SERIES_DIR").map(PathBuf::from)
}

/// Write a bench series file `dir/name`, creating `dir` as needed. Refuses
/// empty content (an empty artifact silently uploaded is how a log-scrape
/// pipeline rots) — as an [`std::io::Error`], not a panic, so one failed
/// artifact write costs the series a warning line, not the whole run.
pub fn write_series_artifact(dir: &Path, name: &str, content: &str) -> std::io::Result<PathBuf> {
    if content.trim().is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("refusing to write empty bench artifact {name}: the generating section produced nothing"),
        ));
    }
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Processes `0..n` as a vector of ids.
pub fn all_pids(n: usize) -> Vec<ProcessId> {
    ProcessId::all(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_core::SwapKSet;

    #[test]
    fn cyclic_inputs_cover_the_domain() {
        assert_eq!(cyclic_inputs(5, 2), vec![0, 1, 0, 1, 0]);
        assert_eq!(cyclic_inputs(3, 5), vec![0, 1, 2]);
    }

    #[test]
    fn decide_all_satisfies_the_task() {
        let p = SwapKSet::new(5, 2, 3);
        let inputs = cyclic_inputs(5, 3);
        let (steps, decisions) = decide_all(&p, &inputs, 40, 7, p.solo_step_bound());
        assert!(steps > 0);
        assert!(p.task().check(&inputs, &decisions).is_ok());
        assert!(decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn max_solo_steps_respects_lemma8() {
        let p = SwapKSet::consensus(6, 2);
        let worst = max_solo_steps(&p, &cyclic_inputs(6, 2), 60, 3, p.solo_step_bound());
        assert!(worst <= p.solo_step_bound());
        assert!(worst > 0);
    }

    #[test]
    #[should_panic(expected = "obstruction-freedom violation")]
    fn decide_all_panics_on_exhausted_solo_budget() {
        // A zero solo budget cannot decide anyone who is still running.
        let p = SwapKSet::consensus(3, 2);
        let _ = decide_all(&p, &cyclic_inputs(3, 2), 0, 7, 0);
    }

    #[test]
    fn try_variants_return_errors_instead_of_panicking() {
        let p = SwapKSet::consensus(3, 2);
        // Exhausted solo budget: a typed Solo error, not a panic.
        let err = try_decide_all(&p, &cyclic_inputs(3, 2), 0, 7, 0).unwrap_err();
        assert!(
            matches!(
                err,
                HarnessError::Solo {
                    source: SoloRunError::BudgetExhausted { .. },
                    ..
                }
            ),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("obstruction-freedom violation"));
        // Rejected inputs: wrong vector length.
        let err = try_max_solo_steps(&p, &[0], 10, 7, 8).unwrap_err();
        assert!(
            matches!(err, HarnessError::RejectedInputs(_)),
            "unexpected error: {err}"
        );
        // And the happy paths agree with the panicking wrappers.
        let fallible = try_decide_all(&p, &cyclic_inputs(3, 2), 10, 7, 8).unwrap();
        assert_eq!(fallible, decide_all(&p, &cyclic_inputs(3, 2), 10, 7, 8));
    }

    #[test]
    fn series_artifact_write_is_fallible_not_fatal() {
        let dir = std::env::temp_dir().join(format!("swapcons-bench-{}", std::process::id()));
        // Empty content is refused with an error return.
        let err = write_series_artifact(&dir, "empty.txt", "  \n").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(!dir.join("empty.txt").exists());
        // Real content lands on disk.
        let path = write_series_artifact(&dir, "series.txt", "# data\n1 2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "# data\n1 2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_rendering() {
        let s = render_series("t", "n", "steps", &[(1.0, 2.0), (3.0, 4.5)]);
        assert!(s.starts_with("# t"));
        assert_eq!(s.lines().count(), 4);
    }
}
