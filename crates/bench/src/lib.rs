//! Benchmark support crate. The actual benchmark targets live in
//! `benches/`; this library hosts shared helpers for the harnesses
//! (workload construction and plain-text table rendering).

// Unsafe-code audit (PR 6): the bench helpers are pure safe Rust.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
