//! Benchmark support crate. The actual benchmark targets live in
//! `benches/`; this library hosts shared helpers for the harnesses
//! (workload construction and plain-text table rendering).

#![warn(missing_docs)]

pub mod harness;
