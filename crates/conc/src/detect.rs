//! Vector-clock happens-before race detection.
//!
//! The detector maintains the *synchronizes-with* happens-before relation
//! of one execution: each thread carries a [`VClock`]; atomic objects and
//! locks carry release clocks that acquiring threads join. Plain
//! (unsynchronized) data accesses are reported through the
//! [`crate::hooks`] instrumentation points and checked against the
//! classic condition: two accesses to the same location race iff they are
//! concurrent under happens-before and at least one is a write.
//!
//! The epoch representation follows FastTrack: a location's last write is
//! a single `(thread, timestamp)` epoch (writes to a race-free location
//! are totally ordered, so one epoch suffices); reads keep a full clock
//! because concurrent readers are legal.
//!
//! Soundness direction: every happens-before edge the detector records
//! corresponds to a real synchronization edge in the modeled program
//! (acquire loads, release stores, acquire-release RMWs, lock transfer,
//! spawn, join). Missing an edge can only produce a *false alarm*, never a
//! missed race — the safe failure mode for a gate that must prove shipped
//! code race-free.

use std::collections::HashMap;

use crate::op::ObjId;
use crate::vclock::{Tid, VClock};

/// A detected race: two accesses to `loc` unordered by happens-before.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// The data location (an address-like key chosen by the instrumented
    /// code — for the swap handoff, the heap cell's address).
    pub loc: usize,
    /// The earlier access on record.
    pub prior: Access,
    /// The access that completed the race.
    pub current: Access,
}

/// One side of a race: who accessed, and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The accessing thread.
    pub tid: Tid,
    /// `true` for a write, `false` for a read.
    pub is_write: bool,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = |a: &Access| if a.is_write { "write" } else { "read" };
        write!(
            f,
            "data race on location {:#x}: {} by {} is concurrent with {} by {}",
            self.loc,
            kind(&self.prior),
            self.prior.tid,
            kind(&self.current),
            self.current.tid
        )
    }
}

/// Per-location access state (FastTrack-style).
#[derive(Clone, Debug, Default)]
struct Loc {
    /// Last write: `(writer, writer's timestamp at the write)`.
    write: Option<(Tid, u32)>,
    /// Per-thread timestamps of reads since the last write.
    reads: VClock,
}

/// The detector state for one execution.
#[derive(Debug, Default)]
pub struct Detector {
    /// Each thread's current clock.
    threads: Vec<VClock>,
    /// Release clock per atomic object: the clock most recently stored
    /// into the object with release semantics.
    atomics: HashMap<ObjId, VClock>,
    /// Release clock per lock: joined on every unlock (readers release
    /// concurrently), acquired on every lock.
    locks: HashMap<ObjId, VClock>,
    /// Final clocks of finished threads, joined by `join`.
    finished: HashMap<Tid, VClock>,
    /// Tracked data locations.
    data: HashMap<usize, Loc>,
}

impl Detector {
    /// A detector with the root thread registered.
    pub fn new() -> Self {
        let mut d = Detector::default();
        d.register_thread(Tid(0));
        d
    }

    fn register_thread(&mut self, t: Tid) {
        if self.threads.len() <= t.0 {
            self.threads.resize_with(t.0 + 1, VClock::new);
        }
        self.threads[t.0].tick(t);
    }

    /// The current clock of thread `t` (test hook and failure reporting).
    pub fn clock(&self, t: Tid) -> &VClock {
        &self.threads[t.0]
    }

    /// Advance `t`'s local time — called once per visible operation.
    pub fn tick(&mut self, t: Tid) {
        self.threads[t.0].tick(t);
    }

    /// Acquire edge: `t` loads from atomic `o` (joins its release clock).
    pub fn atomic_acquire(&mut self, t: Tid, o: ObjId) {
        if let Some(rel) = self.atomics.get(&o) {
            self.threads[t.0].join(rel);
        }
    }

    /// Release edge: `t` stores to atomic `o` (installs its clock as the
    /// object's release clock; a later acquire of the stored value joins
    /// it).
    pub fn atomic_release(&mut self, t: Tid, o: ObjId) {
        self.atomics.insert(o, self.threads[t.0].clone());
    }

    /// Acquire-release edge: an RMW (swap) both joins and installs.
    pub fn atomic_acq_rel(&mut self, t: Tid, o: ObjId) {
        self.atomic_acquire(t, o);
        self.atomic_release(t, o);
    }

    /// Lock acquire: join the lock's release clock.
    pub fn lock_acquire(&mut self, t: Tid, o: ObjId) {
        if let Some(rel) = self.locks.get(&o) {
            self.threads[t.0].join(rel);
        }
    }

    /// Lock release: *join* `t`'s clock into the lock (concurrent readers
    /// all release into the same clock; overwriting would drop edges and
    /// fabricate races).
    pub fn lock_release(&mut self, t: Tid, o: ObjId) {
        self.locks.entry(o).or_default().join(&self.threads[t.0]);
    }

    /// Spawn edge: the child starts with (a copy of) the parent's clock.
    pub fn spawn(&mut self, parent: Tid, child: Tid) {
        let base = self.threads[parent.0].clone();
        if self.threads.len() <= child.0 {
            self.threads.resize_with(child.0 + 1, VClock::new);
        }
        self.threads[child.0] = base;
        self.threads[child.0].tick(child);
    }

    /// Finish edge: record `t`'s final clock for joiners.
    pub fn finish(&mut self, t: Tid) {
        self.finished.insert(t, self.threads[t.0].clone());
    }

    /// Join edge: the joiner observes everything the finished thread did.
    pub fn join(&mut self, joiner: Tid, target: Tid) {
        if let Some(fin) = self.finished.get(&target) {
            // Split-borrow via clone; clocks are small.
            let fin = fin.clone();
            self.threads[joiner.0].join(&fin);
        }
    }

    /// Record an unsynchronized read of `loc` by `t`; returns the race if
    /// the last write is concurrent with `t`'s clock.
    pub fn data_read(&mut self, t: Tid, loc: usize) -> Option<RaceReport> {
        let clock = self.threads[t.0].clone();
        let entry = self.data.entry(loc).or_default();
        if let Some((wt, wc)) = entry.write {
            if wt != t && wc > clock.get(wt) {
                return Some(RaceReport {
                    loc,
                    prior: Access {
                        tid: wt,
                        is_write: true,
                    },
                    current: Access {
                        tid: t,
                        is_write: false,
                    },
                });
            }
        }
        entry.reads.set(t, clock.get(t));
        None
    }

    /// Record an unsynchronized write of `loc` by `t`; returns the race if
    /// the last write or any read since it is concurrent with `t`'s clock.
    pub fn data_write(&mut self, t: Tid, loc: usize) -> Option<RaceReport> {
        let clock = self.threads[t.0].clone();
        let entry = self.data.entry(loc).or_default();
        if let Some((wt, wc)) = entry.write {
            if wt != t && wc > clock.get(wt) {
                return Some(RaceReport {
                    loc,
                    prior: Access {
                        tid: wt,
                        is_write: true,
                    },
                    current: Access {
                        tid: t,
                        is_write: true,
                    },
                });
            }
        }
        for u in 0..self.threads.len() {
            let u = Tid(u);
            if u != t && entry.reads.get(u) > clock.get(u) {
                return Some(RaceReport {
                    loc,
                    prior: Access {
                        tid: u,
                        is_write: false,
                    },
                    current: Access {
                        tid: t,
                        is_write: true,
                    },
                });
            }
        }
        entry.write = Some((t, clock.get(t)));
        entry.reads = VClock::new();
        None
    }

    /// Forget a location: its storage is being freed, so a later
    /// allocation at the same address is a fresh location, not a
    /// continuation of this one's history.
    pub fn data_retire(&mut self, loc: usize) {
        self.data.remove(&loc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: ObjId = ObjId(0);
    const L: usize = 0x1000;

    /// Spawn a second thread for tests.
    fn two_threads() -> Detector {
        let mut d = Detector::new();
        d.spawn(Tid(0), Tid(1));
        d
    }

    #[test]
    fn write_then_unordered_read_races() {
        let mut d = two_threads();
        // Tick t0 past the spawn point, then write: the child's clock (a
        // copy taken at spawn) no longer covers the write — concurrent.
        d.tick(Tid(0));
        assert!(d.data_write(Tid(0), L).is_none());
        let r = d.data_read(Tid(1), L);
        assert!(r.is_some(), "unsynchronized handoff must race");
        let r = r.unwrap();
        assert!(r.prior.is_write && !r.current.is_write);
    }

    #[test]
    fn release_acquire_orders_the_handoff() {
        let mut d = two_threads();
        // t0: write data, then release via atomic store.
        d.tick(Tid(0));
        assert!(d.data_write(Tid(0), L).is_none());
        d.tick(Tid(0));
        d.atomic_release(Tid(0), O);
        // t1: acquire via atomic load, then read data: ordered.
        d.tick(Tid(1));
        d.atomic_acquire(Tid(1), O);
        assert!(d.data_read(Tid(1), L).is_none(), "acquire orders the read");
        // And a subsequent write by t1 is ordered after t0's write and
        // t1's own read.
        assert!(d.data_write(Tid(1), L).is_none());
    }

    #[test]
    fn rmw_chains_happens_before_through_the_object() {
        // The AtomicSwap handoff shape: each swapper releases into and
        // acquires from the same object; the chain orders all data access.
        let mut d = two_threads();
        d.tick(Tid(0));
        assert!(d.data_write(Tid(0), L).is_none());
        d.tick(Tid(0));
        d.atomic_acq_rel(Tid(0), O);
        d.tick(Tid(1));
        d.atomic_acq_rel(Tid(1), O);
        assert!(d.data_read(Tid(1), L).is_none());
        d.data_retire(L);
        // Location retired: a new allocation at the same address starts
        // fresh and does not inherit t0's write epoch.
        assert!(d.data_write(Tid(1), L).is_none());
        assert!(d.data_read(Tid(1), L).is_none());
    }

    #[test]
    fn concurrent_writes_race() {
        let mut d = two_threads();
        d.tick(Tid(0));
        d.tick(Tid(1));
        assert!(d.data_write(Tid(0), L).is_none());
        let r = d.data_write(Tid(1), L);
        assert!(r.is_some());
        let r = r.unwrap();
        assert!(r.prior.is_write && r.current.is_write);
        assert_eq!(r.loc, L);
    }

    #[test]
    fn read_then_concurrent_write_races() {
        let mut d = two_threads();
        assert!(d.data_read(Tid(1), L).is_none());
        d.tick(Tid(0));
        let r = d.data_write(Tid(0), L);
        assert!(r.is_some(), "write concurrent with a read races");
        let r = r.unwrap();
        assert!(!r.prior.is_write && r.current.is_write);
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let mut d = two_threads();
        assert!(d.data_read(Tid(0), L).is_none());
        assert!(d.data_read(Tid(1), L).is_none());
    }

    #[test]
    fn spawn_orders_parent_writes_before_child() {
        let mut d = Detector::new();
        assert!(d.data_write(Tid(0), L).is_none());
        d.tick(Tid(0));
        d.spawn(Tid(0), Tid(1));
        assert!(
            d.data_read(Tid(1), L).is_none(),
            "pre-spawn writes are visible to the child"
        );
    }

    #[test]
    fn join_orders_child_writes_before_parent() {
        let mut d = two_threads();
        d.tick(Tid(1));
        assert!(d.data_write(Tid(1), L).is_none());
        d.finish(Tid(1));
        // Without the join, t0 racing with the finished child's write:
        let mut unjoined = two_threads();
        unjoined.tick(Tid(1));
        assert!(unjoined.data_write(Tid(1), L).is_none());
        unjoined.finish(Tid(1));
        assert!(unjoined.data_read(Tid(0), L).is_some());
        // With the join: ordered.
        d.tick(Tid(0));
        d.join(Tid(0), Tid(1));
        assert!(d.data_read(Tid(0), L).is_none());
    }

    #[test]
    fn lock_transfer_orders_critical_sections() {
        let mut d = two_threads();
        d.tick(Tid(0));
        d.lock_acquire(Tid(0), O);
        assert!(d.data_write(Tid(0), L).is_none());
        d.tick(Tid(0));
        d.lock_release(Tid(0), O);
        d.tick(Tid(1));
        d.lock_acquire(Tid(1), O);
        assert!(d.data_write(Tid(1), L).is_none(), "lock orders the writes");
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let mut d = Detector::new();
        assert!(d.data_write(Tid(0), L).is_none());
        assert!(d.data_write(Tid(0), L).is_none());
        assert!(d.data_read(Tid(0), L).is_none());
    }

    #[test]
    fn race_report_formats() {
        let mut d = two_threads();
        d.tick(Tid(0));
        d.tick(Tid(1));
        let _ = d.data_write(Tid(0), L);
        let r = d.data_write(Tid(1), L).expect("races");
        let msg = format!("{r}");
        assert!(msg.contains("data race"), "{msg}");
        assert!(msg.contains("t0") && msg.contains("t1"), "{msg}");
    }
}
