//! The interleaving explorer: DFS over schedules with optional dynamic
//! partial-order reduction and preemption bounding.
//!
//! [`Checker::check`] runs a closure under the controlled scheduler once
//! per explored interleaving. Each execution is driven by a *plan* — the
//! chosen-thread sequence of the DFS stack prefix being revisited — and
//! extends the stack with fresh nodes past the plan. After an execution,
//! the search backtracks to the deepest node with an unexplored choice,
//! truncates the stack below it, and replays.
//!
//! In [`Mode::Dpor`] the backtrack sets are computed dynamically
//! (Flanagan–Godefroid): when step `i` by thread `p` conflicts with an
//! earlier step `j` not already ordered before `p` by happens-before, a
//! backtrack point is added at `j`'s pre-state. Sleep sets prune
//! executions that only permute independent steps of already-explored
//! subtrees. In [`Mode::FullEnumeration`] every enabled thread is a
//! backtrack choice at every step — the ground truth the reduction is
//! checked against in the parity tests.
//!
//! With a preemption bound, a context switch away from a still-enabled
//! thread costs one unit of the budget; switches at disabled or finished
//! threads are free. Bounded DPOR uses conservative backtrack sets (all
//! enabled threads at the conflicting step), which keeps the reduction
//! sound under the bound at the price of less pruning.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

use crate::op::{conflicts, may_be_coenabled, ObjId, Op};
use crate::runtime::{self, ExecInner, Failure, FailureKind, Status};
use crate::vclock::{Tid, VClock};

/// Search strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Explore every interleaving (up to the preemption bound). Ground
    /// truth; exponential.
    FullEnumeration,
    /// Dynamic partial-order reduction with sleep sets: explores at least
    /// one interleaving per Mazurkiewicz trace — same verdicts, far fewer
    /// executions.
    Dpor,
}

/// Exact exploration budgets. Exceeding one stops the search with
/// `complete = false` in the report — truncation is always visible, never
/// silent.
#[derive(Clone, Copy, Debug)]
pub struct CheckBudget {
    /// Maximum executions (complete, sleep-set-blocked, and truncated all
    /// count against it).
    pub max_executions: u64,
    /// Per-execution step cap; an execution hitting it is aborted and
    /// counted in `truncated`.
    pub max_steps_per_execution: u64,
    /// Maximum context switches away from a still-enabled thread, or
    /// `None` for unbounded. Bounding makes spin-loop programs finite.
    pub preemption_bound: Option<u32>,
}

impl Default for CheckBudget {
    fn default() -> Self {
        CheckBudget {
            max_executions: 200_000,
            max_steps_per_execution: 20_000,
            preemption_bound: None,
        }
    }
}

/// The interleaving checker: a mode plus budgets.
#[derive(Clone, Copy, Debug)]
pub struct Checker {
    pub mode: Mode,
    pub budget: CheckBudget,
}

/// What the search found.
#[derive(Debug)]
pub struct CheckReport<V> {
    /// Complete executions explored (each a distinct interleaving).
    pub interleavings: u64,
    /// Executions abandoned by sleep sets as provably redundant (DPOR
    /// only; not counted in `interleavings`).
    pub sleep_blocked: u64,
    /// Executions cut by `max_steps_per_execution`.
    pub truncated: u64,
    /// Steps where the preemption bound forced re-running a sleeping
    /// thread (redundant but required for soundness under the bound).
    pub forced_redundant: u64,
    /// Backtrack choices skipped because taking them would exceed the
    /// preemption bound.
    pub bound_skips: u64,
    /// Distinct outcomes of the checked closure across all interleavings.
    pub outcomes: Vec<V>,
    /// The first failure (race, deadlock, or panic), with its schedule.
    pub failure: Option<Failure>,
    /// `false` iff a budget stopped the search before the state space was
    /// exhausted.
    pub complete: bool,
}

impl<V> CheckReport<V> {
    /// No race, deadlock, or panic in any explored interleaving.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Result of replaying one schedule.
#[derive(Debug)]
pub struct ReplayReport<V> {
    /// The closure's return value, if the execution ran to completion.
    pub outcome: Option<V>,
    /// The failure reproduced by the schedule, if any.
    pub failure: Option<Failure>,
}

/// One frame of the DFS stack: the pre-state of a step and the choice
/// taken from it.
struct Node {
    chosen: Tid,
    chosen_op: Op,
    /// Enabled `(thread, pending op)` pairs at this pre-state.
    enabled: Vec<(Tid, Op)>,
    /// Choices whose subtrees are fully explored, with the op each ran.
    done: HashMap<Tid, Op>,
    /// Threads that must (eventually) be tried from this pre-state.
    backtrack: HashSet<Tid>,
    /// Sleep set at this pre-state: choices provably redundant here.
    sleep: HashMap<Tid, Op>,
    /// Thread of the previous step (for preemption accounting).
    prev: Option<Tid>,
    /// Preemptions spent on the path strictly before this node's choice.
    preempt_before: u32,
    /// The chosen thread's per-thread step number at this step (the DPOR
    /// clock timestamps compare against it).
    seq: u32,
}

/// How one execution ended.
enum ExecEnd {
    Done,
    SleepBlocked,
    Truncated,
    Failed,
}

/// Post-quiescence view of an execution: who is parked on what.
struct StepView {
    /// Enabled poised threads with their pending ops, in tid order.
    enabled: Vec<(Tid, Op)>,
    /// Poised but currently blocked (lock held, join target running).
    blocked: usize,
    /// Threads not yet finished (poised, blocked, or unspawned children).
    unfinished: usize,
}

fn snapshot(exec: &ExecInner) -> StepView {
    let st = exec.state.lock().unwrap();
    let mut view = StepView {
        enabled: Vec::new(),
        blocked: 0,
        unfinished: 0,
    };
    for (i, t) in st.threads.iter().enumerate() {
        match t.status {
            Status::Finished => {}
            Status::Poised => {
                view.unfinished += 1;
                let op = t.pending.expect("poised thread declared an op");
                if runtime::op_enabled(&st, &op) {
                    view.enabled.push((Tid(i), op));
                } else {
                    view.blocked += 1;
                }
            }
            // Starting (unspawned child) or Running — the latter cannot
            // appear post-quiescence; both count as live.
            _ => view.unfinished += 1,
        }
    }
    view
}

fn has_failure(exec: &ExecInner) -> bool {
    exec.state.lock().unwrap().failure.is_some()
}

fn record_deadlock(exec: &ExecInner) {
    let mut st = exec.state.lock().unwrap();
    let schedule = st.schedule.clone();
    st.failure.get_or_insert(Failure {
        kind: FailureKind::Deadlock,
        schedule,
    });
    st.aborting = true;
    exec.cv.notify_all();
}

/// Preemption cost of choosing `chosen` after `prev`: 1 iff this switches
/// away from a thread that could have continued.
fn switch_cost(prev: Option<Tid>, enabled: &[(Tid, Op)], chosen: Tid) -> u32 {
    match prev {
        Some(p) if p != chosen && enabled.iter().any(|&(t, _)| t == p) => 1,
        _ => 0,
    }
}

fn bound_allows(
    bound: Option<u32>,
    preempt_before: u32,
    prev: Option<Tid>,
    enabled: &[(Tid, Op)],
    cand: Tid,
) -> bool {
    match bound {
        None => true,
        Some(b) => preempt_before + switch_cost(prev, enabled, cand) <= b,
    }
}

/// Per-object clocks for the trace happens-before relation: modifying ops
/// order against everything; non-modifying ops (loads, read-locks) order
/// only against modifications. Collapsing both into one clock would
/// spuriously order independent reads through each other, suppressing
/// backtrack points the reduction needs (observed as DPOR losing RwLock
/// reader/writer outcomes).
#[derive(Default)]
struct ObjClocks {
    modified: VClock,
    read: VClock,
}

/// Per-execution DPOR clock state: vector clocks over *per-thread step
/// numbers* (not the detector's clocks — those order synchronization; these
/// order trace steps for the backtrack condition).
struct DporClocks {
    threads: Vec<VClock>,
    objects: HashMap<ObjId, ObjClocks>,
    steps: Vec<u32>,
}

impl DporClocks {
    fn new() -> Self {
        DporClocks {
            threads: vec![VClock::new()],
            objects: HashMap::new(),
            steps: vec![0],
        }
    }

    fn ensure(&mut self, t: Tid) {
        if self.threads.len() <= t.0 {
            self.threads.resize_with(t.0 + 1, VClock::new);
            self.steps.resize(t.0 + 1, 0);
        }
    }

    /// Advance for one executed step; returns the step's per-thread seq.
    fn advance(&mut self, t: Tid, op: &Op) -> u32 {
        self.ensure(t);
        self.steps[t.0] += 1;
        let seq = self.steps[t.0];
        let mut cv = self.threads[t.0].clone();
        if let Some(o) = op.obj() {
            let oc = self.objects.entry(o).or_default();
            cv.join(&oc.modified);
            if op.modifies() {
                cv.join(&oc.read);
            }
        }
        cv.set(t, seq);
        match *op {
            Op::Spawn(child) => {
                self.ensure(child);
                self.threads[child.0] = cv.clone();
            }
            Op::Join(target) => {
                self.ensure(target);
                let tc = self.threads[target.0].clone();
                cv.join(&tc);
            }
            _ => {}
        }
        if let Some(o) = op.obj() {
            let oc = self.objects.entry(o).or_default();
            if op.modifies() {
                oc.modified = cv.clone();
            } else {
                oc.read.join(&cv);
            }
        }
        self.threads[t.0] = cv;
        seq
    }
}

impl Checker {
    /// A checker in `mode` with default budgets.
    pub fn new(mode: Mode) -> Self {
        Checker {
            mode,
            budget: CheckBudget::default(),
        }
    }

    /// Builder: set the preemption bound.
    pub fn with_preemption_bound(mut self, b: u32) -> Self {
        self.budget.preemption_bound = Some(b);
        self
    }

    /// Builder: set the execution cap.
    pub fn with_max_executions(mut self, m: u64) -> Self {
        self.budget.max_executions = m;
        self
    }

    /// Builder: set the per-execution step cap.
    pub fn with_max_steps(mut self, m: u64) -> Self {
        self.budget.max_steps_per_execution = m;
        self
    }

    /// Explore the interleavings of `f` per the mode and budgets.
    ///
    /// `f` is run once per interleaving; it must be deterministic apart
    /// from scheduling (same choices ⇒ same ops), which holds for any
    /// program whose nondeterminism comes only from the shim types.
    pub fn check<V, F>(&self, f: F) -> CheckReport<V>
    where
        V: Eq + Hash + Send + 'static,
        F: Fn() -> V + Sync,
    {
        let bound = self.budget.preemption_bound;
        let mut stack: Vec<Node> = Vec::new();
        let mut outcome_set: HashSet<V> = HashSet::new();
        let mut rpt = CheckReport {
            interleavings: 0,
            sleep_blocked: 0,
            truncated: 0,
            forced_redundant: 0,
            bound_skips: 0,
            outcomes: Vec::new(),
            failure: None,
            complete: true,
        };

        'search: loop {
            if rpt.interleavings + rpt.sleep_blocked + rpt.truncated >= self.budget.max_executions {
                rpt.complete = false;
                break;
            }

            // ---- one execution: replay the stack prefix, extend fresh ----
            let replay_len = stack.len();
            let exec = ExecInner::new();
            let mut end = ExecEnd::Done;
            let mut clocks = DporClocks::new();
            let mut cur_sleep: HashMap<Tid, Op> = HashMap::new();
            let mut cur_prev: Option<Tid> = None;
            let mut cur_preempt: u32 = 0;

            std::thread::scope(|scope| {
                let _root = runtime::run_root(scope, Arc::clone(&exec), &f);
                let mut depth = 0usize;
                loop {
                    runtime::wait_quiescent(&exec);
                    if has_failure(&exec) {
                        end = ExecEnd::Failed;
                        break;
                    }
                    let view = snapshot(&exec);
                    if view.unfinished == 0 {
                        break;
                    }
                    if view.enabled.is_empty() {
                        record_deadlock(&exec);
                        end = ExecEnd::Failed;
                        break;
                    }
                    if depth as u64 >= self.budget.max_steps_per_execution {
                        end = ExecEnd::Truncated;
                        runtime::abort_execution(&exec);
                        break;
                    }

                    if depth >= replay_len {
                        // Fresh frontier: create the node, choosing a
                        // thread that is enabled, awake, and affordable.
                        let candidates: Vec<Tid> = view
                            .enabled
                            .iter()
                            .map(|&(t, _)| t)
                            .filter(|t| !cur_sleep.contains_key(t))
                            .filter(|&t| {
                                bound_allows(bound, cur_preempt, cur_prev, &view.enabled, t)
                            })
                            .collect();
                        // Prefer continuing the previous thread: switches
                        // are what the preemption bound rations.
                        let pick = cur_prev
                            .filter(|p| candidates.contains(p))
                            .or_else(|| candidates.first().copied());
                        let pick = match pick {
                            Some(p) => p,
                            None => {
                                // Everything affordable is asleep. Under a
                                // bound we must keep running the previous
                                // thread even though its subtree is
                                // explored (abandoning here would lose
                                // schedules the bound still admits).
                                if let Some(p) = cur_prev.filter(|&p| {
                                    bound.is_some() && view.enabled.iter().any(|&(t, _)| t == p)
                                }) {
                                    rpt.forced_redundant += 1;
                                    p
                                } else {
                                    end = ExecEnd::SleepBlocked;
                                    runtime::abort_execution(&exec);
                                    break;
                                }
                            }
                        };
                        let chosen_op = view
                            .enabled
                            .iter()
                            .find(|&&(t, _)| t == pick)
                            .expect("picked thread is enabled")
                            .1;
                        let backtrack: HashSet<Tid> = match self.mode {
                            Mode::Dpor => std::iter::once(pick).collect(),
                            Mode::FullEnumeration => view.enabled.iter().map(|&(t, _)| t).collect(),
                        };
                        stack.push(Node {
                            chosen: pick,
                            chosen_op,
                            enabled: view.enabled.clone(),
                            done: HashMap::new(),
                            backtrack,
                            sleep: cur_sleep.clone(),
                            prev: cur_prev,
                            preempt_before: cur_preempt,
                            seq: 0, // filled in below
                        });
                    }

                    let chosen = stack[depth].chosen;
                    let op = runtime::grant_step(&exec, chosen);
                    debug_assert_eq!(
                        op, stack[depth].chosen_op,
                        "deterministic replay: same choices must yield the same ops"
                    );

                    // DPOR: find the latest conflicting, possibly-co-enabled
                    // step not already ordered before this one, and plant
                    // a backtrack point at its pre-state. Steps that
                    // conflict but can never be co-enabled (an unlock vs
                    // the next acquisition) are skipped, not stopped at —
                    // the reorderable step lies behind them.
                    if self.mode == Mode::Dpor {
                        if op.obj().is_some() {
                            let target = (0..depth).rev().find(|&j| {
                                let nj = &stack[j];
                                nj.chosen != chosen
                                    && conflicts(&nj.chosen_op, &op)
                                    && may_be_coenabled(&nj.chosen_op, &op)
                                    && nj.seq > clocks.threads[chosen.0].get(nj.chosen)
                            });
                            if let Some(j) = target {
                                let conservative = bound.is_some()
                                    || !stack[j].enabled.iter().any(|&(t, _)| t == chosen);
                                let add: Vec<Tid> = if conservative {
                                    stack[j].enabled.iter().map(|&(t, _)| t).collect()
                                } else {
                                    vec![chosen]
                                };
                                stack[j].backtrack.extend(add);
                            }
                        }
                        stack[depth].seq = clocks.advance(chosen, &op);
                    }

                    // Sleep, preemption, and prev roll forward. A step
                    // wakes every sleeper whose pending op it conflicts
                    // with; previously-explored siblings at this node go
                    // to sleep for the subtree below. Sleep sets are part
                    // of the reduction — full enumeration must visit every
                    // schedule, so there they stay empty.
                    {
                        let n = &stack[depth];
                        if self.mode == Mode::Dpor {
                            let mut next_sleep = n.sleep.clone();
                            for (&t, &o) in &n.done {
                                next_sleep.insert(t, o);
                            }
                            next_sleep.retain(|_, so| !conflicts(so, &op));
                            next_sleep.remove(&chosen);
                            cur_sleep = next_sleep;
                        }
                        cur_preempt = n.preempt_before + switch_cost(n.prev, &n.enabled, chosen);
                        cur_prev = Some(chosen);
                    }
                    depth += 1;
                }
                runtime::wait_quiescent(&exec);
                runtime::drain_os_threads(&exec);
            });

            match end {
                ExecEnd::Done => {
                    rpt.interleavings += 1;
                    let mut st = exec.state.lock().unwrap();
                    if let Some(b) = st.threads[0].result.take() {
                        let v = *b.downcast::<V>().expect("root closure outcome type");
                        outcome_set.insert(v);
                    }
                }
                ExecEnd::SleepBlocked => rpt.sleep_blocked += 1,
                ExecEnd::Truncated => {
                    rpt.truncated += 1;
                    rpt.complete = false;
                }
                ExecEnd::Failed => {
                    rpt.failure = exec.state.lock().unwrap().failure.take();
                    break 'search;
                }
            }

            // ---- backtrack: deepest node with an affordable new choice ----
            loop {
                let Some(n) = stack.last_mut() else {
                    break 'search; // state space exhausted
                };
                let candidates: Vec<Tid> = n
                    .backtrack
                    .iter()
                    .copied()
                    .filter(|t| *t != n.chosen && !n.done.contains_key(t))
                    .filter(|t| !n.sleep.contains_key(t))
                    .collect();
                let next = candidates
                    .iter()
                    .copied()
                    .filter(|&t| bound_allows(bound, n.preempt_before, n.prev, &n.enabled, t))
                    .min();
                match next {
                    Some(next) => {
                        let old_op = n.chosen_op;
                        n.done.insert(n.chosen, old_op);
                        n.chosen = next;
                        n.chosen_op = n
                            .enabled
                            .iter()
                            .find(|&&(t, _)| t == next)
                            .expect("backtrack choices are enabled at their node")
                            .1;
                        break;
                    }
                    None => {
                        // Whatever remains is blocked by the bound alone.
                        rpt.bound_skips += candidates.len() as u64;
                        stack.pop();
                    }
                }
            }
        }

        rpt.outcomes = outcome_set.into_iter().collect();
        rpt
    }

    /// Re-run `f` under one specific schedule (e.g. a
    /// [`Failure::schedule`] counterexample). Steps past the end of the
    /// schedule pick the lowest enabled thread deterministically.
    ///
    /// Panics if the schedule names a thread that is not enabled at its
    /// step — schedules only replay against the program that produced
    /// them.
    pub fn replay<V, F>(&self, f: F, schedule: &[Tid]) -> ReplayReport<V>
    where
        V: Send + 'static,
        F: Fn() -> V + Sync,
    {
        let exec = ExecInner::new();
        std::thread::scope(|scope| {
            let _root = runtime::run_root(scope, Arc::clone(&exec), &f);
            let mut i = 0usize;
            loop {
                runtime::wait_quiescent(&exec);
                if has_failure(&exec) {
                    break;
                }
                let view = snapshot(&exec);
                if view.unfinished == 0 {
                    break;
                }
                if view.enabled.is_empty() {
                    record_deadlock(&exec);
                    break;
                }
                if i as u64 >= self.budget.max_steps_per_execution {
                    runtime::abort_execution(&exec);
                    break;
                }
                let chosen = match schedule.get(i) {
                    Some(&t) => {
                        assert!(
                            view.enabled.iter().any(|&(tt, _)| tt == t),
                            "replay schedule step {i}: {t} is not enabled"
                        );
                        t
                    }
                    None => view.enabled[0].0,
                };
                i += 1;
                runtime::grant_step(&exec, chosen);
            }
            runtime::wait_quiescent(&exec);
            runtime::drain_os_threads(&exec);
        });
        let mut st = exec.state.lock().unwrap();
        let failure = st.failure.take();
        let outcome = st.threads[0]
            .result
            .take()
            .and_then(|b| b.downcast::<V>().ok())
            .map(|b| *b);
        ReplayReport { outcome, failure }
    }
}
