//! Checker-sensitivity fixtures: tiny programs with *known* verdicts.
//!
//! The racy fixture must be flagged and the synchronized ones must pass —
//! in every mode. These double as parity programs: their outcome sets are
//! schedule-dependent, so full enumeration and DPOR can be compared both
//! on verdicts and on observable behaviors.
//!
//! The "racy" fixture is deliberately *annotation-racy, runtime-safe*: the
//! modeled location is a bare integer key, not real shared memory, so the
//! fixture itself has no undefined behavior — only its model declares
//! unsynchronized accesses. That is the right shape for a sensitivity
//! gate: it proves the detector fires without shipping actual UB in the
//! test suite.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::hooks;
use crate::shim;

/// Modeled locations; arbitrary distinct keys.
const RACY_LOC: usize = 0xbad0;
const JOIN_LOC: usize = 0x900d;
const FLAG_LOC: usize = 0xfee1;

/// Parent and child both declare a write to the same location with no
/// synchronization edge between them: every interleaving is a race.
pub fn racy_unsynchronized_writes() -> u64 {
    let h = shim::spawn(|| {
        hooks::data_write(RACY_LOC);
        1u64
    });
    hooks::data_write(RACY_LOC);
    let _ = h.join();
    0
}

/// Child writes, parent joins, parent reads: ordered by the join edge.
/// Must pass in every interleaving.
pub fn join_synchronized_handoff() -> u64 {
    let h = shim::spawn(|| {
        hooks::data_write(JOIN_LOC);
        7u64
    });
    let v = h.join().expect("child does not panic");
    hooks::data_read(JOIN_LOC);
    v
}

/// Release/acquire handoff through an atomic flag. The child reads the
/// payload only when it observed the flag, so the read is always covered
/// by the release edge — race-free, with two observable outcomes (child
/// saw the flag or ran too early).
pub fn release_acquire_handoff() -> u64 {
    let flag = Arc::new(shim::AtomicU64::new(0));
    let child_flag = Arc::clone(&flag);
    let h = shim::spawn(move || {
        if child_flag.load(Ordering::Acquire) == 1 {
            hooks::data_read(FLAG_LOC);
            1u64
        } else {
            0u64
        }
    });
    hooks::data_write(FLAG_LOC);
    flag.store(1, Ordering::Release);
    h.join().expect("child does not panic")
}
