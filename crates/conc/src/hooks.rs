//! Data-access instrumentation points for code that hands raw memory
//! between threads outside the type system's view.
//!
//! The shim types cover accesses *through* atomics and locks, but the
//! objects layer's `AtomicSwap` transfers ownership of a heap cell by
//! swapping raw pointers — the payload reads and writes around the swap
//! are exactly the accesses a race detector must see. Instrumented code
//! calls [`data_write`] / [`data_read`] with an address-like key (the
//! heap cell's address) at each such access, and [`data_retire`] when the
//! storage is freed so a later allocation at the same address starts a
//! fresh history.
//!
//! Outside a model run — production builds, or drop paths running during
//! an execution teardown — every hook is a no-op, so instrumented code
//! behaves identically when not under the checker.

use crate::runtime;

/// Record an unsynchronized write to `loc`. Under the checker, a write
/// concurrent (in happens-before) with any prior access to `loc` aborts
/// the execution with a race counterexample.
pub fn data_write(loc: usize) {
    if std::thread::panicking() {
        return;
    }
    if let Some((exec, tid)) = runtime::current_ctx() {
        exec.data_access(tid, loc, true);
    }
}

/// Record an unsynchronized read of `loc`; races with concurrent writes.
pub fn data_read(loc: usize) {
    if std::thread::panicking() {
        return;
    }
    if let Some((exec, tid)) = runtime::current_ctx() {
        exec.data_access(tid, loc, false);
    }
}

/// Forget `loc`'s access history: its storage is being freed, and an
/// unrelated later allocation may reuse the address.
pub fn data_retire(loc: usize) {
    if std::thread::panicking() {
        return;
    }
    if let Some((exec, _)) = runtime::current_ctx() {
        exec.data_retire(loc);
    }
}
