//! `swapcons-conc`: a vendored loom-style concurrency analysis engine for
//! the threaded layer of the swap-consensus implementation.
//!
//! Three pieces:
//!
//! 1. **Shim types** ([`shim`], surfaced through the [`sync`] / [`thread`]
//!    aliases): drop-in replacements for the std atomics, `RwLock`, and
//!    `thread::{spawn, yield_now}` that route every visible operation
//!    through a controlled cooperative scheduler. In normal builds the
//!    aliases re-export std — zero overhead; under `--cfg conc_check`
//!    they switch to the shims.
//! 2. **An interleaving explorer** ([`explore`]): DFS over schedules with
//!    dynamic partial-order reduction (persistent + sleep sets), an
//!    optional preemption bound, exact budgets with visible truncation,
//!    and replayable counterexample schedules.
//! 3. **A vector-clock race detector** ([`detect`], fed by the [`hooks`]
//!    instrumentation points): flags conflicting accesses unordered by
//!    happens-before — in particular the raw-pointer payload handoff
//!    inside `AtomicSwap::swap`.
//!
//! The crate is self-contained (no dependencies) so the checker itself is
//! auditable, and the shims are always compiled so the engine's own test
//! suite runs in the tier-1 gate without any special cfg.

pub mod detect;
pub mod explore;
pub mod fixtures;
pub mod hooks;
pub mod op;
pub(crate) mod runtime;
pub mod shim;
pub mod vclock;

pub use explore::{CheckBudget, CheckReport, Checker, Mode, ReplayReport};
pub use runtime::{Failure, FailureKind};

/// Concurrency primitives for checked code: std in normal builds, the
/// instrumented shims under `--cfg conc_check`. Port code against this
/// module and it becomes model-checkable without further changes.
pub mod sync {
    pub use std::sync::atomic::Ordering;
    pub use std::sync::LockResult;

    #[cfg(not(conc_check))]
    pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64};
    #[cfg(not(conc_check))]
    pub use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

    #[cfg(conc_check)]
    pub use crate::shim::{
        AtomicBool, AtomicPtr, AtomicU64, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };
}

/// Threading facilities for checked code; same switch as [`sync`].
pub mod thread {
    #[cfg(not(conc_check))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(conc_check)]
    pub use crate::shim::{spawn, yield_now, JoinHandle};
}
