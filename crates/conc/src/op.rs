//! Visible operations and the dependence relation over them.
//!
//! A checked program interleaves only at *visible* operations — the shim
//! types' atomic and lock operations, thread spawn/join, and explicit
//! yields. Everything between two visible operations of a thread is local
//! and commutes with every other thread, so scheduling at this granularity
//! is sound and keeps the interleaving space minimal.
//!
//! [`conflicts`] is the dependence relation driving dynamic partial-order
//! reduction: two operations of different threads are *independent* (their
//! order never matters) unless they touch the same object and at least one
//! modifies it. The relation is deliberately conservative — extra
//! dependence only costs reduction, never soundness.

use crate::vclock::Tid;

/// Identity of a checked shared object (atomic or lock), dense per model
/// run. Ids are assigned at construction inside the run, so the same source
/// line constructing an object in two executions gets the same id —
/// schedules replay across executions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub usize);

/// One visible operation, declared by a thread before it executes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Atomic load (modeled acquire).
    AtomicLoad(ObjId),
    /// Atomic store (modeled release).
    AtomicStore(ObjId),
    /// Atomic read-modify-write: swap (modeled acquire + release).
    AtomicRmw(ObjId),
    /// Acquire a read lock; blocks while a writer holds the lock.
    LockRead(ObjId),
    /// Acquire the write lock; blocks while any holder exists.
    LockWrite(ObjId),
    /// Release a read lock.
    UnlockRead(ObjId),
    /// Release the write lock.
    UnlockWrite(ObjId),
    /// Voluntary reschedule point; touches no object.
    Yield,
    /// Create a new checked thread.
    Spawn(Tid),
    /// Wait for a checked thread to finish.
    Join(Tid),
}

impl Op {
    /// The shared object this operation touches, if any.
    pub fn obj(&self) -> Option<ObjId> {
        match *self {
            Op::AtomicLoad(o)
            | Op::AtomicStore(o)
            | Op::AtomicRmw(o)
            | Op::LockRead(o)
            | Op::LockWrite(o)
            | Op::UnlockRead(o)
            | Op::UnlockWrite(o) => Some(o),
            Op::Yield | Op::Spawn(_) | Op::Join(_) => None,
        }
    }

    /// Whether this operation can modify its object (or, for locks, its
    /// object's availability).
    pub(crate) fn modifies(&self) -> bool {
        match self {
            Op::AtomicLoad(_) | Op::LockRead(_) => false,
            Op::AtomicStore(_)
            | Op::AtomicRmw(_)
            | Op::LockWrite(_)
            | Op::UnlockRead(_)
            | Op::UnlockWrite(_) => true,
            Op::Yield | Op::Spawn(_) | Op::Join(_) => false,
        }
    }
}

/// The DPOR dependence relation: `true` iff reordering two adjacent
/// executions of these operations (by different threads) could change the
/// resulting state or enabledness.
///
/// Same object + at least one modification ⇒ dependent. Two atomic loads
/// commute; two read-lock acquisitions commute; a read-lock release is
/// treated as modifying (it can enable a waiting writer), which is
/// conservative for read-release vs read-acquire pairs but sound.
/// Yield/spawn/join touch no shared object and are independent of
/// everything (their ordering constraints are captured by happens-before,
/// not dependence).
pub fn conflicts(a: &Op, b: &Op) -> bool {
    match (a.obj(), b.obj()) {
        (Some(oa), Some(ob)) => oa == ob && (a.modifies() || b.modifies()),
        _ => false,
    }
}

/// Whether two operations (by different threads) can ever be enabled in
/// the same state. DPOR backtracking only reorders *co-enabled* dependent
/// pairs: an unlock and an acquisition of the same lock are dependent but
/// strictly ordered by the lock's protocol, so no backtrack point belongs
/// at the unlock — the scan must keep looking for the acquisition behind
/// it (missing this is how a checker overlooks ABBA deadlocks).
///
/// Same-object exclusions: a write-unlock requires the write lock held,
/// which disables every other operation on that lock; a read-unlock
/// requires a reader, which disables write acquisition. Everything else —
/// atomics are always enabled, waiting acquisitions coexist, concurrent
/// readers unlock concurrently — may be co-enabled.
pub fn may_be_coenabled(a: &Op, b: &Op) -> bool {
    match (a.obj(), b.obj()) {
        (Some(oa), Some(ob)) if oa == ob => !matches!(
            (a, b),
            (Op::UnlockWrite(_), _)
                | (_, Op::UnlockWrite(_))
                | (Op::UnlockRead(_), Op::LockWrite(_))
                | (Op::LockWrite(_), Op::UnlockRead(_))
        ),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: ObjId = ObjId(0);
    const P: ObjId = ObjId(1);

    #[test]
    fn loads_commute_writes_conflict() {
        assert!(!conflicts(&Op::AtomicLoad(O), &Op::AtomicLoad(O)));
        assert!(conflicts(&Op::AtomicLoad(O), &Op::AtomicStore(O)));
        assert!(conflicts(&Op::AtomicRmw(O), &Op::AtomicRmw(O)));
        assert!(conflicts(&Op::AtomicStore(O), &Op::AtomicRmw(O)));
    }

    #[test]
    fn distinct_objects_are_independent() {
        assert!(!conflicts(&Op::AtomicRmw(O), &Op::AtomicRmw(P)));
        assert!(!conflicts(&Op::LockWrite(O), &Op::LockWrite(P)));
    }

    #[test]
    fn lock_dependence() {
        assert!(!conflicts(&Op::LockRead(O), &Op::LockRead(O)));
        assert!(conflicts(&Op::LockRead(O), &Op::LockWrite(O)));
        assert!(conflicts(&Op::UnlockRead(O), &Op::LockRead(O)));
        assert!(conflicts(&Op::UnlockWrite(O), &Op::LockWrite(O)));
    }

    #[test]
    fn objectless_ops_are_independent_of_everything() {
        for op in [Op::Yield, Op::Spawn(Tid(1)), Op::Join(Tid(1))] {
            assert!(!conflicts(&op, &Op::AtomicRmw(O)));
            assert!(!conflicts(&op, &op.clone()));
        }
    }

    #[test]
    fn coenabledness_excludes_lock_protocol_orderings() {
        // Holding-dependent pairs can never be co-enabled.
        assert!(!may_be_coenabled(&Op::UnlockWrite(O), &Op::LockWrite(O)));
        assert!(!may_be_coenabled(&Op::UnlockWrite(O), &Op::LockRead(O)));
        assert!(!may_be_coenabled(&Op::UnlockWrite(O), &Op::UnlockRead(O)));
        assert!(!may_be_coenabled(&Op::UnlockRead(O), &Op::LockWrite(O)));
        // Waiting acquisitions and concurrent readers coexist.
        assert!(may_be_coenabled(&Op::LockWrite(O), &Op::LockWrite(O)));
        assert!(may_be_coenabled(&Op::LockWrite(O), &Op::LockRead(O)));
        assert!(may_be_coenabled(&Op::UnlockRead(O), &Op::UnlockRead(O)));
        assert!(may_be_coenabled(&Op::UnlockRead(O), &Op::LockRead(O)));
        // Atomics are always enabled; distinct objects never constrain.
        assert!(may_be_coenabled(&Op::AtomicRmw(O), &Op::AtomicRmw(O)));
        assert!(may_be_coenabled(&Op::UnlockWrite(O), &Op::LockWrite(P)));
        assert!(may_be_coenabled(&Op::Yield, &Op::UnlockWrite(O)));
    }

    #[test]
    fn coenabledness_is_symmetric() {
        let ops = [
            Op::AtomicLoad(O),
            Op::AtomicStore(O),
            Op::LockRead(O),
            Op::LockWrite(O),
            Op::UnlockRead(O),
            Op::UnlockWrite(O),
            Op::Yield,
        ];
        for a in &ops {
            for b in &ops {
                assert_eq!(
                    may_be_coenabled(a, b),
                    may_be_coenabled(b, a),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn conflicts_is_symmetric() {
        let ops = [
            Op::AtomicLoad(O),
            Op::AtomicStore(O),
            Op::AtomicRmw(P),
            Op::LockRead(O),
            Op::LockWrite(P),
            Op::UnlockRead(O),
            Op::UnlockWrite(P),
            Op::Yield,
            Op::Spawn(Tid(2)),
            Op::Join(Tid(2)),
        ];
        for a in &ops {
            for b in &ops {
                assert_eq!(conflicts(a, b), conflicts(b, a), "{a:?} vs {b:?}");
            }
        }
    }
}
