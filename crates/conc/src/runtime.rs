//! The controlled cooperative scheduler that executes one interleaving.
//!
//! A model run executes the checked closure on real OS threads, but at any
//! instant at most one checked thread is *running*: every visible
//! operation (see [`crate::op::Op`]) first *declares* itself and parks the
//! thread until the explorer grants it the step. The explorer (on the test
//! thread) picks the next thread per its schedule, does the per-step
//! bookkeeping (trace, clocks, race detection), grants, and waits for the
//! thread to reach its next declaration — a token-passing protocol over
//! one mutex and one condvar.
//!
//! Threads run *freely* only from creation to their first declaration
//! (that prefix is thread-local by construction: the shims are the only
//! shared access), and the spawning thread waits for the child to park
//! before its own `spawn` step completes — so every live thread always has
//! a known pending operation, which is what the DPOR explorer's sleep sets
//! and backtrack filters need.
//!
//! Execution abort (a detected race, a checked-code panic, a budget cut)
//! is delivered by unwinding every parked thread with a private token
//! panic; the thread wrappers catch the token and exit silently, so the
//! run always winds down to joinable OS threads.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::detect::{Detector, RaceReport};
use crate::op::{ObjId, Op};
use crate::vclock::Tid;

/// Why an execution failed: the counterexample kinds the explorer reports.
#[derive(Debug)]
pub enum FailureKind {
    /// The vector-clock detector found unsynchronized conflicting accesses.
    Race(RaceReport),
    /// No thread was enabled but some had not finished.
    Deadlock,
    /// Checked code panicked (an assertion inside the model is a
    /// counterexample, not a test bug).
    Panic(String),
}

/// A failed execution: what went wrong and the schedule that reproduces it.
#[derive(Debug)]
pub struct Failure {
    /// The failure class.
    pub kind: FailureKind,
    /// The granted-thread sequence up to (and including) the failing step —
    /// replayable via [`crate::explore::Checker::replay`].
    pub schedule: Vec<Tid>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Race(r) => write!(f, "{r}")?,
            FailureKind::Deadlock => write!(f, "deadlock: no enabled thread")?,
            FailureKind::Panic(m) => write!(f, "checked code panicked: {m}")?,
        }
        write!(f, " [schedule: ")?;
        for (i, t) in self.schedule.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// Lifecycle of a checked thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Allocated (tid exists) but the OS thread has not parked yet; it is
    /// running free code up to its first declaration.
    Starting,
    /// Parked at a declared pending operation, waiting for a grant.
    Poised,
    /// Granted; executing its operation and the local code after it.
    Running,
    /// The thread function returned (or the thread was aborted).
    Finished,
}

/// Per-thread record.
pub(crate) struct ThreadRec {
    pub(crate) status: Status,
    /// The declared next operation (meaningful when `Poised`).
    pub(crate) pending: Option<Op>,
    /// The thread function's boxed return value, for `JoinHandle::join`.
    pub(crate) result: Option<Box<dyn Any + Send>>,
    /// Whether an OS thread is actually running this record. A tid is
    /// allocated *before* its parent's `Spawn` op is granted; until the
    /// grant, the record is `Starting` with no OS thread behind it and must
    /// not block quiescence (notably when the execution aborts mid-spawn).
    pub(crate) os_spawned: bool,
}

/// Reader/writer state of a checked lock.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct LockRec {
    pub(crate) readers: usize,
    pub(crate) writer: bool,
}

/// Shared mutable state of one execution, behind [`ExecInner::state`].
pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadRec>,
    /// The thread currently allowed to take a step, if any.
    grant: Option<Tid>,
    /// Set to wind the execution down; parked threads unwind with
    /// [`AbortToken`].
    pub(crate) aborting: bool,
    /// First failure wins; later ones (cascades from the abort) are noise.
    pub(crate) failure: Option<Failure>,
    /// Lock state per lock object id.
    pub(crate) locks: HashMap<ObjId, LockRec>,
    /// Dense object-id allocator (atomics and locks share the space).
    next_obj: usize,
    /// Happens-before race detector for this execution.
    pub(crate) detector: Detector,
    /// Granted-thread sequence so far (failure reports clone it).
    pub(crate) schedule: Vec<Tid>,
    /// OS handles of managed (non-root) threads, joined at execution end.
    pub(crate) os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One execution's shared context: state + condvar.
pub(crate) struct ExecInner {
    pub(crate) state: Mutex<ExecState>,
    pub(crate) cv: Condvar,
}

/// Private unwind payload used to abort parked threads; wrappers catch it.
struct AbortToken;

thread_local! {
    /// The executing checked thread's context: which execution it belongs
    /// to and which checked thread it is.
    static CTX: RefCell<Option<(Arc<ExecInner>, Tid)>> = const { RefCell::new(None) };
}

/// Run `f` with the thread-local context set to `(exec, tid)`.
fn with_ctx_set<R>(exec: Arc<ExecInner>, tid: Tid, f: impl FnOnce() -> R) -> R {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
    // Reset even on unwind so an OS thread reused by the test harness does
    // not leak a stale context.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            CTX.with(|c| *c.borrow_mut() = None);
        }
    }
    let _reset = Reset;
    f()
}

/// The current checked-thread context, or `None` outside a model run.
pub(crate) fn current_ctx() -> Option<(Arc<ExecInner>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

/// The current context, panicking with a usable message outside a model.
pub(crate) fn require_ctx(what: &str) -> (Arc<ExecInner>, Tid) {
    current_ctx().unwrap_or_else(|| {
        panic!(
            "{what} used outside a conc model run; instrumented types only \
             work inside Checker::check / Checker::replay"
        )
    })
}

impl ExecInner {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ExecInner {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                grant: None,
                aborting: false,
                failure: None,
                locks: HashMap::new(),
                next_obj: 0,
                detector: Detector::new(),
                schedule: Vec::new(),
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Allocate a checked-thread record in `Starting` state.
    pub(crate) fn alloc_thread(&self) -> Tid {
        let mut st = self.state.lock().unwrap();
        let tid = Tid(st.threads.len());
        st.threads.push(ThreadRec {
            status: Status::Starting,
            pending: None,
            result: None,
            os_spawned: false,
        });
        tid
    }

    /// Allocate an object id (called from shim constructors, under the
    /// executing thread's context).
    pub(crate) fn alloc_obj(&self) -> ObjId {
        let mut st = self.state.lock().unwrap();
        let id = ObjId(st.next_obj);
        st.next_obj += 1;
        id
    }

    /// Declare `op` as `tid`'s next step and park until granted. Called by
    /// the shims on the checked thread. Unwinds with the abort token if
    /// the execution is winding down.
    pub(crate) fn sched_point(&self, tid: Tid, op: Op) {
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.threads[tid.0].pending = Some(op);
        st.threads[tid.0].status = Status::Poised;
        self.cv.notify_all();
        loop {
            if st.aborting {
                drop(st);
                panic::panic_any(AbortToken);
            }
            if st.grant == Some(tid) {
                st.grant = None;
                st.threads[tid.0].status = Status::Running;
                st.threads[tid.0].pending = None;
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Record a data access from checked code (not a scheduling point);
    /// aborts the execution with a race failure if the detector objects.
    pub(crate) fn data_access(&self, tid: Tid, loc: usize, is_write: bool) {
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            panic::panic_any(AbortToken);
        }
        // Advance the accessor's local time: the access sits *between*
        // visible ops, and without the tick a post-spawn (or post-release)
        // access would carry the same clock the spawn/release published,
        // making genuinely concurrent accesses look ordered.
        st.detector.tick(tid);
        let race = if is_write {
            st.detector.data_write(tid, loc)
        } else {
            st.detector.data_read(tid, loc)
        };
        if let Some(race) = race {
            let schedule = st.schedule.clone();
            st.failure.get_or_insert(Failure {
                kind: FailureKind::Race(race),
                schedule,
            });
            st.aborting = true;
            self.cv.notify_all();
            drop(st);
            panic::panic_any(AbortToken);
        }
    }

    /// Forget a retired data location (free of instrumented storage).
    pub(crate) fn data_retire(&self, loc: usize) {
        self.state.lock().unwrap().detector.data_retire(loc);
    }

    /// Mark `tid` finished, storing its result; called by the wrappers.
    fn finish_thread(
        &self,
        tid: Tid,
        result: Option<Box<dyn Any + Send>>,
        panic_msg: Option<String>,
    ) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid.0].status = Status::Finished;
        st.threads[tid.0].pending = None;
        st.threads[tid.0].result = result;
        st.detector.finish(tid);
        if let Some(msg) = panic_msg {
            if !st.aborting {
                let schedule = st.schedule.clone();
                st.failure.get_or_insert(Failure {
                    kind: FailureKind::Panic(msg),
                    schedule,
                });
                st.aborting = true;
            }
        }
        self.cv.notify_all();
    }

    /// Spawn a managed checked thread running `f`; returns its tid. Called
    /// by `conc` spawn on the parent checked thread, *after* the `Spawn`
    /// op was granted. Blocks until the child has parked (or finished), so
    /// the child's pending op is known when the parent's step completes.
    pub(crate) fn spawn_managed<T: Send + 'static>(
        self: &Arc<Self>,
        f: impl FnOnce() -> T + Send + 'static,
        child: Tid,
    ) {
        self.state.lock().unwrap().threads[child.0].os_spawned = true;
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("conc-{child}"))
            .spawn(move || {
                let exec2 = Arc::clone(&exec);
                with_ctx_set(Arc::clone(&exec), child, move || {
                    let out = panic::catch_unwind(AssertUnwindSafe(f));
                    deliver_outcome(
                        &exec2,
                        child,
                        out.map(|v| Box::new(v) as Box<dyn Any + Send>),
                    );
                });
            })
            .expect("failed to spawn checked thread");
        let mut st = self.state.lock().unwrap();
        st.os_handles.push(handle);
        while st.threads[child.0].status == Status::Starting {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Block until `target` finishes, as the tail of an already-granted
    /// `Join` step, and take its result.
    pub(crate) fn take_result(&self, target: Tid) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock().unwrap();
        // The Join op is only granted when the target is Finished, so no
        // waiting happens here; the take is immediate.
        debug_assert_eq!(st.threads[target.0].status, Status::Finished);
        st.threads[target.0].result.take()
    }
}

/// Common tail of both wrappers: classify the unwind and finish the record.
fn deliver_outcome(
    exec: &Arc<ExecInner>,
    tid: Tid,
    out: Result<Box<dyn Any + Send>, Box<dyn Any + Send>>,
) {
    match out {
        Ok(v) => exec.finish_thread(tid, Some(v), None),
        Err(payload) => {
            if payload.downcast_ref::<AbortToken>().is_some() {
                exec.finish_thread(tid, None, None);
            } else {
                // `&*payload`, not `&payload`: the latter would unsize the
                // Box itself into the `dyn Any` argument and every
                // downcast inside would miss.
                let msg = panic_message(&*payload);
                exec.finish_thread(tid, None, Some(msg));
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the root closure (Tid 0) of an execution on a scoped thread.
/// Returns the scoped handle's result slot via the thread record.
pub(crate) fn run_root<'scope, 'env, F, V>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    exec: Arc<ExecInner>,
    f: &'env F,
) -> std::thread::ScopedJoinHandle<'scope, ()>
where
    F: Fn() -> V + Sync,
    V: Send + 'static,
{
    let root = exec.alloc_thread();
    debug_assert_eq!(root, Tid(0));
    exec.state.lock().unwrap().threads[root.0].os_spawned = true;
    scope.spawn(move || {
        let exec2 = Arc::clone(&exec);
        with_ctx_set(exec, root, move || {
            let out = panic::catch_unwind(AssertUnwindSafe(f));
            deliver_outcome(
                &exec2,
                root,
                out.map(|v| Box::new(v) as Box<dyn Any + Send>),
            );
        });
    })
}

/// Whether `tid`'s declared pending op can execute given current state.
pub(crate) fn op_enabled(st: &ExecState, op: &Op) -> bool {
    match *op {
        Op::LockRead(o) => !st.locks.get(&o).copied().unwrap_or_default().writer,
        Op::LockWrite(o) => {
            let l = st.locks.get(&o).copied().unwrap_or_default();
            !l.writer && l.readers == 0
        }
        Op::Join(target) => st.threads[target.0].status == Status::Finished,
        _ => true,
    }
}

/// Explorer-side step driver: grant `tid` its declared step, applying the
/// state transitions and happens-before edges the op implies, then wait
/// until the thread parks again (or finishes). Returns the op that was
/// executed. Caller must have verified the thread is `Poised` and enabled.
pub(crate) fn grant_step(exec: &ExecInner, tid: Tid) -> Op {
    let mut st = exec.state.lock().unwrap();
    debug_assert_eq!(st.threads[tid.0].status, Status::Poised);
    let op = st.threads[tid.0]
        .pending
        .expect("poised thread has a pending op");
    debug_assert!(op_enabled(&st, &op), "granted op must be enabled");
    st.schedule.push(tid);
    // Happens-before edges and lock/object transitions.
    st.detector.tick(tid);
    match op {
        Op::AtomicLoad(o) => st.detector.atomic_acquire(tid, o),
        Op::AtomicStore(o) => st.detector.atomic_release(tid, o),
        Op::AtomicRmw(o) => st.detector.atomic_acq_rel(tid, o),
        Op::LockRead(o) => {
            st.detector.lock_acquire(tid, o);
            st.locks.entry(o).or_default().readers += 1;
        }
        Op::LockWrite(o) => {
            st.detector.lock_acquire(tid, o);
            st.locks.entry(o).or_default().writer = true;
        }
        Op::UnlockRead(o) => {
            st.detector.lock_release(tid, o);
            let l = st.locks.entry(o).or_default();
            debug_assert!(l.readers > 0);
            l.readers -= 1;
        }
        Op::UnlockWrite(o) => {
            st.detector.lock_release(tid, o);
            let l = st.locks.entry(o).or_default();
            debug_assert!(l.writer);
            l.writer = false;
        }
        Op::Yield => {}
        Op::Spawn(child) => st.detector.spawn(tid, child),
        Op::Join(target) => st.detector.join(tid, target),
    }
    st.grant = Some(tid);
    exec.cv.notify_all();
    // Wait until the step completes: the grant is consumed and the thread
    // has either parked at its next op or finished. A spawned child may be
    // Starting while its parent runs; the parent's own park implies the
    // child parked too (spawn waits for it), so waiting on `tid` suffices.
    while st.grant.is_some() || st.threads[tid.0].status == Status::Running {
        st = exec.cv.wait(st).unwrap();
    }
    op
}

/// Explorer-side: wait until no thread is `Starting` or `Running` (i.e.
/// the execution is quiescent: every live thread is parked or finished).
pub(crate) fn wait_quiescent(exec: &ExecInner) {
    let mut st = exec.state.lock().unwrap();
    while st
        .threads
        .iter()
        .any(|t| t.status == Status::Running || (t.status == Status::Starting && t.os_spawned))
    {
        st = exec.cv.wait(st).unwrap();
    }
}

/// Explorer-side: abort the execution (budget cut or redundant branch) and
/// wake every parked thread so it unwinds.
pub(crate) fn abort_execution(exec: &ExecInner) {
    let mut st = exec.state.lock().unwrap();
    st.aborting = true;
    exec.cv.notify_all();
}

/// Explorer-side: join all managed OS threads (after all checked threads
/// finished or the execution aborted).
pub(crate) fn drain_os_threads(exec: &ExecInner) {
    loop {
        let handle = {
            let mut st = exec.state.lock().unwrap();
            st.os_handles.pop()
        };
        match handle {
            // The wrapper caught every unwind, so join only fails if the
            // OS thread was killed externally — propagate loudly.
            Some(h) => h.join().expect("checked thread wrapper never unwinds"),
            None => break,
        }
    }
}
