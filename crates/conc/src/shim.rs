//! Instrumented drop-in replacements for the std concurrency types.
//!
//! Each type mirrors the std API surface the checked code uses, but every
//! operation is a *scheduling point*: the calling thread declares the
//! operation and parks until the explorer grants it. Values live in plain
//! [`UnsafeCell`] storage — mutual exclusion is provided by the scheduler
//! token (at most one checked thread runs between grants), not by real
//! atomics, which is what lets the explorer control every interleaving.
//!
//! These types only function inside [`crate::explore::Checker::check`] /
//! [`Checker::replay`](crate::explore::Checker::replay); constructing or
//! using them elsewhere panics with a pointed message. Production builds
//! use the `conc::sync` / `conc::thread` aliases, which re-export the std
//! types unless `--cfg conc_check` is set — the shims are never on a hot
//! path.
//!
//! Memory-ordering parameters are accepted for API compatibility but the
//! model is fixed: loads acquire, stores release, RMWs acquire-release.
//! That over-approximates the orderings the ported objects actually use
//! (`AcqRel` swaps, `Acquire` loads, `Release` stores), so the race
//! detector never sees an edge the real program lacks... on the strong
//! side; on the weak side the model forbids nothing the hardware allows,
//! because every modeled edge corresponds to a real fence in the ported
//! code.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::LockResult;

use crate::op::{ObjId, Op};
use crate::runtime;
use crate::vclock::Tid;

/// Declare-and-park helper: every visible op funnels through here.
fn sched(what: &str, op: Op) {
    let (exec, tid) = runtime::require_ctx(what);
    exec.sched_point(tid, op);
}

/// Checked `AtomicU64`.
pub struct AtomicU64 {
    id: ObjId,
    cell: UnsafeCell<u64>,
}

// SAFETY: the cell is only dereferenced by the checked thread currently
// holding the scheduler grant; at most one thread runs between grants, so
// accesses are mutually exclusive despite the shared reference.
unsafe impl Sync for AtomicU64 {}

impl AtomicU64 {
    pub fn new(v: u64) -> Self {
        let (exec, _) = runtime::require_ctx("conc AtomicU64::new");
        AtomicU64 {
            id: exec.alloc_obj(),
            cell: UnsafeCell::new(v),
        }
    }

    pub fn load(&self, _order: Ordering) -> u64 {
        sched("conc AtomicU64::load", Op::AtomicLoad(self.id));
        // SAFETY: we hold the scheduler grant (sched parked until granted).
        unsafe { *self.cell.get() }
    }

    pub fn store(&self, v: u64, _order: Ordering) {
        sched("conc AtomicU64::store", Op::AtomicStore(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe { *self.cell.get() = v }
    }

    pub fn swap(&self, v: u64, _order: Ordering) -> u64 {
        sched("conc AtomicU64::swap", Op::AtomicRmw(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe {
            let p = self.cell.get();
            std::mem::replace(&mut *p, v)
        }
    }

    pub fn fetch_add(&self, v: u64, _order: Ordering) -> u64 {
        sched("conc AtomicU64::fetch_add", Op::AtomicRmw(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe {
            let p = self.cell.get();
            let old = *p;
            *p = old.wrapping_add(v);
            old
        }
    }

    pub fn into_inner(self) -> u64 {
        self.cell.into_inner()
    }
}

impl Default for AtomicU64 {
    fn default() -> Self {
        AtomicU64::new(0)
    }
}

impl fmt::Debug for AtomicU64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Reading the value would be a visible operation; show identity only.
        f.debug_struct("AtomicU64").finish_non_exhaustive()
    }
}

/// Checked `AtomicBool`.
pub struct AtomicBool {
    id: ObjId,
    cell: UnsafeCell<bool>,
}

// SAFETY: as for `AtomicU64` — scheduler-token exclusion.
unsafe impl Sync for AtomicBool {}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        let (exec, _) = runtime::require_ctx("conc AtomicBool::new");
        AtomicBool {
            id: exec.alloc_obj(),
            cell: UnsafeCell::new(v),
        }
    }

    pub fn load(&self, _order: Ordering) -> bool {
        sched("conc AtomicBool::load", Op::AtomicLoad(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe { *self.cell.get() }
    }

    pub fn store(&self, v: bool, _order: Ordering) {
        sched("conc AtomicBool::store", Op::AtomicStore(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe { *self.cell.get() = v }
    }

    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        sched("conc AtomicBool::swap", Op::AtomicRmw(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe {
            let p = self.cell.get();
            std::mem::replace(&mut *p, v)
        }
    }

    pub fn into_inner(self) -> bool {
        self.cell.into_inner()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        AtomicBool::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicBool").finish_non_exhaustive()
    }
}

/// Checked `AtomicPtr<T>`.
pub struct AtomicPtr<T> {
    id: ObjId,
    cell: UnsafeCell<*mut T>,
}

// SAFETY: the stored pointer is plain data here (dereferencing it is the
// *user's* unsafe code, audited at its own sites); cell access itself is
// serialized by the scheduler grant. Matches std `AtomicPtr<T>`, which is
// Send + Sync for all T.
unsafe impl<T> Send for AtomicPtr<T> {}
// SAFETY: as above.
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    pub fn new(p: *mut T) -> Self {
        let (exec, _) = runtime::require_ctx("conc AtomicPtr::new");
        AtomicPtr {
            id: exec.alloc_obj(),
            cell: UnsafeCell::new(p),
        }
    }

    pub fn load(&self, _order: Ordering) -> *mut T {
        sched("conc AtomicPtr::load", Op::AtomicLoad(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe { *self.cell.get() }
    }

    pub fn store(&self, p: *mut T, _order: Ordering) {
        sched("conc AtomicPtr::store", Op::AtomicStore(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe { *self.cell.get() = p }
    }

    pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
        sched("conc AtomicPtr::swap", Op::AtomicRmw(self.id));
        // SAFETY: we hold the scheduler grant.
        unsafe {
            let c = self.cell.get();
            std::mem::replace(&mut *c, p)
        }
    }

    /// Exclusive access needs no scheduling point — `&mut self` proves no
    /// other checked thread can touch the cell.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.cell.get_mut()
    }

    pub fn into_inner(self) -> *mut T {
        self.cell.into_inner()
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicPtr").finish_non_exhaustive()
    }
}

/// Checked `RwLock<T>`. Never poisons: a panic inside the model aborts the
/// whole execution as a counterexample, so `read`/`write` always return
/// `Ok` — which is exactly the behavior the ported `AtomicRegister` pins
/// (it treats poison as recoverable and reads through it).
pub struct RwLock<T> {
    id: ObjId,
    cell: UnsafeCell<T>,
}

// SAFETY: guard access is serialized by the explorer's lock-state table
// (a write grant excludes all others; read grants exclude writes), so the
// usual RwLock reasoning applies. Bounds match std.
unsafe impl<T: Send> Send for RwLock<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(v: T) -> Self {
        let (exec, _) = runtime::require_ctx("conc RwLock::new");
        RwLock {
            id: exec.alloc_obj(),
            cell: UnsafeCell::new(v),
        }
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        sched("conc RwLock::read", Op::LockRead(self.id));
        Ok(RwLockReadGuard { lock: self })
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        sched("conc RwLock::write", Op::LockWrite(self.id));
        Ok(RwLockWriteGuard { lock: self })
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.cell.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Peeking at the value would need a lock grant; show identity only.
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the explorer's lock table holds a read grant for this
        // guard, excluding writers.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // During an execution-abort unwind, parking again would panic
        // inside a panic; the run is being torn down, lock state included.
        if std::thread::panicking() {
            return;
        }
        sched("conc RwLock read unlock", Op::UnlockRead(self.lock.id));
    }
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the explorer's lock table holds the write grant for this
        // guard — exclusive access.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the write grant is exclusive.
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        sched("conc RwLock write unlock", Op::UnlockWrite(self.lock.id));
    }
}

/// Handle to a checked thread, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    child: Tid,
    _result: PhantomData<fn() -> T>,
}

/// Spawn a checked thread. The spawn itself is a visible op; the parent
/// resumes only after the child has parked at *its* first visible op, so
/// the explorer always knows every live thread's pending operation.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, tid) = runtime::require_ctx("conc::thread::spawn");
    let child = exec.alloc_thread();
    exec.sched_point(tid, Op::Spawn(child));
    exec.spawn_managed(f, child);
    JoinHandle {
        child,
        _result: PhantomData,
    }
}

impl<T: 'static> JoinHandle<T> {
    /// Wait for the thread to finish. The join is a visible op the
    /// explorer only grants once the target has finished, so this never
    /// actually blocks the OS thread beyond the usual park.
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, tid) = runtime::require_ctx("conc JoinHandle::join");
        exec.sched_point(tid, Op::Join(self.child));
        match exec.take_result(self.child) {
            Some(b) => Ok(*b.downcast::<T>().expect("join result type matches spawn")),
            // Unreachable in practice: a panicking child aborts the whole
            // execution before the join can be granted.
            None => Err(Box::new("checked thread panicked")),
        }
    }
}

/// Voluntary scheduling point (replaces `std::thread::yield_now` spins).
pub fn yield_now() {
    sched("conc::thread::yield_now", Op::Yield);
}
