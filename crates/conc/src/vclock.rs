//! Vector clocks: the happens-before algebra shared by the race detector
//! and the DPOR explorer.
//!
//! A [`VClock`] maps each checked thread to a logical timestamp. The
//! component-wise operations implement the standard happens-before lattice:
//! [`VClock::join`] is the least upper bound, [`VClock::le`] the partial
//! order, and [`VClock::tick`] advances one thread's local time. The
//! algebra's laws (join is an idempotent commutative monoid, `le` is a
//! partial order, `join` is the lub) are pinned by unit tests in this
//! module — the detector's soundness reduces to them.
//!
//! Clocks are indexed by [`Tid`], the checker's dense thread id (the
//! *checked-program* thread, not the OS thread running it).

use std::fmt;

/// Dense id of a checked thread. `Tid(0)` is the root thread of a model
/// run; spawned threads get consecutive ids in spawn order, which is
/// deterministic under the controlled scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub usize);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A vector clock over the checked threads.
///
/// Components default to 0; clocks of different lengths compare as if the
/// shorter one were zero-extended, so a clock created before a thread was
/// spawned stays valid after the spawn.
///
/// # Example
///
/// ```
/// use swapcons_conc::vclock::{Tid, VClock};
///
/// let mut a = VClock::new();
/// a.tick(Tid(0));
/// let mut b = VClock::new();
/// b.tick(Tid(1));
/// assert!(!a.le(&b) && !b.le(&a)); // concurrent
/// let mut j = a.clone();
/// j.join(&b);
/// assert!(a.le(&j) && b.le(&j)); // join is an upper bound
/// ```
#[derive(Clone, Default)]
pub struct VClock {
    /// `slots[t]` is thread `t`'s timestamp; missing slots are 0.
    slots: Vec<u32>,
}

/// Trailing zero slots are representation, not state: equality and hashing
/// see the trimmed slice, so `⟨1⟩ == ⟨1,0⟩`.
impl PartialEq for VClock {
    fn eq(&self, other: &Self) -> bool {
        self.trimmed() == other.trimmed()
    }
}

impl Eq for VClock {}

impl std::hash::Hash for VClock {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.trimmed().hash(state);
    }
}

impl VClock {
    /// The zero clock (bottom of the lattice).
    pub fn new() -> Self {
        VClock::default()
    }

    /// The slots with trailing zeros stripped — the canonical view equality
    /// and hashing use.
    fn trimmed(&self) -> &[u32] {
        let end = self
            .slots
            .iter()
            .rposition(|&x| x != 0)
            .map_or(0, |i| i + 1);
        &self.slots[..end]
    }

    /// Thread `t`'s component.
    pub fn get(&self, t: Tid) -> u32 {
        self.slots.get(t.0).copied().unwrap_or(0)
    }

    /// Set thread `t`'s component (used when adopting a snapshot).
    pub fn set(&mut self, t: Tid, v: u32) {
        if self.slots.len() <= t.0 {
            self.slots.resize(t.0 + 1, 0);
        }
        self.slots[t.0] = v;
    }

    /// Advance thread `t`'s local time by one.
    pub fn tick(&mut self, t: Tid) {
        let cur = self.get(t);
        self.set(t, cur + 1);
    }

    /// Component-wise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (a, &b) in self.slots.iter_mut().zip(&other.slots) {
            *a = (*a).max(b);
        }
    }

    /// The happens-before partial order: `self ⊑ other` iff every component
    /// of `self` is at most the corresponding component of `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(i, &a)| a <= other.slots.get(i).copied().unwrap_or(0))
    }

    /// Strict order: `self ⊑ other` and `self ≠ other` (as clocks, after
    /// zero-extension).
    pub fn lt(&self, other: &VClock) -> bool {
        self.le(other) && !other.le(self)
    }

    /// Whether neither clock precedes the other — the two events are
    /// concurrent, the detector's race condition.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

impl fmt::Debug for VClock {
    /// Prints the dense slice, zero slots included — two clocks differing
    /// only by zero-extension print differently while comparing equal (the
    /// tests pin that equality is semantic, not representational).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, x) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(slots: &[u32]) -> VClock {
        let mut v = VClock::new();
        for (i, &x) in slots.iter().enumerate() {
            v.set(Tid(i), x);
        }
        v
    }

    #[test]
    fn zero_is_bottom() {
        let z = VClock::new();
        assert!(z.le(&c(&[1, 2, 3])));
        assert!(z.le(&z));
        assert!(!c(&[0, 1]).le(&z));
    }

    #[test]
    fn le_is_a_partial_order() {
        let a = c(&[1, 2]);
        let b = c(&[2, 2]);
        let d = c(&[2, 1]);
        // Reflexive.
        assert!(a.le(&a));
        // Antisymmetric: a ⊑ b, not b ⊑ a.
        assert!(a.le(&b) && !b.le(&a));
        // Transitive through b.
        assert!(c(&[0, 1]).le(&a) && a.le(&b) && c(&[0, 1]).le(&b));
        // Incomparable pair.
        assert!(a.concurrent_with(&d));
        assert!(!a.concurrent_with(&b));
    }

    #[test]
    fn lt_excludes_equal_clocks() {
        let a = c(&[1, 1]);
        assert!(!a.lt(&a));
        assert!(a.lt(&c(&[1, 2])));
        // Zero-extension: ⟨1⟩ == ⟨1,0⟩ semantically, so not strictly less.
        assert!(!c(&[1]).lt(&c(&[1, 0])));
    }

    #[test]
    fn join_is_least_upper_bound() {
        let a = c(&[1, 5, 0]);
        let b = c(&[3, 2, 0]);
        let mut j = a.clone();
        j.join(&b);
        assert_eq!(j, c(&[3, 5, 0]));
        // Upper bound.
        assert!(a.le(&j) && b.le(&j));
        // Least: any other upper bound dominates j.
        let ub = c(&[4, 6, 1]);
        assert!(a.le(&ub) && b.le(&ub) && j.le(&ub));
    }

    #[test]
    fn join_laws() {
        let a = c(&[1, 2]);
        let b = c(&[2, 1]);
        let d = c(&[0, 3]);
        // Idempotent.
        let mut x = a.clone();
        x.join(&a);
        assert_eq!(x, a);
        // Commutative.
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba);
        // Associative.
        let mut l = a.clone();
        l.join(&b);
        l.join(&d);
        let mut bd = b.clone();
        bd.join(&d);
        let mut r = a.clone();
        r.join(&bd);
        assert_eq!(l, r);
        // Identity: join with bottom.
        let mut z = a.clone();
        z.join(&VClock::new());
        assert_eq!(z, a);
    }

    #[test]
    fn tick_advances_only_one_component() {
        let mut a = c(&[1, 2]);
        let before = a.clone();
        a.tick(Tid(0));
        assert_eq!(a.get(Tid(0)), 2);
        assert_eq!(a.get(Tid(1)), 2);
        assert!(before.lt(&a), "tick strictly advances");
    }

    #[test]
    fn tick_into_fresh_slot() {
        let mut a = VClock::new();
        a.tick(Tid(3));
        assert_eq!(a.get(Tid(3)), 1);
        assert_eq!(a.get(Tid(0)), 0);
        assert_eq!(a.get(Tid(7)), 0, "missing slots read as zero");
    }

    #[test]
    fn length_mismatch_is_semantic_zero_extension() {
        // ⟨1⟩ and ⟨1,0⟩ are the same clock.
        assert!(c(&[1]).le(&c(&[1, 0])));
        assert!(c(&[1, 0]).le(&c(&[1])));
        assert!(!c(&[1, 1]).le(&c(&[1])));
        assert!(c(&[1]).concurrent_with(&c(&[0, 1])));
        // Equality and hashing agree with the semantic order.
        assert_eq!(c(&[1]), c(&[1, 0]));
        fn h<T: std::hash::Hash>(t: &T) -> u64 {
            use std::hash::Hasher;
            let mut s = std::collections::hash_map::DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&c(&[1])), h(&c(&[1, 0])));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", c(&[1, 0, 2])), "⟨1,0,2⟩");
        assert_eq!(format!("{}", Tid(4)), "t4");
    }
}
