//! End-to-end tests of the interleaving checker: parity between full
//! enumeration and DPOR on tiny programs, sensitivity of the race
//! detector, deadlock and panic counterexamples, and schedule replay.
//!
//! These run in the tier-1 gate (no `conc_check` cfg needed): the shim
//! types are always compiled, and every program here constructs its
//! objects inside the checked closure.

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use swapcons_conc::shim::{spawn, yield_now, AtomicU64, RwLock};
use swapcons_conc::{fixtures, Checker, FailureKind, Mode};

fn outcome_set<V: Clone + Eq + std::hash::Hash>(v: &[V]) -> HashSet<V> {
    v.iter().cloned().collect()
}

/// Both modes on the same program: same verdict, same outcome set, and
/// DPOR explores no more interleavings than full enumeration.
fn parity<F>(f: F, name: &str) -> (u64, u64)
where
    F: Fn() -> u64 + Sync + Copy,
{
    let full = Checker::new(Mode::FullEnumeration).check(f);
    let dpor = Checker::new(Mode::Dpor).check(f);
    assert!(
        full.complete,
        "{name}: full enumeration must finish in budget"
    );
    assert!(dpor.complete, "{name}: DPOR must finish in budget");
    assert_eq!(
        full.failure.is_none(),
        dpor.failure.is_none(),
        "{name}: modes must agree on the verdict"
    );
    assert_eq!(
        outcome_set(&full.outcomes),
        outcome_set(&dpor.outcomes),
        "{name}: modes must agree on observable outcomes"
    );
    assert!(
        dpor.interleavings <= full.interleavings,
        "{name}: DPOR explored more ({}) than full ({})",
        dpor.interleavings,
        full.interleavings
    );
    (full.interleavings, dpor.interleavings)
}

#[test]
fn single_thread_program_has_one_interleaving() {
    let (full, dpor) = parity(
        || {
            let a = AtomicU64::new(1);
            a.store(2, Ordering::Release);
            a.load(Ordering::Acquire)
        },
        "single-thread",
    );
    assert_eq!(full, 1);
    assert_eq!(dpor, 1);
}

#[test]
fn two_adders_always_sum() {
    let (full, dpor) = parity(
        || {
            let a = Arc::new(AtomicU64::new(0));
            let a1 = Arc::clone(&a);
            let a2 = Arc::clone(&a);
            let h1 = spawn(move || a1.fetch_add(1, Ordering::AcqRel));
            let h2 = spawn(move || a2.fetch_add(2, Ordering::AcqRel));
            h1.join().unwrap();
            h2.join().unwrap();
            a.load(Ordering::Acquire)
        },
        "two-adders",
    );
    // Two conflicting RMWs: at least the two orders must be explored.
    assert!(full >= 2, "full explored {full}");
    assert!(dpor >= 1, "dpor explored {dpor}");
    // The outcome is always 3 — checked inside parity via outcome sets,
    // but pin it explicitly too.
    let r = Checker::new(Mode::Dpor).check(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a1 = Arc::clone(&a);
        let a2 = Arc::clone(&a);
        let h1 = spawn(move || a1.fetch_add(1, Ordering::AcqRel));
        let h2 = spawn(move || a2.fetch_add(2, Ordering::AcqRel));
        h1.join().unwrap();
        h2.join().unwrap();
        a.load(Ordering::Acquire)
    });
    assert_eq!(r.outcomes, vec![3]);
}

#[test]
fn racing_stores_expose_both_orders() {
    let prog = || {
        let a = Arc::new(AtomicU64::new(0));
        let a1 = Arc::clone(&a);
        let a2 = Arc::clone(&a);
        let h1 = spawn(move || a1.store(1, Ordering::Release));
        let h2 = spawn(move || a2.store(2, Ordering::Release));
        h1.join().unwrap();
        h2.join().unwrap();
        a.load(Ordering::Acquire)
    };
    let (full, dpor) = parity(prog, "racing-stores");
    let r = Checker::new(Mode::Dpor).check(prog);
    assert_eq!(
        outcome_set(&r.outcomes),
        HashSet::from([1u64, 2u64]),
        "both store orders must be observable"
    );
    assert!(full >= 2 && dpor >= 2, "full={full} dpor={dpor}");
}

#[test]
fn independent_objects_reduce_to_one_trace() {
    // Two threads touching *different* atomics: every schedule is
    // equivalent, so DPOR should collapse the space dramatically while
    // full enumeration pays the factorial.
    let (full, dpor) = parity(
        || {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::new(AtomicU64::new(0));
            let a1 = Arc::clone(&a);
            let b1 = Arc::clone(&b);
            let h1 = spawn(move || {
                a1.store(1, Ordering::Release);
                a1.store(2, Ordering::Release);
            });
            let h2 = spawn(move || {
                b1.store(1, Ordering::Release);
                b1.store(2, Ordering::Release);
            });
            h1.join().unwrap();
            h2.join().unwrap();
            a.load(Ordering::Acquire) * 10 + b.load(Ordering::Acquire)
        },
        "independent-objects",
    );
    assert!(
        dpor < full,
        "independent work must actually reduce: dpor={dpor} full={full}"
    );
}

#[test]
fn yield_points_are_schedulable_but_commute() {
    let (_, dpor) = parity(
        || {
            let h = spawn(|| {
                yield_now();
                1u64
            });
            yield_now();
            h.join().unwrap()
        },
        "yields",
    );
    assert!(dpor >= 1);
}

#[test]
fn racy_fixture_is_flagged_in_both_modes() {
    for mode in [Mode::FullEnumeration, Mode::Dpor] {
        let r = Checker::new(mode).check(fixtures::racy_unsynchronized_writes);
        let failure = r
            .failure
            .unwrap_or_else(|| panic!("{mode:?} must flag the racy fixture"));
        assert!(
            matches!(failure.kind, FailureKind::Race(_)),
            "{mode:?}: expected a race, got {failure}"
        );
        assert!(
            !failure.schedule.is_empty(),
            "counterexample must carry a schedule"
        );
        let msg = format!("{failure}");
        assert!(msg.contains("data race"), "{msg}");
    }
}

#[test]
fn join_synchronized_fixture_passes_exhaustively() {
    for mode in [Mode::FullEnumeration, Mode::Dpor] {
        let r = Checker::new(mode).check(fixtures::join_synchronized_handoff);
        assert!(r.complete, "{mode:?} within budget");
        assert!(
            r.passed(),
            "{mode:?}: join-synchronized handoff must be race-free, got {}",
            r.failure.unwrap()
        );
        assert_eq!(r.outcomes, vec![7]);
    }
}

#[test]
fn release_acquire_fixture_passes_with_both_outcomes() {
    let (full, dpor) = parity(fixtures::release_acquire_handoff, "rel-acq");
    let r = Checker::new(Mode::FullEnumeration).check(fixtures::release_acquire_handoff);
    assert_eq!(
        outcome_set(&r.outcomes),
        HashSet::from([0u64, 1u64]),
        "the child must be able to both hit and miss the flag"
    );
    assert!(full >= 2 && dpor >= 2);
}

#[test]
fn racy_counterexample_replays() {
    let checker = Checker::new(Mode::Dpor);
    let r = checker.check(fixtures::racy_unsynchronized_writes);
    let failure = r.failure.expect("racy fixture fails");
    let FailureKind::Race(ref race) = failure.kind else {
        panic!("expected race, got {failure}");
    };
    let loc = race.loc;
    let replayed = checker.replay(fixtures::racy_unsynchronized_writes, &failure.schedule);
    let rf = replayed
        .failure
        .expect("replaying the counterexample schedule reproduces the failure");
    match rf.kind {
        FailureKind::Race(r2) => assert_eq!(r2.loc, loc, "same location on replay"),
        other => panic!("expected race on replay, got {other:?}"),
    }
}

#[test]
fn replay_of_a_clean_schedule_returns_the_outcome() {
    let checker = Checker::new(Mode::Dpor);
    let replayed = checker.replay(fixtures::join_synchronized_handoff, &[]);
    assert!(replayed.failure.is_none());
    assert_eq!(replayed.outcome, Some(7));
}

#[test]
fn abba_lock_order_deadlocks() {
    let prog = || {
        let a = Arc::new(RwLock::new(0u64));
        let b = Arc::new(RwLock::new(0u64));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h1 = spawn(move || {
            let ga = a1.write().unwrap();
            let gb = b1.write().unwrap();
            *ga + *gb
        });
        let h2 = spawn(move || {
            let gb = b2.write().unwrap();
            let ga = a2.write().unwrap();
            *ga + *gb
        });
        let x = h1.join().unwrap();
        let y = h2.join().unwrap();
        x + y
    };
    for mode in [Mode::FullEnumeration, Mode::Dpor] {
        let r = Checker::new(mode).check(prog);
        let failure = r
            .failure
            .unwrap_or_else(|| panic!("{mode:?} must find the ABBA deadlock"));
        assert!(
            matches!(failure.kind, FailureKind::Deadlock),
            "{mode:?}: expected deadlock, got {failure}"
        );
    }
}

#[test]
fn consistent_lock_order_is_deadlock_free() {
    let prog = || {
        let a = Arc::new(RwLock::new(1u64));
        let b = Arc::new(RwLock::new(2u64));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h1 = spawn(move || {
            let ga = a1.write().unwrap();
            let gb = b1.write().unwrap();
            *ga + *gb
        });
        let h2 = spawn(move || {
            let ga = a2.write().unwrap();
            let gb = b2.write().unwrap();
            *ga + *gb
        });
        h1.join().unwrap() + h2.join().unwrap()
    };
    let (_, _) = parity(prog, "ordered-locks");
    let r = Checker::new(Mode::Dpor).check(prog);
    assert!(r.passed());
    assert_eq!(r.outcomes, vec![6]);
}

#[test]
fn readers_share_writers_exclude() {
    let prog = || {
        let l = Arc::new(RwLock::new(10u64));
        let (l1, l2, l3) = (Arc::clone(&l), Arc::clone(&l), Arc::clone(&l));
        let r1 = spawn(move || *l1.read().unwrap());
        let r2 = spawn(move || *l2.read().unwrap());
        let w = spawn(move || {
            *l3.write().unwrap() += 1;
            0u64
        });
        let a = r1.join().unwrap();
        let b = r2.join().unwrap();
        w.join().unwrap();
        a * 100 + b
    };
    let (full, dpor) = parity(prog, "rwlock");
    let r = Checker::new(Mode::FullEnumeration).check(prog);
    // Readers each see 10 or 11 depending on their order against the
    // writer, but never torn values.
    for &o in &r.outcomes {
        let (a, b) = (o / 100, o % 100);
        assert!(a == 10 || a == 11, "reader saw {a}");
        assert!(b == 10 || b == 11, "reader saw {b}");
    }
    assert!(full >= dpor);
}

#[test]
fn schedule_dependent_assert_is_a_counterexample() {
    // The assertion only fails when the child's store lands first; the
    // checker must find that schedule and report the panic.
    let prog = || {
        let a = Arc::new(AtomicU64::new(0));
        let a1 = Arc::clone(&a);
        let h = spawn(move || a1.store(1, Ordering::Release));
        let seen = a.load(Ordering::Acquire);
        assert_eq!(seen, 0, "child ran first");
        h.join().unwrap();
        seen
    };
    for mode in [Mode::FullEnumeration, Mode::Dpor] {
        let r = Checker::new(mode).check(prog);
        let failure = r
            .failure
            .unwrap_or_else(|| panic!("{mode:?} must find the failing schedule"));
        // Pin the payload extraction too (a `&Box<dyn Any>` would unsize
        // the box itself into the probe and lose the message).
        assert!(
            matches!(&failure.kind, FailureKind::Panic(m) if m.contains("child ran first")),
            "{mode:?}: expected panic naming the assertion, got {failure}"
        );
        // The counterexample replays.
        let replayed = Checker::new(mode).replay(prog, &failure.schedule);
        assert!(
            matches!(replayed.failure, Some(f) if matches!(f.kind, FailureKind::Panic(_))),
            "{mode:?}: schedule must reproduce the panic"
        );
    }
}

#[test]
fn preemption_bound_restricts_and_reports() {
    let prog = || {
        let a = Arc::new(AtomicU64::new(0));
        let a1 = Arc::clone(&a);
        let a2 = Arc::clone(&a);
        let h1 = spawn(move || {
            a1.fetch_add(1, Ordering::AcqRel);
            a1.fetch_add(1, Ordering::AcqRel)
        });
        let h2 = spawn(move || {
            a2.fetch_add(1, Ordering::AcqRel);
            a2.fetch_add(1, Ordering::AcqRel)
        });
        h1.join().unwrap();
        h2.join().unwrap();
        a.load(Ordering::Acquire)
    };
    let unbounded = Checker::new(Mode::FullEnumeration).check(prog);
    let bounded = Checker::new(Mode::FullEnumeration)
        .with_preemption_bound(1)
        .check(prog);
    assert!(unbounded.complete && bounded.complete);
    assert!(unbounded.passed() && bounded.passed());
    assert!(
        bounded.interleavings < unbounded.interleavings,
        "bound must restrict: bounded={} unbounded={}",
        bounded.interleavings,
        unbounded.interleavings
    );
    // The final count is always 4 regardless of schedule.
    assert_eq!(bounded.outcomes, vec![4]);
    assert_eq!(unbounded.outcomes, vec![4]);
}

#[test]
fn execution_budget_truncates_visibly() {
    // Two threads with two conflicting RMWs each: far more than one
    // schedule exists, so a one-execution budget must cut the search and
    // say so.
    let prog = || {
        let a = Arc::new(AtomicU64::new(0));
        let a1 = Arc::clone(&a);
        let a2 = Arc::clone(&a);
        let h1 = spawn(move || {
            a1.fetch_add(1, Ordering::AcqRel);
            a1.fetch_add(1, Ordering::AcqRel)
        });
        let h2 = spawn(move || {
            a2.fetch_add(1, Ordering::AcqRel);
            a2.fetch_add(1, Ordering::AcqRel)
        });
        h1.join().unwrap();
        h2.join().unwrap();
        a.load(Ordering::Acquire)
    };
    let r = Checker::new(Mode::FullEnumeration)
        .with_max_executions(1)
        .check(prog);
    assert!(!r.complete, "cut search must not claim completeness");
    assert_eq!(r.interleavings, 1);
    // The full space, for contrast, is larger and completes.
    let full = Checker::new(Mode::FullEnumeration).check(prog);
    assert!(full.complete && full.interleavings > 1);
}
