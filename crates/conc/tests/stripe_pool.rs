//! Dogfood: the synchronization skeleton of the sharded search driver
//! (`swapcons-sim::shard`), model-checked on the interleaving checker.
//!
//! Two protocols from the driver are modeled on the shim types:
//!
//! * **striped dedup** — stripes are independent lock-protected sets
//!   (`key % S` selects the stripe); concurrent inserts of overlapping key
//!   sets must converge to exactly one copy per key, regardless of
//!   interleaving;
//! * **work-counter quiescence** — the driver's only termination signal is
//!   a counter of fully-processed items (the shim's `AtomicU64` counts up:
//!   `completed == total` plays the role of the driver's
//!   `pending == 0`). An observer that sees the counter at its total must
//!   also see every insert: the counter is bumped only *after* the stripe
//!   write is released, so quiescence happens-after all the work.
//!
//! A checker failure here (a lost insert, a duplicate, or an observer that
//! sees quiescence before the data) would be a soundness bug in the
//! sharded driver's termination protocol, caught at the model level.

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use swapcons_conc::shim::{spawn, AtomicU64, RwLock};
use swapcons_conc::{Checker, Mode};

/// Two workers race overlapping key sets into two stripes; a leader
/// observes the work counter once. Returns a packed summary of the final
/// stripe contents plus whether the leader witnessed quiescence (and, if
/// so, saw the full contents).
fn striped_insert_program() -> u64 {
    // Keys 2 and 4 land in stripe 0, key 3 in stripe 1; key 3 is contended
    // (both workers insert it), so dedup must drop exactly one copy.
    const WORK: [[u64; 2]; 2] = [[2, 3], [3, 4]];
    const TOTAL: u64 = 4;
    let stripes = Arc::new([RwLock::new(Vec::<u64>::new()), RwLock::new(Vec::new())]);
    let completed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let stripes = Arc::clone(&stripes);
            let completed = Arc::clone(&completed);
            spawn(move || {
                for k in WORK[w] {
                    {
                        let mut stripe = stripes[(k % 2) as usize].write().unwrap();
                        if !stripe.contains(&k) {
                            stripe.push(k);
                        }
                    }
                    // Mirrors the driver's `complete_one`: the item counts
                    // as done only after its stripe write is released.
                    completed.fetch_add(1, Ordering::AcqRel);
                }
            })
        })
        .collect();
    // The leader's quiescence probe: a single racy read of the counter.
    // Seeing `TOTAL` must imply seeing all three distinct keys.
    let observer = {
        let stripes = Arc::clone(&stripes);
        let completed = Arc::clone(&completed);
        spawn(move || {
            if completed.load(Ordering::Acquire) == TOTAL {
                let visible = stripes[0].read().unwrap().len() + stripes[1].read().unwrap().len();
                assert_eq!(visible, 3, "quiescence must imply all inserts visible");
                1u64
            } else {
                0
            }
        })
    };
    for h in workers {
        h.join().unwrap();
    }
    let observed = observer.join().unwrap();
    // Joined workers: the final contents are now interleaving-independent.
    let s0 = stripes[0].read().unwrap();
    let s1 = stripes[1].read().unwrap();
    assert_eq!(completed.load(Ordering::Acquire), TOTAL);
    assert_eq!(
        s0.iter().chain(s1.iter()).copied().collect::<HashSet<_>>(),
        HashSet::from([2, 3, 4]),
        "striped dedup lost or duplicated a key"
    );
    assert_eq!(s1.len(), 1, "contended key 3 must be inserted exactly once");
    observed * 1000 + s0.len() as u64 * 10 + s1.len() as u64
}

#[test]
fn striped_dedup_and_quiescence_hold_under_dpor() {
    let result = Checker::new(Mode::Dpor).check(striped_insert_program);
    assert!(
        result.failure.is_none(),
        "sharded-driver skeleton failed: {:?}",
        result.failure
    );
    assert!(result.complete, "DPOR must finish in budget");
    // Every final state is the same dedup set; only the observer's racy
    // counter read varies.
    let finals: HashSet<u64> = result.outcomes.iter().map(|o| o % 1000).collect();
    assert_eq!(finals, HashSet::from([21]), "{:?}", result.outcomes);
}

/// The fully-contended core of the same protocol, small enough for full
/// enumeration: both workers insert the *same* key into the single
/// relevant stripe, then bump the counter.
fn contended_key_program() -> u64 {
    let stripe = Arc::new(RwLock::new(Vec::<u64>::new()));
    let completed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let stripe = Arc::clone(&stripe);
            let completed = Arc::clone(&completed);
            spawn(move || {
                {
                    let mut guard = stripe.write().unwrap();
                    if !guard.contains(&7) {
                        guard.push(7);
                    }
                }
                completed.fetch_add(1, Ordering::AcqRel);
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }
    assert_eq!(completed.load(Ordering::Acquire), 2);
    let survivors = stripe.read().unwrap().len() as u64;
    survivors
}

#[test]
fn full_enumeration_agrees_with_dpor_on_the_contended_core() {
    let full = Checker::new(Mode::FullEnumeration).check(contended_key_program);
    let dpor = Checker::new(Mode::Dpor).check(contended_key_program);
    assert!(full.failure.is_none() && dpor.failure.is_none());
    assert!(full.complete && dpor.complete);
    // Exactly one copy of the contended key survives in every schedule.
    assert_eq!(
        full.outcomes.iter().collect::<HashSet<_>>(),
        [1].iter().collect()
    );
    assert_eq!(
        full.outcomes.iter().collect::<HashSet<_>>(),
        dpor.outcomes.iter().collect::<HashSet<_>>()
    );
    assert!(dpor.interleavings <= full.interleavings);
}
