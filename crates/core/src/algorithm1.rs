//! **Algorithm 1** of the paper: an obstruction-free, m-valued, k-set
//! agreement algorithm for `n` processes from exactly `n-k` swap objects.
//!
//! The algorithm is a race among the input values (Section 3). Each swap
//! object holds `⟨U, p⟩`: a lap-counter array plus the identifier of the
//! last swapper, initially `⟨[0,…,0], ⊥⟩`. A process `p` with input `v`
//! initializes its local lap counter `U` with `U[v] = 1` and repeats:
//!
//! 1. swap `⟨U, p⟩` into `B_1, …, B_{n-k}` one at a time (lines 6–12),
//!    setting a `conflict` flag whenever a response differs from `⟨U, p⟩`
//!    and merging any foreign lap counter into `U` component-wise;
//! 2. if the whole pass came back `⟨U, p⟩` everywhere (no conflict), `p` has
//!    **completed a lap**: it picks the leading value `v` (smallest index on
//!    ties, lines 14–15); if `v` leads every other value by ≥ 2 laps it
//!    decides `v` (line 16–18), otherwise it increments `U[v]` and races on
//!    (line 20).
//!
//! The implementation is a faithful transcription of the pseudocode into a
//! deterministic state machine ([`SwapKSet`] implementing
//! [`swapcons_sim::Protocol`]): one simulator step = one `Swap` operation =
//! one iteration of the inner loop. Lemma 8's bound — any solo execution
//! decides within `8(n-k)` swaps — is exposed as
//! [`SwapKSet::solo_step_bound`] and asserted in tests.

use swapcons_objects::{HistorylessOp, ObjectOp, ObjectSchema, Response};
use swapcons_sim::{KSetTask, ObjectId, ProcessId, Protocol, Renaming, Symmetry, Transition};

use crate::lap::{LapVec, SwapEntry};

/// Algorithm 1: obstruction-free m-valued k-set agreement from `n-k` swap
/// objects.
///
/// # Example
///
/// Obstruction-freedom promises termination once a process runs alone, so
/// the canonical schedule is: contention, then solo suffixes. Each solo run
/// decides within `8(n-k)` steps (Lemma 8).
///
/// ```
/// use swapcons_core::algorithm1::SwapKSet;
/// use swapcons_sim::{Configuration, runner, scheduler::SeededRandom};
///
/// let protocol = SwapKSet::new(4, 2, 3); // n=4, k=2, inputs from {0,1,2}
/// let mut config = Configuration::initial(&protocol, &[0, 1, 2, 2]).unwrap();
/// runner::run(&protocol, &mut config, &mut SeededRandom::new(1), 40).unwrap();
/// for pid in config.running() {
///     runner::solo_run(&protocol, &mut config, pid, protocol.solo_step_bound()).unwrap();
/// }
/// assert!(config.all_decided());
/// assert!(config.decided_values().len() <= 2); // k-agreement
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwapKSet {
    n: usize,
    k: usize,
    m: u64,
}

impl SwapKSet {
    /// An instance for `n` processes, agreement degree `k`, and inputs from
    /// `{0, …, m-1}`. Uses `n-k` swap objects.
    ///
    /// # Panics
    ///
    /// Panics if `n <= k` (the task is solved by everyone deciding their own
    /// input — see [`crate::pairs::PairsKSet`] for the degenerate cases) or
    /// `m == 0` or `k == 0`.
    pub fn new(n: usize, k: usize, m: u64) -> Self {
        assert!(k > 0, "k-set agreement requires k >= 1");
        assert!(
            n > k,
            "Algorithm 1 requires n > k; for n <= k decide inputs directly"
        );
        assert!(m > 0, "need at least one input value");
        SwapKSet { n, k, m }
    }

    /// `n`-process consensus (`k = 1`) with inputs from `{0, …, m-1}`,
    /// using `n-1` swap objects — the upper bound matching Theorem 10.
    pub fn consensus(n: usize, m: u64) -> Self {
        SwapKSet::new(n, 1, m)
    }

    /// Number of swap objects: `n - k`.
    pub fn space(&self) -> usize {
        self.n - self.k
    }

    /// Lemma 8's obstruction-freedom bound: any solo execution from any
    /// reachable configuration performs at most `8(n-k)` swap operations
    /// before deciding.
    pub fn solo_step_bound(&self) -> usize {
        8 * (self.n - self.k)
    }
}

/// Local state of a process running Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Alg1State {
    /// The process's identity `p` (swapped into objects alongside `U`).
    pub pid: ProcessId,
    /// The local lap counter `U[0, …, m-1]`.
    pub u: LapVec,
    /// Index of the next object to swap (`i - 1` in the paper's 1-based
    /// loop on line 6).
    pub pos: usize,
    /// The `conflict` flag (line 5).
    pub conflict: bool,
}

impl Protocol for SwapKSet {
    type State = Alg1State;
    type Value = SwapEntry;

    fn name(&self) -> String {
        format!(
            "Algorithm 1: {}-process {}-valued {}-set agreement from {} swap objects",
            self.n,
            self.m,
            self.k,
            self.space()
        )
    }

    fn task(&self) -> KSetTask {
        KSetTask::new(self.n, self.k, self.m)
    }

    fn num_objects(&self) -> usize {
        self.space()
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::swap()
    }

    fn initial_value(&self, _obj: ObjectId) -> SwapEntry {
        SwapEntry::bot(self.m as usize)
    }

    fn initial_state(&self, pid: ProcessId, input: u64) -> Alg1State {
        // Lines 2–3: U ← [0,…,0]; U[v] ← 1. Line 5 (conflict ← False) is
        // local bookkeeping folded into the initial state.
        Alg1State {
            pid,
            u: LapVec::initial(self.m as usize, input),
            pos: 0,
            conflict: false,
        }
    }

    fn poised(&self, state: &Alg1State) -> (ObjectId, ObjectOp<SwapEntry>) {
        // Line 7: ⟨U', p'⟩ ← Swap(B_i, ⟨U, p⟩).
        (
            ObjectId(state.pos),
            HistorylessOp::Swap(SwapEntry::of(state.u.clone(), state.pid)).into(),
        )
    }

    fn observe(
        &self,
        mut state: Alg1State,
        response: Response<SwapEntry>,
    ) -> Transition<Alg1State> {
        let got = response.expect_value("swap returns the previous value");
        let mine = got.id == Some(state.pid) && got.laps == state.u;
        if !mine {
            // Line 9: conflict ← True.
            state.conflict = true;
            // Lines 10–12: merge a foreign lap counter.
            if got.laps != state.u {
                state.u.merge_max(&got.laps);
            }
        }
        state.pos += 1;
        if state.pos < self.space() {
            return Transition::Continue(state);
        }
        // End of the inner loop (line 12 → line 13).
        state.pos = 0;
        if state.conflict {
            // Restart the outer loop (conflict resets at line 5).
            state.conflict = false;
            return Transition::Continue(state);
        }
        // Lap completed: lines 14–20.
        let (v, _c) = state.u.leader();
        if state.u.leads_by(v as usize, 2) {
            // Lines 16–18.
            Transition::Decide(v)
        } else {
            // Line 20.
            state.u.increment(v as usize);
            Transition::Continue(state)
        }
    }

    // Every process runs identical code against the same object sequence, so
    // all n are interchangeable. Input values are NOT: line 15 breaks lap
    // ties toward the smallest value, so relabeling values changes which
    // value a tied racer backs — value symmetry would be unsound here.
    fn symmetry(&self) -> Symmetry {
        Symmetry::full_process(self.n)
    }

    fn rename_state(&self, state: &Alg1State, renaming: &Renaming) -> Alg1State {
        Alg1State {
            pid: renaming.pid(state.pid),
            u: state.u.clone(),
            pos: state.pos,
            conflict: state.conflict,
        }
    }

    fn rename_value(&self, _obj: ObjectId, value: &SwapEntry, renaming: &Renaming) -> SwapEntry {
        SwapEntry {
            laps: value.laps.clone(),
            id: value.id.map(|p| renaming.pid(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_sim::explore::ModelChecker;
    use swapcons_sim::runner::{self, solo_run_cloned};
    use swapcons_sim::scheduler::{ObstructionThenSolo, RoundRobin, SeededRandom};
    use swapcons_sim::Configuration;

    #[test]
    fn uses_exactly_n_minus_k_swap_objects() {
        for (n, k) in [(2, 1), (5, 1), (5, 2), (8, 3), (9, 8)] {
            let p = SwapKSet::new(n, k, (k + 1) as u64);
            assert_eq!(p.num_objects(), n - k);
            assert!(p.schemas().iter().all(|s| *s == ObjectSchema::swap()));
        }
    }

    #[test]
    #[should_panic(expected = "requires n > k")]
    fn rejects_n_le_k() {
        let _ = SwapKSet::new(3, 3, 4);
    }

    #[test]
    fn solo_run_decides_own_input_validity() {
        // A process running alone from the initial configuration must decide
        // its own input (validity + obstruction-freedom).
        for n in 2..=6 {
            let p = SwapKSet::consensus(n, 2);
            let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
            let config = Configuration::initial(&p, &inputs).unwrap();
            for (pid, &input) in inputs.iter().enumerate() {
                let (out, _) =
                    solo_run_cloned(&p, &config, ProcessId(pid), p.solo_step_bound()).unwrap();
                assert_eq!(out.decision, input, "solo {pid} of n={n}");
            }
        }
    }

    #[test]
    fn lemma8_solo_bound_from_initial() {
        // Lemma 8: at most 8(n-k) swaps in any solo execution.
        for (n, k) in [(3, 1), (4, 1), (4, 2), (6, 3), (7, 2)] {
            let p = SwapKSet::new(n, k, (k + 1) as u64);
            let inputs: Vec<u64> = (0..n).map(|i| (i as u64) % p.task().m).collect();
            let config = Configuration::initial(&p, &inputs).unwrap();
            for pid in 0..n {
                let (out, _) =
                    solo_run_cloned(&p, &config, ProcessId(pid), p.solo_step_bound()).unwrap();
                assert!(
                    out.steps <= p.solo_step_bound(),
                    "n={n} k={k} pid={pid}: {} > {}",
                    out.steps,
                    p.solo_step_bound()
                );
            }
        }
    }

    #[test]
    fn lemma8_solo_bound_from_perturbed_configurations() {
        // From *any* reachable configuration, a solo run decides within
        // 8(n-k) steps. Reach configurations by random contention first.
        for seed in 0..20 {
            let p = SwapKSet::new(4, 1, 2);
            let inputs = [0, 1, 0, 1];
            let mut config = Configuration::initial(&p, &inputs).unwrap();
            let mut sched = SeededRandom::new(seed);
            runner::run(&p, &mut config, &mut sched, 50).unwrap();
            for pid in config.running() {
                let (out, _) = solo_run_cloned(&p, &config, pid, p.solo_step_bound())
                    .unwrap_or_else(|e| panic!("seed {seed} {pid}: {e}"));
                assert!(out.steps <= p.solo_step_bound());
            }
        }
    }

    #[test]
    fn contention_then_sequential_solo_decides_everyone() {
        // Obstruction-freedom promises termination only once processes run
        // alone. Schedule: random contention, then each process in turn runs
        // solo until it decides (Lemma 8 bounds each solo run by 8(n-k)).
        for n in 2..=6 {
            for seed in 0..5 {
                let p = SwapKSet::consensus(n, 2);
                let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
                let mut config = Configuration::initial(&p, &inputs).unwrap();
                runner::run(&p, &mut config, &mut SeededRandom::new(seed), 10 * n).unwrap();
                for pid in config.running() {
                    let out = runner::solo_run(&p, &mut config, pid, p.solo_step_bound())
                        .unwrap_or_else(|e| panic!("n={n} seed={seed} {pid}: {e}"));
                    assert!(out.steps <= p.solo_step_bound());
                }
                assert!(config.all_decided());
                assert_eq!(
                    config.decided_values().len(),
                    1,
                    "agreement at n={n} seed={seed}"
                );
                let v = config.decided_values().into_iter().next().unwrap();
                assert!(inputs.contains(&v), "validity at n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn strict_lockstep_livelocks_but_stays_safe() {
        // Round-robin lockstep is the adversarial schedule that keeps an
        // obstruction-free algorithm from terminating: every pass conflicts,
        // no lap ever completes. Safety must nevertheless hold throughout.
        let p = SwapKSet::consensus(2, 2);
        let mut config = Configuration::initial(&p, &[0, 1]).unwrap();
        let out = runner::run(&p, &mut config, &mut RoundRobin::new(), 2_000).unwrap();
        assert!(!out.all_decided, "perfect lockstep at n=2 must livelock");
        assert!(p.task().check(&[0, 1], &config.decisions()).is_ok());
    }

    #[test]
    fn random_schedules_preserve_safety() {
        // Random contention then a solo survivor: everyone who decides
        // agrees within k values, all values valid.
        for seed in 0..30 {
            let p = SwapKSet::new(5, 2, 3);
            let inputs = [0, 1, 2, 1, 0];
            let mut config = Configuration::initial(&p, &inputs).unwrap();
            let mut sched = ObstructionThenSolo::new(200, ProcessId(seed as usize % 5), seed);
            runner::run(&p, &mut config, &mut sched, 5_000).unwrap();
            assert!(
                p.task().check(&inputs, &config.decisions()).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn model_check_n2_k1_bounded() {
        // Algorithm 1's reachable space is infinite (two duelling processes
        // grow laps forever), so exploration is depth-bounded: every
        // schedule prefix up to the cutoff is checked, including the solo
        // obstruction-freedom budget at every visited configuration.
        let p = SwapKSet::consensus(2, 2);
        let report = ModelChecker::new(30, 100_000)
            .with_solo_budget(p.solo_step_bound())
            .check_all_inputs(&p);
        assert!(report.passed(), "{report}");
        assert!(
            report.states > 100,
            "exploration should be nontrivial: {report}"
        );
    }

    #[test]
    fn model_check_n3_k2_bounded() {
        // n=3, k=2, m=3: one swap object, three racers.
        let p = SwapKSet::new(3, 2, 3);
        let report = ModelChecker::new(18, 150_000)
            .with_solo_budget(p.solo_step_bound())
            .check(&p, &[0, 1, 2]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn model_check_n3_k1_bounded() {
        // Unbounded laps make full reachability infinite; bounded-depth
        // exploration still covers every schedule prefix up to the cutoff.
        let p = SwapKSet::consensus(3, 2);
        let report = ModelChecker::new(24, 400_000).check(&p, &[0, 1, 1]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn two_process_duel_never_disagrees() {
        // Adversarial lockstep duel at n=2: alternate single steps forever;
        // check that no disagreement is ever reached and that whoever
        // decides, decides a valid input.
        let p = SwapKSet::consensus(2, 2);
        let mut config = Configuration::initial(&p, &[0, 1]).unwrap();
        let mut sched = RoundRobin::new();
        let out = runner::run(&p, &mut config, &mut sched, 10_000).unwrap();
        // Lockstep duel may or may not converge (obstruction-freedom makes
        // no promise under contention); safety must hold regardless.
        assert!(p.task().check(&[0, 1], &config.decisions()).is_ok());
        let _ = out;
    }

    #[test]
    fn symmetry_declaration_is_equivariant() {
        // Brute-force the equivariance contract: renaming commutes with
        // every step along random executions (process ids are embedded in
        // both states and swap entries, so this exercises both hooks).
        swapcons_sim::canon::assert_equivariant(&SwapKSet::consensus(3, 2), &[1, 1, 1], 12, 6);
        swapcons_sim::canon::assert_equivariant(&SwapKSet::consensus(3, 2), &[0, 1, 1], 12, 6);
        swapcons_sim::canon::assert_equivariant(&SwapKSet::new(4, 2, 3), &[0, 1, 2, 1], 10, 4);
    }

    #[test]
    fn reduced_model_check_same_verdict_3x_fewer_states() {
        // The acceptance row: at n=3 with unanimous inputs the run group is
        // the full S3, and almost every reachable configuration has a
        // trivial stabilizer — the quotient is close to 6x smaller. Both
        // searches are deterministic, so the counts are stable.
        let p = SwapKSet::consensus(3, 2);
        let full = ModelChecker::new(16, 400_000).check(&p, &[1, 1, 1]);
        let reduced = ModelChecker::new(16, 400_000)
            .with_symmetry_reduction()
            .check(&p, &[1, 1, 1]);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert_eq!(reduced.symmetry_group, 6);
        assert!(
            reduced.states * 3 <= full.states,
            "expected >=3x reduction: {} vs {}",
            full.states,
            reduced.states
        );
        // Mixed inputs: the group drops to the stabilizer of the input
        // assignment (order 2) — verdicts still agree, fewer states still.
        let full = ModelChecker::new(14, 400_000).check(&p, &[0, 1, 1]);
        let reduced = ModelChecker::new(14, 400_000)
            .with_symmetry_reduction()
            .check(&p, &[0, 1, 1]);
        assert!(full.same_verdict(&reduced));
        assert_eq!(reduced.symmetry_group, 2);
        assert!(reduced.states < full.states);
    }

    #[test]
    fn lap_lead_chaser_livelocks_the_race_but_safety_holds() {
        use swapcons_sim::scheduler::LapLeadChasing;
        // The adaptive adversary feeds every process the freshest foreign
        // entry: conflicts on every pass, no lap ever completes cleanly.
        for n in [2usize, 3, 4] {
            let p = SwapKSet::consensus(n, 2);
            let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
            let mut config = Configuration::initial(&p, &inputs).unwrap();
            let out = runner::run(&p, &mut config, &mut LapLeadChasing::new(), 3_000).unwrap();
            assert!(
                !out.all_decided,
                "the chaser must keep the race alive at n={n}"
            );
            assert!(p.task().check(&inputs, &config.decisions()).is_ok());
            // Obstruction-freedom recovers the moment the adversary stops.
            for pid in config.running() {
                runner::solo_run(&p, &mut config, pid, p.solo_step_bound()).unwrap();
            }
            assert!(config.all_decided());
            assert_eq!(config.decided_values().len(), 1, "agreement at n={n}");
        }
    }

    #[test]
    fn synthesized_adversary_reproduces_the_lap_lead_livelock() {
        use swapcons_sim::engine;
        use swapcons_sim::scheduler::{record_schedule, LapLeadChasing};
        use swapcons_sim::ObjectId;
        // The adversary-synthesis loop, pointed at Algorithm 1: maximize
        // total laps (local counters + shared entries) over configurations
        // where NOBODY has decided — the livelock region the hand-coded
        // lap-lead chaser lives in. The searched extremal schedule is not
        // hand-coded: it falls out of an exhaustive best-first search.
        let p = SwapKSet::consensus(2, 2);
        let inputs = [0u64, 1];
        let depth = 16;
        let objective = |proto: &SwapKSet, c: &swapcons_sim::Configuration<SwapKSet>| -> u64 {
            if c.decisions_iter().flatten().next().is_some() {
                return 0;
            }
            let local: u64 = (0..proto.num_processes())
                .filter_map(|i| c.state(ProcessId(i)))
                .map(|s| s.u.as_slice().iter().sum::<u64>())
                .sum();
            let shared: u64 = (0..proto.num_objects())
                .map(|i| c.value(ObjectId(i)).laps.as_slice().iter().sum::<u64>())
                .sum();
            local + shared
        };
        let report = engine::synthesize(&p, &inputs, depth, 200_000, objective);
        assert!(report.complete, "the depth-16 region fits the budgets");
        // Livelock, searched: laps grew well past the initial configuration
        // (objective 2 there) yet nobody decided.
        assert!(report.config.decided_values().is_empty());
        assert!(report.best_score > 2, "laps must grow: {report:?}");
        assert!(!report.schedule.is_empty());
        // The witness replays from the initial configuration.
        let initial = Configuration::initial(&p, &inputs).unwrap();
        let mut replay = initial.clone();
        runner::replay(&p, &mut replay, &report.schedule).unwrap();
        assert_eq!(replay, report.config, "extremal schedule replays");
        // The searched schedule is at least as adversarial as the
        // hand-coded chaser over the same horizon: the search space
        // includes every schedule the chaser could emit, so its maximum
        // dominates the chaser's endpoint.
        let (chaser_schedule, chaser_world) =
            record_schedule(&p, &initial, &mut LapLeadChasing::new(), depth);
        assert_eq!(chaser_schedule.len(), depth, "the chaser never decides");
        assert!(
            report.best_score >= objective(&p, &chaser_world),
            "searched {} must dominate the hand-coded chaser's {}",
            report.best_score,
            objective(&p, &chaser_world)
        );
        // Obstruction-freedom recovers from the extremal configuration the
        // moment the adversary stops.
        let mut rec = report.config.clone();
        for pid in rec.running() {
            runner::solo_run(&p, &mut rec, pid, p.solo_step_bound()).unwrap();
        }
        assert!(rec.all_decided());
        assert_eq!(rec.decided_values().len(), 1, "agreement after livelock");
    }

    #[test]
    fn observation2_complete_lap_requires_total_configuration() {
        // Drive p0 solo until it is about to complete a lap; every object
        // must then contain ⟨U, p0⟩ — the ⟨V,p⟩-total configuration of
        // Observation 2.
        let p = SwapKSet::consensus(3, 2);
        let mut config = Configuration::initial(&p, &[1, 0, 0]).unwrap();
        // p0 swaps both objects once: first pass has conflict=false and all
        // responses ⊥-ish (foreign), so it merges nothing but sees ids ≠ own.
        for _ in 0..p.space() {
            config.step(&p, ProcessId(0)).unwrap();
        }
        // After one full pass every object holds p0's entry.
        for obj in 0..p.space() {
            let e = config.value(ObjectId(obj));
            assert_eq!(e.id, Some(ProcessId(0)));
        }
    }

    #[test]
    fn conflict_flag_set_by_foreign_swaps() {
        let p = SwapKSet::consensus(3, 2);
        let mut config = Configuration::initial(&p, &[0, 1, 1]).unwrap();
        // p1 swaps B0 first; then p0 swaps B0 and receives p1's entry.
        config.step(&p, ProcessId(1)).unwrap();
        config.step(&p, ProcessId(0)).unwrap();
        let s = config.state(ProcessId(0)).unwrap();
        assert!(s.conflict, "p0 must flag the conflict");
        assert_eq!(s.u.as_slice(), &[1, 1], "p0 merged p1's lap counter");
    }
}
