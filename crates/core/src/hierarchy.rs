//! Consensus numbers, executable — the Herlihy-hierarchy context of the
//! paper's introduction.
//!
//! "An object has consensus number x if there is an x-process,
//! deterministic, wait-free consensus algorithm from instances of that
//! object and registers, but there is no such algorithm for more than x
//! processes. … It is impossible to solve wait-free consensus among n ≥ 3
//! processes using only historyless objects."
//!
//! This module witnesses both halves for the historyless class at small
//! scale:
//!
//! * [`TasConsensus`] — deterministic **wait-free 2-process** consensus from
//!   one test-and-set object plus two single-writer registers (the classic
//!   consensus-number-2 construction; a swap object achieves the same with
//!   zero registers, see [`crate::two_process`]).
//! * The impossibility side is *semi-decided* by the model checker:
//!   `tests::no_wait_free_three_process_consensus_within_bound` confirms
//!   that the natural 3-process generalization of these constructions
//!   violates wait-freedom (some schedule starves a process past any fixed
//!   step bound) — the hierarchy's collapse to obstruction-freedom is
//!   exactly why the paper studies obstruction-free algorithms, where
//!   Algorithm 1 solves n-process consensus from n-1 swap objects.

use swapcons_objects::{HistorylessOp, ObjectOp, ObjectSchema, Response};
use swapcons_sim::{
    KSetTask, ObjectId, ProcessId, Protocol, Renaming, SimValue, Symmetry, Transition,
};

/// Object values for [`TasConsensus`]: register contents or the TAS bit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TasValue {
    /// A proposal register: `None` until written.
    Proposal(Option<u64>),
    /// The test-and-set bit.
    Flag(bool),
}

impl SimValue for TasValue {
    fn domain_point(&self) -> Option<u64> {
        // The flag inhabits the TAS object's binary domain; proposal
        // registers are unbounded and need no domain point.
        match self {
            TasValue::Flag(b) => Some(u64::from(*b)),
            TasValue::Proposal(_) => None,
        }
    }
}

/// Deterministic wait-free 2-process consensus from one test-and-set object
/// and two single-writer proposal registers.
///
/// Protocol for process `i ∈ {0, 1}`: write your input to `REG[i]`; apply
/// test-and-set; if you **won**, decide your input; if you lost, read
/// `REG[1-i]` and decide that. Wait-free with exactly 3 own steps.
///
/// # Example
///
/// ```
/// use swapcons_core::hierarchy::TasConsensus;
/// use swapcons_sim::{Configuration, runner, scheduler::RoundRobin};
///
/// let p = TasConsensus;
/// let mut c = Configuration::initial(&p, &[4, 9]).unwrap();
/// let out = runner::run(&p, &mut c, &mut RoundRobin::new(), 10).unwrap();
/// assert!(out.all_decided);
/// assert_eq!(c.decided_values().len(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TasConsensus;

/// Phases of a [`TasConsensus`] process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TasPhase {
    /// About to publish the input in the own register.
    Publish,
    /// About to apply test-and-set.
    Contend,
    /// Lost the TAS: about to read the winner's register.
    ReadWinner,
}

/// State of a [`TasConsensus`] process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TasState {
    /// This process (0 or 1).
    pub pid: ProcessId,
    /// Its input.
    pub input: u64,
    /// Current phase.
    pub phase: TasPhase,
}

impl TasConsensus {
    /// Wait-freedom bound: three own steps.
    pub fn step_bound(&self) -> usize {
        3
    }
}

impl Protocol for TasConsensus {
    type State = TasState;
    type Value = TasValue;

    fn name(&self) -> String {
        "wait-free 2-process consensus from one TAS + two registers".into()
    }

    fn task(&self) -> KSetTask {
        KSetTask::new(2, 1, 16)
    }

    fn num_objects(&self) -> usize {
        // Objects 0, 1: proposal registers; object 2: the TAS.
        3
    }

    fn schema(&self, obj: ObjectId) -> ObjectSchema {
        if obj.index() < 2 {
            ObjectSchema::register()
        } else {
            ObjectSchema::test_and_set()
        }
    }

    fn initial_value(&self, obj: ObjectId) -> TasValue {
        if obj.index() < 2 {
            TasValue::Proposal(None)
        } else {
            TasValue::Flag(false)
        }
    }

    fn initial_state(&self, pid: ProcessId, input: u64) -> TasState {
        TasState {
            pid,
            input,
            phase: TasPhase::Publish,
        }
    }

    fn poised(&self, state: &TasState) -> (ObjectId, ObjectOp<TasValue>) {
        match state.phase {
            TasPhase::Publish => (
                ObjectId(state.pid.index()),
                HistorylessOp::Write(TasValue::Proposal(Some(state.input))).into(),
            ),
            // Test-and-set = swap `true` into the flag; the response tells
            // us whether we won.
            TasPhase::Contend => (
                ObjectId(2),
                HistorylessOp::Swap(TasValue::Flag(true)).into(),
            ),
            TasPhase::ReadWinner => (ObjectId(1 - state.pid.index()), ObjectOp::read()),
        }
    }

    fn observe(&self, mut state: TasState, response: Response<TasValue>) -> Transition<TasState> {
        match state.phase {
            TasPhase::Publish => {
                state.phase = TasPhase::Contend;
                Transition::Continue(state)
            }
            TasPhase::Contend => {
                match response.expect_value("swap returns the previous flag") {
                    TasValue::Flag(false) => Transition::Decide(state.input), // won
                    TasValue::Flag(true) => {
                        state.phase = TasPhase::ReadWinner;
                        Transition::Continue(state)
                    }
                    TasValue::Proposal(_) => unreachable!("object 2 is the flag"),
                }
            }
            TasPhase::ReadWinner => {
                match response.expect_value("read returns the register") {
                    TasValue::Proposal(Some(v)) => Transition::Decide(v),
                    // The winner published before contending, so its
                    // proposal is always visible to the loser.
                    TasValue::Proposal(None) => {
                        unreachable!("winner publishes before winning the TAS")
                    }
                    TasValue::Flag(_) => unreachable!("objects 0/1 are registers"),
                }
            }
        }
    }

    // Swapping the two processes is a symmetry *provided* their
    // single-writer proposal registers swap with them (`rename_object`);
    // the TAS flag is role-free and stays put. Inputs are only published
    // and copied, never inspected — full value symmetry.
    fn symmetry(&self) -> Symmetry {
        Symmetry::full_process(2).with_interchangeable_values()
    }

    fn rename_state(&self, state: &TasState, renaming: &Renaming) -> TasState {
        TasState {
            pid: renaming.pid(state.pid),
            input: renaming.value(state.input),
            phase: state.phase.clone(),
        }
    }

    fn rename_value(&self, _obj: ObjectId, value: &TasValue, renaming: &Renaming) -> TasValue {
        match value {
            TasValue::Proposal(v) => TasValue::Proposal(v.map(|x| renaming.value(x))),
            // The flag is a control bit, not an input value.
            TasValue::Flag(b) => TasValue::Flag(*b),
        }
    }

    fn rename_object(&self, obj: ObjectId, renaming: &Renaming) -> ObjectId {
        if obj.index() < 2 {
            ObjectId(renaming.pid(ProcessId(obj.index())).index())
        } else {
            obj
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_sim::explore::ModelChecker;
    use swapcons_sim::runner::solo_run_cloned;
    use swapcons_sim::Configuration;

    #[test]
    fn exhaustively_correct_and_wait_free() {
        // Full state space at n=2 is finite: exhaustive proof of agreement,
        // validity, and 3-step solo termination from every reachable state.
        let p = TasConsensus;
        let report = ModelChecker::new(12, 50_000)
            .with_solo_budget(p.step_bound())
            .check(&p, &[3, 8]);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn all_input_pairs() {
        let p = TasConsensus;
        let report = ModelChecker::new(12, 500_000)
            .with_solo_budget(3)
            .check_all_inputs(&p);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn symmetry_declaration_is_equivariant() {
        // Exercises all three hooks at once: pid-embedded states, the
        // proposal/flag value split, and the single-writer object swap.
        swapcons_sim::canon::assert_equivariant(&TasConsensus, &[3, 8], 6, 8);
        swapcons_sim::canon::assert_equivariant(&TasConsensus, &[5, 5], 6, 8);
    }

    #[test]
    fn reduced_check_matches_full_across_all_inputs() {
        let p = TasConsensus;
        let full = ModelChecker::new(12, 500_000)
            .with_solo_budget(3)
            .check_all_inputs(&p);
        let reduced = ModelChecker::new(12, 500_000)
            .with_solo_budget(3)
            .with_symmetry_reduction()
            .check_all_inputs(&p);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert!(reduced.proves_safety());
        assert!(reduced.states * 3 <= full.states, "{full} vs {reduced}");
    }

    #[test]
    fn wait_freedom_is_exactly_three_steps() {
        let p = TasConsensus;
        let c = Configuration::initial(&p, &[5, 6]).unwrap();
        for pid in 0..2 {
            let (out, _) = solo_run_cloned(&p, &c, ProcessId(pid), 3).unwrap();
            assert!(out.steps <= 3);
            assert_eq!(out.decision, [5, 6][pid]);
        }
    }

    #[test]
    fn loser_adopts_winner_value() {
        let p = TasConsensus;
        let mut c = Configuration::initial(&p, &[5, 6]).unwrap();
        // p0 runs to completion first (publish, win TAS, decide 5).
        let (out, mut c2) = solo_run_cloned(&p, &c, ProcessId(0), 3).unwrap();
        assert_eq!(out.decision, 5);
        // p1 now loses the TAS and must adopt 5.
        let out = swapcons_sim::runner::solo_run(&p, &mut c2, ProcessId(1), 3).unwrap();
        assert_eq!(out.decision, 5);
        let _ = &mut c;
    }

    #[test]
    fn space_is_three_objects() {
        // One TAS + 2 registers: the intro's hierarchy example uses
        // registers freely; the paper's own 2-process construction
        // (crate::two_process) needs just ONE swap object and no registers —
        // an executable illustration of swap's extra power.
        assert_eq!(TasConsensus.schemas().len(), 3);
        assert_eq!(
            swapcons_sim::testing::TwoProcessSwapConsensus
                .schemas()
                .len(),
            1
        );
    }
}
