//! Lap counters: the racing state of Algorithm 1.
//!
//! Every process keeps a local lap counter `U[0..m-1]` recording the highest
//! lap it has observed for each input value; the shared swap objects each
//! hold a lap counter plus the identifier of the process that last swapped
//! (`⟨U, p⟩`). The correctness proofs are phrased in terms of the
//! **domination** partial order (`V ⪯ V'` iff `V[j] ≤ V'[j]` for all `j`,
//! Section 3), which [`LapVec`] implements together with the component-wise
//! max merge of lines 11–12 and the leader selection of lines 14–16.

use std::fmt;

use serde::{Deserialize, Serialize};
use swapcons_sim::{ProcessId, SimValue};

/// Components held inline (no heap allocation) — covers every realistic
/// race: Algorithm 1 instances with `m ≤ 8` input values.
const LAP_INLINE: usize = 8;

/// Storage behind a [`LapVec`]: inline array for `m ≤ 8`, heap vector
/// beyond. The representation is canonical — a given length always uses the
/// same variant — so equality and hashing go through the slice view. (A
/// smaller inline variant for `m ≤ 4` would buy nothing: the enum is sized
/// by its largest variant.)
#[derive(Clone, Serialize, Deserialize)]
enum LapStore {
    /// `m ≤ LAP_INLINE` components, stored inline.
    Inline {
        /// Number of live components.
        len: u8,
        /// Component storage; `buf[len..]` is unused and always zero.
        buf: [u64; LAP_INLINE],
    },
    /// `m > LAP_INLINE` components, heap-allocated.
    Heap(Vec<u64>),
}

/// A lap counter: one lap count per input value in `{0, …, m-1}`.
///
/// Every step of Algorithm 1 clones one of these into a swap operation and
/// merges one out of the response, so counters with `m ≤ 8` live entirely
/// inline: cloning is a memcpy and [`LapVec::merge_max`] allocates nothing.
///
/// # Example
///
/// ```
/// use swapcons_core::lap::LapVec;
///
/// let mut u = LapVec::zeros(3);
/// u.set(1, 1);                 // input 1 starts on lap 1 (line 3)
/// assert_eq!(u.leader(), (1, 1));
/// assert!(!u.leads_by(1, 2));  // not yet 2 laps ahead
/// u.increment(1);
/// u.increment(1);
/// assert!(u.leads_by(1, 2));   // line 16's decision condition
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct LapVec {
    laps: LapStore,
}

impl PartialEq for LapVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for LapVec {}

impl std::hash::Hash for LapVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the slice view (identical to the old `Vec<u64>` hashing), so
        // the representation split is invisible to hashed collections.
        self.as_slice().hash(state);
    }
}

impl LapVec {
    /// The all-zero lap counter of length `m` (line 2 of Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`; a race needs at least one value.
    pub fn zeros(m: usize) -> Self {
        assert!(m > 0, "lap counters need at least one component");
        LapVec {
            laps: if m <= LAP_INLINE {
                LapStore::Inline {
                    len: m as u8,
                    buf: [0; LAP_INLINE],
                }
            } else {
                LapStore::Heap(vec![0; m])
            },
        }
    }

    /// A lap counter holding the given components.
    ///
    /// # Panics
    ///
    /// Panics if `laps` is empty.
    pub fn from_slice(laps: &[u64]) -> Self {
        let mut u = LapVec::zeros(laps.len());
        u.as_mut_slice().copy_from_slice(laps);
        u
    }

    /// Whether the components live inline (no heap allocation) — true
    /// exactly when `m ≤ 8`. Exercised by the representation tests.
    #[cfg(test)]
    fn is_inline(&self) -> bool {
        !matches!(self.laps, LapStore::Heap(_))
    }

    fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.laps {
            LapStore::Inline { len, buf } => &mut buf[..*len as usize],
            LapStore::Heap(v) => v,
        }
    }

    /// The initial local lap counter of a process with input `v`: all zeros
    /// except `U[v] = 1` (lines 2–3).
    ///
    /// # Panics
    ///
    /// Panics if `v >= m`.
    pub fn initial(m: usize, v: u64) -> Self {
        let mut u = LapVec::zeros(m);
        u.set(v as usize, 1);
        u
    }

    /// Number of components (`m`).
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the counter has zero components (never true for constructed
    /// counters; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The lap count of value `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn get(&self, j: usize) -> u64 {
        self.as_slice()[j]
    }

    /// Set the lap count of value `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set(&mut self, j: usize, laps: u64) {
        self.as_mut_slice()[j] = laps;
    }

    /// Increment the lap count of value `j` (line 20).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn increment(&mut self, j: usize) {
        self.as_mut_slice()[j] += 1;
    }

    /// Domination: `self ⪯ other` iff every component of `self` is at most
    /// the corresponding component of `other` (Section 3's `V ⪯ V'`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ (counters from different races).
    pub fn dominated_by(&self, other: &LapVec) -> bool {
        assert_eq!(self.len(), other.len(), "lap counters of different m");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .all(|(a, b)| a <= b)
    }

    /// Merge: set every component to the max of the two counters
    /// (lines 11–12). Allocation-free: the merge writes through the slice
    /// view whatever the representation.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge_max(&mut self, other: &LapVec) {
        assert_eq!(self.len(), other.len(), "lap counters of different m");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a = (*a).max(*b);
        }
    }

    /// The leading value and its lap: `c = max(U)`, `v = min{ j : U[j] = c }`
    /// (lines 14–15; ties broken toward the smallest value).
    pub fn leader(&self) -> (u64, u64) {
        let laps = self.as_slice();
        let c = *laps.iter().max().expect("nonempty");
        let v = laps.iter().position(|&x| x == c).expect("max exists") as u64;
        (v, c)
    }

    /// Line 16's decision test: does value `v` lead every other value by at
    /// least `margin` laps (`U[v] ≥ U[j] + margin` for all `j ≠ v`)?
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn leads_by(&self, v: usize, margin: u64) -> bool {
        let laps = self.as_slice();
        let lead = laps[v];
        laps.iter()
            .enumerate()
            .all(|(j, &x)| j == v || lead >= x.saturating_add(margin))
    }

    /// The raw components.
    pub fn as_slice(&self) -> &[u64] {
        match &self.laps {
            LapStore::Inline { len, buf } => &buf[..*len as usize],
            LapStore::Heap(v) => v,
        }
    }
}

impl fmt::Display for LapVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for LapVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The value stored in each of Algorithm 1's swap objects: a lap counter
/// plus the identifier of the last swapper — the paper's `⟨U, p⟩`, with
/// `id = None` playing the role of the initial `⊥`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwapEntry {
    /// The lap-counter field (an array of `m` values, all initially 0).
    pub laps: LapVec,
    /// The identifier field (initially `⊥` = `None`).
    pub id: Option<ProcessId>,
}

impl SwapEntry {
    /// The initial object value `⟨[0,…,0], ⊥⟩`.
    pub fn bot(m: usize) -> Self {
        SwapEntry {
            laps: LapVec::zeros(m),
            id: None,
        }
    }

    /// The entry `⟨laps, p⟩` a process swaps in (line 7).
    pub fn of(laps: LapVec, pid: ProcessId) -> Self {
        SwapEntry {
            laps,
            id: Some(pid),
        }
    }
}

impl SimValue for SwapEntry {}

impl fmt::Debug for SwapEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.id {
            Some(p) => write!(f, "⟨{},{p}⟩", self.laps),
            None => write!(f, "⟨{},⊥⟩", self.laps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_initial() {
        let z = LapVec::zeros(3);
        assert_eq!(z.as_slice(), &[0, 0, 0]);
        let u = LapVec::initial(3, 2);
        assert_eq!(u.as_slice(), &[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_length_rejected() {
        let _ = LapVec::zeros(0);
    }

    #[test]
    fn small_counters_live_inline_large_spill() {
        for m in 1..=8 {
            assert!(LapVec::zeros(m).is_inline(), "m={m} must be heap-free");
        }
        assert!(!LapVec::zeros(9).is_inline());
        assert!(!LapVec::zeros(32).is_inline());
    }

    #[test]
    fn representations_agree_across_the_boundary() {
        // The same logical operations on an inline (m=8) and a heap (m=9)
        // counter behave identically; equality and hashing see only the
        // slice view.
        for m in [8usize, 9] {
            let mut u = LapVec::initial(m, 2);
            let mut w = LapVec::zeros(m);
            w.set(m - 1, 7);
            u.merge_max(&w);
            assert_eq!(u.get(2), 1);
            assert_eq!(u.get(m - 1), 7);
            assert_eq!(u.leader(), ((m - 1) as u64, 7));
            assert!(u.leads_by(m - 1, 2));
            assert_eq!(u, LapVec::from_slice(u.as_slice()), "round-trips");
        }
    }

    #[test]
    fn hash_matches_slice_hash() {
        // The manual Hash impl must keep hashing the slice view, or every
        // hashed collection of configurations would silently change.
        fn h<T: std::hash::Hash>(t: &T) -> u64 {
            use std::hash::Hasher;
            let mut s = std::collections::hash_map::DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        }
        let u = LapVec::from_slice(&[3, 1, 4]);
        assert_eq!(h(&u), h(&vec![3u64, 1, 4]), "same as Vec<u64> hashing");
        assert_eq!(h(&u), h(&u.clone()));
    }

    #[test]
    fn from_slice_copies_components() {
        let u = LapVec::from_slice(&[5, 0, 2]);
        assert_eq!(u.as_slice(), &[5, 0, 2]);
        let big: Vec<u64> = (0..12).collect();
        assert_eq!(LapVec::from_slice(&big).as_slice(), big.as_slice());
    }

    #[test]
    fn domination_is_a_partial_order() {
        let a = LapVec::from_slice(&[1, 2, 3]);
        let b = LapVec::from_slice(&[2, 2, 4]);
        let c = LapVec::from_slice(&[3, 1, 5]);
        // Reflexive.
        assert!(a.dominated_by(&a));
        // a ⪯ b but not b ⪯ a (antisymmetry on distinct elements).
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        // Incomparable pair.
        assert!(!b.dominated_by(&c));
        assert!(!c.dominated_by(&b));
    }

    #[test]
    fn merge_max_is_least_upper_bound() {
        let mut a = LapVec::from_slice(&[1, 5, 0]);
        let b = LapVec::from_slice(&[3, 2, 0]);
        a.merge_max(&b);
        assert_eq!(a.as_slice(), &[3, 5, 0]);
        // The merge dominates both operands.
        assert!(b.dominated_by(&a));
        assert!(LapVec::from_slice(&[1, 5, 0]).dominated_by(&a));
    }

    #[test]
    fn leader_breaks_ties_to_smallest_value() {
        let u = LapVec::from_slice(&[4, 7, 7]);
        assert_eq!(
            u.leader(),
            (1, 7),
            "value 1 beats value 2 on ties (line 15)"
        );
        let z = LapVec::zeros(2);
        assert_eq!(z.leader(), (0, 0));
    }

    #[test]
    fn leads_by_margin() {
        let u = LapVec::from_slice(&[5, 3, 2]);
        assert!(u.leads_by(0, 2));
        assert!(!u.leads_by(0, 3));
        assert!(!u.leads_by(1, 1), "value 1 is behind value 0");
        // Single-value race trivially leads.
        assert!(LapVec::zeros(1).leads_by(0, 2));
    }

    #[test]
    fn observation3_local_counters_only_grow() {
        // A process only modifies U via merge_max and increment; both are
        // monotone w.r.t. domination (Observation 3).
        let mut u = LapVec::initial(3, 0);
        let before = u.clone();
        u.merge_max(&LapVec::from_slice(&[0, 4, 1]));
        assert!(before.dominated_by(&u));
        let before = u.clone();
        u.increment(1);
        assert!(before.dominated_by(&u));
    }

    #[test]
    fn entry_initial_is_bot() {
        let e = SwapEntry::bot(2);
        assert_eq!(e.id, None);
        assert_eq!(e.laps, LapVec::zeros(2));
        assert_eq!(format!("{e:?}"), "⟨[0,0],⊥⟩");
    }

    #[test]
    fn entry_of_carries_identity() {
        let e = SwapEntry::of(LapVec::initial(2, 1), ProcessId(3));
        assert_eq!(e.id, Some(ProcessId(3)));
        assert_eq!(format!("{e:?}"), "⟨[0,1],p3⟩");
    }

    #[test]
    #[should_panic(expected = "different m")]
    fn mixing_lengths_panics() {
        let a = LapVec::zeros(2);
        let b = LapVec::zeros(3);
        let _ = a.dominated_by(&b);
    }
}
