//! Lap counters: the racing state of Algorithm 1.
//!
//! Every process keeps a local lap counter `U[0..m-1]` recording the highest
//! lap it has observed for each input value; the shared swap objects each
//! hold a lap counter plus the identifier of the process that last swapped
//! (`⟨U, p⟩`). The correctness proofs are phrased in terms of the
//! **domination** partial order (`V ⪯ V'` iff `V[j] ≤ V'[j]` for all `j`,
//! Section 3), which [`LapVec`] implements together with the component-wise
//! max merge of lines 11–12 and the leader selection of lines 14–16.

use std::fmt;

use serde::{Deserialize, Serialize};
use swapcons_sim::{ProcessId, SimValue};

/// A lap counter: one lap count per input value in `{0, …, m-1}`.
///
/// # Example
///
/// ```
/// use swapcons_core::lap::LapVec;
///
/// let mut u = LapVec::zeros(3);
/// u.set(1, 1);                 // input 1 starts on lap 1 (line 3)
/// assert_eq!(u.leader(), (1, 1));
/// assert!(!u.leads_by(1, 2));  // not yet 2 laps ahead
/// u.increment(1);
/// u.increment(1);
/// assert!(u.leads_by(1, 2));   // line 16's decision condition
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LapVec {
    laps: Vec<u64>,
}

impl LapVec {
    /// The all-zero lap counter of length `m` (line 2 of Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`; a race needs at least one value.
    pub fn zeros(m: usize) -> Self {
        assert!(m > 0, "lap counters need at least one component");
        LapVec { laps: vec![0; m] }
    }

    /// The initial local lap counter of a process with input `v`: all zeros
    /// except `U[v] = 1` (lines 2–3).
    ///
    /// # Panics
    ///
    /// Panics if `v >= m`.
    pub fn initial(m: usize, v: u64) -> Self {
        let mut u = LapVec::zeros(m);
        u.set(v as usize, 1);
        u
    }

    /// Number of components (`m`).
    pub fn len(&self) -> usize {
        self.laps.len()
    }

    /// Whether the counter has zero components (never true for constructed
    /// counters; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.laps.is_empty()
    }

    /// The lap count of value `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn get(&self, j: usize) -> u64 {
        self.laps[j]
    }

    /// Set the lap count of value `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set(&mut self, j: usize, laps: u64) {
        self.laps[j] = laps;
    }

    /// Increment the lap count of value `j` (line 20).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn increment(&mut self, j: usize) {
        self.laps[j] += 1;
    }

    /// Domination: `self ⪯ other` iff every component of `self` is at most
    /// the corresponding component of `other` (Section 3's `V ⪯ V'`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ (counters from different races).
    pub fn dominated_by(&self, other: &LapVec) -> bool {
        assert_eq!(self.len(), other.len(), "lap counters of different m");
        self.laps.iter().zip(&other.laps).all(|(a, b)| a <= b)
    }

    /// Merge: set every component to the max of the two counters
    /// (lines 11–12).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge_max(&mut self, other: &LapVec) {
        assert_eq!(self.len(), other.len(), "lap counters of different m");
        for (a, b) in self.laps.iter_mut().zip(&other.laps) {
            *a = (*a).max(*b);
        }
    }

    /// The leading value and its lap: `c = max(U)`, `v = min{ j : U[j] = c }`
    /// (lines 14–15; ties broken toward the smallest value).
    pub fn leader(&self) -> (u64, u64) {
        let c = *self.laps.iter().max().expect("nonempty");
        let v = self.laps.iter().position(|&x| x == c).expect("max exists") as u64;
        (v, c)
    }

    /// Line 16's decision test: does value `v` lead every other value by at
    /// least `margin` laps (`U[v] ≥ U[j] + margin` for all `j ≠ v`)?
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn leads_by(&self, v: usize, margin: u64) -> bool {
        let lead = self.laps[v];
        self.laps
            .iter()
            .enumerate()
            .all(|(j, &x)| j == v || lead >= x.saturating_add(margin))
    }

    /// The raw components.
    pub fn as_slice(&self) -> &[u64] {
        &self.laps
    }
}

impl fmt::Display for LapVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.laps.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for LapVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The value stored in each of Algorithm 1's swap objects: a lap counter
/// plus the identifier of the last swapper — the paper's `⟨U, p⟩`, with
/// `id = None` playing the role of the initial `⊥`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwapEntry {
    /// The lap-counter field (an array of `m` values, all initially 0).
    pub laps: LapVec,
    /// The identifier field (initially `⊥` = `None`).
    pub id: Option<ProcessId>,
}

impl SwapEntry {
    /// The initial object value `⟨[0,…,0], ⊥⟩`.
    pub fn bot(m: usize) -> Self {
        SwapEntry {
            laps: LapVec::zeros(m),
            id: None,
        }
    }

    /// The entry `⟨laps, p⟩` a process swaps in (line 7).
    pub fn of(laps: LapVec, pid: ProcessId) -> Self {
        SwapEntry {
            laps,
            id: Some(pid),
        }
    }
}

impl SimValue for SwapEntry {}

impl fmt::Debug for SwapEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.id {
            Some(p) => write!(f, "⟨{},{p}⟩", self.laps),
            None => write!(f, "⟨{},⊥⟩", self.laps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_initial() {
        let z = LapVec::zeros(3);
        assert_eq!(z.as_slice(), &[0, 0, 0]);
        let u = LapVec::initial(3, 2);
        assert_eq!(u.as_slice(), &[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_length_rejected() {
        let _ = LapVec::zeros(0);
    }

    #[test]
    fn domination_is_a_partial_order() {
        let a = LapVec {
            laps: vec![1, 2, 3],
        };
        let b = LapVec {
            laps: vec![2, 2, 4],
        };
        let c = LapVec {
            laps: vec![3, 1, 5],
        };
        // Reflexive.
        assert!(a.dominated_by(&a));
        // a ⪯ b but not b ⪯ a (antisymmetry on distinct elements).
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        // Incomparable pair.
        assert!(!b.dominated_by(&c));
        assert!(!c.dominated_by(&b));
    }

    #[test]
    fn merge_max_is_least_upper_bound() {
        let mut a = LapVec {
            laps: vec![1, 5, 0],
        };
        let b = LapVec {
            laps: vec![3, 2, 0],
        };
        a.merge_max(&b);
        assert_eq!(a.as_slice(), &[3, 5, 0]);
        // The merge dominates both operands.
        assert!(b.dominated_by(&a));
        assert!(LapVec {
            laps: vec![1, 5, 0]
        }
        .dominated_by(&a));
    }

    #[test]
    fn leader_breaks_ties_to_smallest_value() {
        let u = LapVec {
            laps: vec![4, 7, 7],
        };
        assert_eq!(
            u.leader(),
            (1, 7),
            "value 1 beats value 2 on ties (line 15)"
        );
        let z = LapVec::zeros(2);
        assert_eq!(z.leader(), (0, 0));
    }

    #[test]
    fn leads_by_margin() {
        let u = LapVec {
            laps: vec![5, 3, 2],
        };
        assert!(u.leads_by(0, 2));
        assert!(!u.leads_by(0, 3));
        assert!(!u.leads_by(1, 1), "value 1 is behind value 0");
        // Single-value race trivially leads.
        assert!(LapVec::zeros(1).leads_by(0, 2));
    }

    #[test]
    fn observation3_local_counters_only_grow() {
        // A process only modifies U via merge_max and increment; both are
        // monotone w.r.t. domination (Observation 3).
        let mut u = LapVec::initial(3, 0);
        let before = u.clone();
        u.merge_max(&LapVec {
            laps: vec![0, 4, 1],
        });
        assert!(before.dominated_by(&u));
        let before = u.clone();
        u.increment(1);
        assert!(before.dominated_by(&u));
    }

    #[test]
    fn entry_initial_is_bot() {
        let e = SwapEntry::bot(2);
        assert_eq!(e.id, None);
        assert_eq!(e.laps, LapVec::zeros(2));
        assert_eq!(format!("{e:?}"), "⟨[0,0],⊥⟩");
    }

    #[test]
    fn entry_of_carries_identity() {
        let e = SwapEntry::of(LapVec::initial(2, 1), ProcessId(3));
        assert_eq!(e.id, Some(ProcessId(3)));
        assert_eq!(format!("{e:?}"), "⟨[0,1],p3⟩");
    }

    #[test]
    #[should_panic(expected = "different m")]
    fn mixing_lengths_panics() {
        let a = LapVec::zeros(2);
        let b = LapVec::zeros(3);
        let _ = a.dominated_by(&b);
    }
}
