//! The primary contribution of *The Space Complexity of Consensus from Swap*
//! (Sean Ovens, PODC 2022), implemented and executable.
//!
//! * [`algorithm1`] — **Algorithm 1**: obstruction-free, m-valued, k-set
//!   agreement for `n` processes from exactly `n-k` swap objects (the
//!   paper's upper bound, matching the `⌈n/k⌉-1` lower bound of Theorem 10
//!   at `k = 1`). Implemented as a deterministic [`swapcons_sim::Protocol`],
//!   so it can be run under any schedule, model-checked, and attacked by the
//!   lower-bound adversaries.
//! * [`lap`] — lap counters (the algorithm's "race" state) with the
//!   domination partial order `⪯` the correctness proofs are phrased in.
//! * [`two_process`] — the paper's wait-free 2-process consensus from a
//!   single swap object (Section 1).
//! * [`pairs`] — the paper's wait-free k-set agreement from `n-k` swap
//!   objects for `k ≥ ⌈n/2⌉` (the Chaudhuri–Reiners pairing construction of
//!   Section 1).
//! * [`threaded`] — real multi-threaded implementations of all of the above
//!   on lock-free [`swapcons_objects::atomic::AtomicSwap`] objects.
//!
//! # Example: model-check Algorithm 1 exhaustively at n=3, k=1
//!
//! ```
//! use swapcons_core::algorithm1::SwapKSet;
//! use swapcons_sim::explore::ModelChecker;
//! use swapcons_sim::Protocol;
//!
//! let protocol = SwapKSet::new(3, 1, 2);
//! assert_eq!(protocol.num_objects(), 2); // n-k swap objects
//! let report = ModelChecker::new(40, 60_000).check(&protocol, &[0, 1, 1]);
//! assert!(report.passed(), "{report}");
//! ```

// Unsafe-code audit (PR 6): the algorithms are pure safe Rust (the unsafe pointer handoff lives in swapcons-objects, behind audited SAFETY comments).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithm1;
pub mod hierarchy;
pub mod lap;
pub mod onebit;
pub mod pairs;
pub mod threaded;
pub mod two_process;

pub use algorithm1::SwapKSet;
pub use onebit::OneBitSwapConsensus;
pub use lap::{LapVec, SwapEntry};
