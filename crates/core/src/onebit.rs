//! Wait-free 2-process binary consensus from **one-bit** readable swap
//! objects — the consensus-from-swap workload used to validate the derived
//! object composition layer end to end.
//!
//! [`OneBitSwapConsensus`] is the Section 1 racing idea restated over
//! *binary* objects so that the very same protocol runs on two stacks:
//!
//! * **native** — three atomic readable binary swap objects; and
//! * **derived** — each object replaced by Aspnes's one-bit swap built from
//!   a max register and test-and-set bits
//!   ([`swapcons_objects::AspnesOneBitSwap`]), flattened onto the base set
//!   by [`swapcons_sim::LayeredProtocol`] (use
//!   [`OneBitSwapConsensus::derived`]).
//!
//! Object layout: `R` (object `0`) is the race object, initially `0`;
//! `A_p` (object `1 + p`) is process `p`'s announcement slot, initially
//! `0`. Each process **announces** by swapping its input into `A_p`, then
//! **races** by swapping `1` into `R`. The response `0` means it got there
//! first — it decides its own input. The response `1` means the other
//! process won the race; since announcing precedes racing in program order,
//! the winner's announcement is already in place, so the loser reads
//! `A_{1-p}` and decides what it finds.
//!
//! Model checking both stacks over *all* binary input vectors must produce
//! identical verdicts ([`swapcons_sim::explore::CheckReport::same_verdict`])
//! — pinned in this module's tests and in the `fig_explore` benchmark gate.

use swapcons_objects::{AspnesOneBitSwap, HistorylessOp, ObjectOp, ObjectSchema, Response};
use swapcons_sim::{
    KSetTask, LayeredProtocol, ObjectId, ProcessId, Protocol, Renaming, Symmetry, Transition,
};

/// Wait-free 2-process binary consensus from three one-bit readable swap
/// objects. See the module docs for the algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OneBitSwapConsensus;

/// Where a process stands in the announce → race → read-peer pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OneBitPhase {
    /// Swap the input into the own announcement slot.
    Announce,
    /// Swap `1` into the race object.
    Race,
    /// Lost the race: read the winner's announcement.
    ReadPeer,
}

/// Process state: identity, input bit, and pipeline phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OneBitState {
    /// The process id (selects the announcement slot and the peer's).
    pub pid: usize,
    /// The process's input bit.
    pub input: u64,
    /// Pipeline phase.
    pub phase: OneBitPhase,
}

impl OneBitSwapConsensus {
    /// The alternation budget each derived object needs: the race object
    /// sees two `Swap(1)` operations but only the first alternates (the
    /// second takes the invisible fast path), and each announcement slot
    /// sees one swap. One test-and-set bit per object therefore suffices.
    pub const ALTERNATION_BUDGET: usize = 1;

    /// The same protocol over derived one-bit swaps: every object replaced
    /// by the Aspnes construction and flattened onto its base objects (per
    /// object: one max register plus [`Self::ALTERNATION_BUDGET`]
    /// test-and-set bits).
    pub fn derived(self) -> LayeredProtocol<OneBitSwapConsensus, AspnesOneBitSwap> {
        LayeredProtocol::derive_swaps(self, Self::ALTERNATION_BUDGET)
    }
}

impl Protocol for OneBitSwapConsensus {
    type State = OneBitState;
    type Value = u64;

    fn name(&self) -> String {
        "2-process consensus from one-bit swaps".into()
    }

    fn task(&self) -> KSetTask {
        KSetTask::new(2, 1, 2)
    }

    fn num_objects(&self) -> usize {
        3
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::readable_binary_swap()
    }

    fn initial_value(&self, _obj: ObjectId) -> u64 {
        0
    }

    fn initial_state(&self, pid: ProcessId, input: u64) -> OneBitState {
        assert!(input <= 1, "binary consensus takes inputs in {{0, 1}}");
        OneBitState {
            pid: pid.index(),
            input,
            phase: OneBitPhase::Announce,
        }
    }

    fn poised(&self, state: &OneBitState) -> (ObjectId, ObjectOp<u64>) {
        match state.phase {
            OneBitPhase::Announce => (
                ObjectId(1 + state.pid),
                HistorylessOp::Swap(state.input).into(),
            ),
            OneBitPhase::Race => (ObjectId(0), HistorylessOp::Swap(1).into()),
            OneBitPhase::ReadPeer => (ObjectId(1 + (1 - state.pid)), ObjectOp::read()),
        }
    }

    fn observe(&self, state: OneBitState, response: Response<u64>) -> Transition<OneBitState> {
        match state.phase {
            OneBitPhase::Announce => Transition::Continue(OneBitState {
                phase: OneBitPhase::Race,
                ..state
            }),
            OneBitPhase::Race => {
                if response.expect_value("swap returns the displaced bit") == 0 {
                    // First through the race: decide the own input.
                    Transition::Decide(state.input)
                } else {
                    Transition::Continue(OneBitState {
                        phase: OneBitPhase::ReadPeer,
                        ..state
                    })
                }
            }
            OneBitPhase::ReadPeer => {
                // The race winner announced before racing, so this is its
                // input.
                Transition::Decide(response.expect_value("read returns the announced bit"))
            }
        }
    }

    // Process-symmetric: ids select announcement slots but never a role.
    // Values are *not* interchangeable — the announcement slots cannot
    // distinguish "unwritten" from "announced 0", so relabeling inputs does
    // not fix the initial configuration.
    fn symmetry(&self) -> Symmetry {
        Symmetry::full_process(2)
    }

    fn rename_state(&self, state: &OneBitState, renaming: &Renaming) -> OneBitState {
        OneBitState {
            pid: renaming.pid(ProcessId(state.pid)).index(),
            ..*state
        }
    }

    // The announcement slots move with their owners; the race object is
    // fixed. A function of `π`, so expressed as an override rather than a
    // declared object class (and therefore liftable by `LayeredProtocol`).
    fn rename_object(&self, obj: ObjectId, renaming: &Renaming) -> ObjectId {
        match obj.index() {
            0 => ObjectId(0),
            i => ObjectId(1 + renaming.pid(ProcessId(i - 1)).index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_sim::canon::assert_equivariant;
    use swapcons_sim::explore::ModelChecker;

    #[test]
    fn native_stack_solves_consensus() {
        let report = ModelChecker::new(64, 100_000).check_all_inputs(&OneBitSwapConsensus);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn derived_stack_solves_consensus() {
        let derived = OneBitSwapConsensus.derived();
        // The facade is 3 objects; the priced base set is 6 (one max
        // register + one TAS bit per derived swap).
        assert_eq!(OneBitSwapConsensus.num_objects(), 3);
        assert_eq!(derived.num_objects(), 6);
        let report = ModelChecker::new(64, 2_000_000).check_all_inputs(&derived);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn native_and_derived_verdicts_agree() {
        // The pinned parity gate: model checking the protocol on atomic
        // swaps and on the flattened Aspnes construction must reach the
        // same verdict over every binary input vector.
        let native = ModelChecker::new(64, 100_000).check_all_inputs(&OneBitSwapConsensus);
        let derived =
            ModelChecker::new(64, 2_000_000).check_all_inputs(&OneBitSwapConsensus.derived());
        assert!(
            native.same_verdict(&derived),
            "native: {native}\nderived: {derived}"
        );
        // And the derived run explores strictly more states: three base
        // steps per visible swap leave mid-operation configurations the
        // native stack never has.
        assert!(derived.states > native.states);
    }

    #[test]
    fn both_stacks_are_equivariant() {
        // Process symmetry commutes with every operation kind the stacks
        // use — swap/read natively; max-read, test-and-set, and max-write
        // once flattened (mid-frame states included).
        for inputs in [[0, 0], [1, 1], [0, 1]] {
            assert_equivariant(&OneBitSwapConsensus, &inputs, 12, 6);
            assert_equivariant(&OneBitSwapConsensus.derived(), &inputs, 12, 6);
        }
    }

    #[test]
    fn wait_free_on_both_stacks() {
        // Three high-level operations per process; ≤ 3 base steps each.
        let native = ModelChecker::new(64, 100_000)
            .with_wait_free_bound(3)
            .check_all_inputs(&OneBitSwapConsensus);
        assert!(native.proves_safety(), "{native}");
        let derived = ModelChecker::new(64, 2_000_000)
            .with_wait_free_bound(9)
            .check_all_inputs(&OneBitSwapConsensus.derived());
        assert!(derived.proves_safety(), "{derived}");
    }
}
