//! Wait-free k-set agreement from `n-k` swap objects when `k ≥ ⌈n/2⌉`
//! (Section 1's Chaudhuri–Reiners pairing construction).
//!
//! "Using this 2-process consensus algorithm and a reduction by Chaudhuri
//! and Reiners, we can construct a simple wait-free n-process k-set
//! agreement algorithm from n−k swap objects when k ≥ ⌈n/2⌉ as follows: n−k
//! different pairs of processes each use a different swap object to solve
//! consensus, while the remaining 2k−n processes simply decide their input
//! values."
//!
//! Unlike Algorithm 1 (obstruction-free), this construction is **wait-free**
//! — every process decides within exactly one of its own steps (or zero, for
//! the unpaired processes) — but it only applies in the `k ≥ ⌈n/2⌉` regime.

use swapcons_objects::{HistorylessOp, ObjectOp, ObjectSchema, Response};
use swapcons_sim::{
    KSetTask, ObjectClasses, ObjectId, ProcessId, Protocol, Renaming, Symmetry, Transition,
};

/// The pairing construction: processes `2i` and `2i+1` (for `i < n-k`) run
/// 2-process consensus on swap object `i`; processes `2(n-k), …, n-1` decide
/// their inputs immediately.
///
/// # Example
///
/// ```
/// use swapcons_core::pairs::PairsKSet;
/// use swapcons_sim::{Configuration, runner, scheduler::RoundRobin};
///
/// let p = PairsKSet::new(4, 3, 4); // n=4, k=3 >= ceil(4/2): one pair, two singles
/// let mut config = Configuration::initial(&p, &[0, 1, 2, 3]).unwrap();
/// let out = runner::run(&p, &mut config, &mut RoundRobin::new(), 10).unwrap();
/// assert!(out.all_decided);
/// assert!(config.decided_values().len() <= 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairsKSet {
    n: usize,
    k: usize,
    m: u64,
}

impl PairsKSet {
    /// An instance for `n` processes and degree `k` with inputs from
    /// `{0, …, m-1}`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > k ≥ ⌈n/2⌉` and `m > 0`.
    pub fn new(n: usize, k: usize, m: u64) -> Self {
        assert!(
            n > k,
            "for n <= k everyone decides their input; no objects needed"
        );
        assert!(
            2 * k >= n,
            "the pairing construction requires k >= ceil(n/2)"
        );
        assert!(m > 0, "need at least one input value");
        PairsKSet { n, k, m }
    }

    /// Number of swap objects: `n - k` (one per pair).
    pub fn space(&self) -> usize {
        self.n - self.k
    }

    /// Wait-freedom bound: every process decides within one own step.
    pub fn step_bound(&self) -> usize {
        1
    }

    /// The pair index of `pid`, or `None` if `pid` is one of the `2k-n`
    /// unpaired processes.
    pub fn pair_of(&self, pid: ProcessId) -> Option<usize> {
        (pid.index() < 2 * self.space()).then_some(pid.index() / 2)
    }
}

/// State of a paired process that has not yet swapped.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PairState {
    /// The process's input.
    pub input: u64,
    /// The swap object assigned to this process's pair.
    pub object: usize,
}

impl Protocol for PairsKSet {
    type State = PairState;
    // None = ⊥.
    type Value = Option<u64>;

    fn name(&self) -> String {
        format!(
            "pairs: wait-free {}-process {}-set agreement from {} swap objects",
            self.n,
            self.k,
            self.space()
        )
    }

    fn task(&self) -> KSetTask {
        KSetTask::new(self.n, self.k, self.m)
    }

    fn num_objects(&self) -> usize {
        self.space()
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::swap()
    }

    fn initial_value(&self, _obj: ObjectId) -> Option<u64> {
        None
    }

    fn initial_state(&self, pid: ProcessId, input: u64) -> PairState {
        let object = self
            .pair_of(pid)
            .expect("unpaired processes decide at initialization and have no state");
        PairState { input, object }
    }

    fn initial_decision(&self, pid: ProcessId, input: u64) -> Option<u64> {
        // The 2k-n unpaired processes decide their inputs without steps.
        self.pair_of(pid).is_none().then_some(input)
    }

    fn poised(&self, state: &PairState) -> (ObjectId, ObjectOp<Option<u64>>) {
        (
            ObjectId(state.object),
            HistorylessOp::Swap(Some(state.input)).into(),
        )
    }

    fn observe(&self, state: PairState, response: Response<Option<u64>>) -> Transition<PairState> {
        match response.expect_value("swap returns the previous value") {
            None => Transition::Decide(state.input),
            Some(theirs) => Transition::Decide(theirs),
        }
    }

    // Partners within a pair are interchangeable (they share one object and
    // run identical code), and so are the unpaired immediate deciders.
    // Distinct pairs are interchangeable too, but only as whole units:
    // swapping p0 with p2 must drag object 0 along to object 1 and p1 to p3
    // — the process-coupled object class ties each pair's swap object to
    // the pair that owns it, so block permutations move them together.
    // Values are passed through uninspected, so the whole value domain is
    // interchangeable.
    fn symmetry(&self) -> Symmetry {
        let pair_class =
            |pair: usize| -> Vec<ProcessId> { vec![ProcessId(2 * pair), ProcessId(2 * pair + 1)] };
        let mut classes: Vec<Vec<ProcessId>> = (0..self.space()).map(pair_class).collect();
        classes.push((2 * self.space()..self.n).map(ProcessId).collect());
        Symmetry::process_classes(classes)
            .with_interchangeable_values()
            .with_object_classes(ObjectClasses::process_coupled(
                (0..self.space()).map(|pair| vec![ObjectId(pair)]).collect(),
                (0..self.space()).map(pair_class).collect(),
            ))
    }

    fn rename_state(&self, state: &PairState, renaming: &Renaming) -> PairState {
        // The assigned object is an embedded object id: pair swaps move it.
        PairState {
            input: renaming.value(state.input),
            object: renaming.object(ObjectId(state.object)).index(),
        }
    }

    fn rename_value(
        &self,
        _obj: ObjectId,
        value: &Option<u64>,
        renaming: &Renaming,
    ) -> Option<u64> {
        value.map(|v| renaming.value(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_sim::explore::ModelChecker;
    use swapcons_sim::runner;
    use swapcons_sim::scheduler::{RoundRobin, SeededRandom};
    use swapcons_sim::Configuration;

    #[test]
    fn space_is_n_minus_k() {
        assert_eq!(PairsKSet::new(4, 2, 3).space(), 2);
        assert_eq!(PairsKSet::new(6, 4, 5).space(), 2);
        assert_eq!(PairsKSet::new(5, 3, 4).space(), 2);
    }

    #[test]
    #[should_panic(expected = "k >= ceil(n/2)")]
    fn rejects_small_k() {
        let _ = PairsKSet::new(6, 2, 3);
    }

    #[test]
    fn pairing_layout() {
        let p = PairsKSet::new(5, 3, 4); // 2 pairs, 1 single
        assert_eq!(p.pair_of(ProcessId(0)), Some(0));
        assert_eq!(p.pair_of(ProcessId(1)), Some(0));
        assert_eq!(p.pair_of(ProcessId(2)), Some(1));
        assert_eq!(p.pair_of(ProcessId(3)), Some(1));
        assert_eq!(p.pair_of(ProcessId(4)), None);
    }

    #[test]
    fn unpaired_processes_decide_at_initialization() {
        let p = PairsKSet::new(5, 3, 4);
        let c = Configuration::initial(&p, &[0, 1, 2, 3, 1]).unwrap();
        assert_eq!(c.decision(ProcessId(4)), Some(1));
        assert_eq!(c.running().len(), 4);
    }

    #[test]
    fn wait_free_one_step_each() {
        let p = PairsKSet::new(6, 3, 4);
        let inputs = [0, 1, 2, 3, 0, 1];
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        let out = runner::run(&p, &mut c, &mut RoundRobin::new(), 100).unwrap();
        assert!(out.all_decided);
        assert_eq!(
            out.steps, 6,
            "every paired process decides in exactly one step"
        );
        assert!(p.task().check(&inputs, &c.decisions()).is_ok());
    }

    #[test]
    fn k_agreement_bound_is_tight_per_pair() {
        // Each pair agrees internally, so at most (n-k) + (2k-n) = k values.
        let p = PairsKSet::new(4, 2, 4);
        let inputs = [0, 1, 2, 3];
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        runner::run(&p, &mut c, &mut RoundRobin::new(), 100).unwrap();
        // Pair (p0,p1) decides one value; pair (p2,p3) decides one value.
        assert_eq!(c.decision(ProcessId(0)), c.decision(ProcessId(1)));
        assert_eq!(c.decision(ProcessId(2)), c.decision(ProcessId(3)));
        assert!(c.decided_values().len() <= 2);
    }

    #[test]
    fn model_check_exhaustive_n4_k2() {
        let p = PairsKSet::new(4, 2, 3);
        let report = ModelChecker::new(10, 100_000)
            .with_solo_budget(1)
            .check_all_inputs(&p);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn symmetry_declaration_is_equivariant() {
        swapcons_sim::canon::assert_equivariant(&PairsKSet::new(4, 2, 3), &[0, 1, 2, 2], 6, 6);
        swapcons_sim::canon::assert_equivariant(&PairsKSet::new(5, 3, 4), &[0, 1, 2, 3, 1], 6, 6);
        swapcons_sim::canon::assert_equivariant(&PairsKSet::new(4, 3, 4), &[2, 2, 1, 0], 6, 6);
        // Unanimous inputs: the run group includes the pair swap (π moving
        // both partners, τ moving the pair's object), exercised against
        // real executions.
        swapcons_sim::canon::assert_equivariant(&PairsKSet::new(4, 2, 3), &[1, 1, 1, 1], 6, 6);
        swapcons_sim::canon::assert_equivariant(
            &PairsKSet::new(6, 4, 3),
            &[0, 1, 0, 1, 2, 2],
            6,
            6,
        );
    }

    #[test]
    fn pair_swap_composes_into_the_run_group() {
        let p = PairsKSet::new(4, 2, 3);
        // Unanimous: within-pair swaps (2 · 2) × the pair swap (2) = 8.
        assert_eq!(
            swapcons_sim::Canonicalizer::for_inputs(&p, &[1, 1, 1, 1]).group_order(),
            8
        );
        // [0,1,2,1]: only the pair swap survives (each within-pair swap
        // forces a σ that another, fixed process contradicts) — before
        // object symmetry this run group was trivial.
        let canon = swapcons_sim::Canonicalizer::for_inputs(&p, &[0, 1, 2, 1]);
        assert_eq!(canon.group_order(), 2);
        let g = &canon.renamings()[0];
        assert_eq!(g.pid(ProcessId(0)), ProcessId(2));
        assert_eq!(g.pid(ProcessId(1)), ProcessId(3));
        assert_eq!(
            g.object(ObjectId(0)),
            ObjectId(1),
            "the object moves with its pair"
        );
        assert_eq!(g.value(0), 2, "σ is forced by the input assignment");
    }

    #[test]
    fn pair_swap_collapses_the_unanimous_check() {
        // Hand-computable: from [1, 1, 1, 1] each pair reaches 4 shapes
        // (nobody swapped / even partner decided / odd partner decided /
        // both decided), 4 × 4 = 16 full states. The within-pair swap
        // merges the two one-decided variants (3 orbits per pair) and the
        // pair swap identifies the two pairs' progress vectors, folding the
        // 3 × 3 product to the 6 unordered pairs.
        let p = PairsKSet::new(4, 2, 3);
        let full = ModelChecker::new(10, 100_000).check(&p, &[1, 1, 1, 1]);
        let reduced = ModelChecker::new(10, 100_000)
            .with_symmetry_reduction()
            .check(&p, &[1, 1, 1, 1]);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert_eq!(reduced.symmetry_group, 8);
        assert_eq!(full.states, 16, "{full}");
        assert_eq!(reduced.states, 6, "{reduced}");
    }

    #[test]
    fn reduced_model_check_matches_full() {
        let p = PairsKSet::new(4, 2, 3);
        let full = ModelChecker::new(10, 100_000)
            .with_solo_budget(1)
            .check_all_inputs(&p);
        let reduced = ModelChecker::new(10, 100_000)
            .with_solo_budget(1)
            .with_symmetry_reduction()
            .check_all_inputs(&p);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert!(reduced.proves_safety(), "{reduced}");
        assert!(
            reduced.states * 3 <= full.states,
            "pair swaps + value renaming collapse most of the grid: {} vs {}",
            full.states,
            reduced.states
        );
    }

    #[test]
    fn random_schedules_safe() {
        for seed in 0..20 {
            let p = PairsKSet::new(7, 4, 5);
            let inputs = [0, 1, 2, 3, 4, 0, 1];
            let mut c = Configuration::initial(&p, &inputs).unwrap();
            runner::run(&p, &mut c, &mut SeededRandom::new(seed), 100).unwrap();
            assert!(
                p.task().check(&inputs, &c.decisions()).is_ok(),
                "seed {seed}"
            );
        }
    }
}
