//! Real multi-threaded implementations of the paper's algorithms, built on
//! the lock-free [`AtomicSwap`] object.
//!
//! The simulator (`swapcons-sim`) executes algorithms under *explicit*
//! schedules; this module runs them under the only scheduler the paper's
//! asynchronous model really has in practice — the operating system. One
//! [`AtomicSwap::swap`] call is one shared-memory step of the model.
//!
//! Obstruction-freedom caveat: Algorithm 1 guarantees termination only when
//! a process eventually runs long enough alone. Under real contention the
//! race converges with overwhelming probability because lap leads grow, but
//! there is no deterministic bound; [`ThreadedKSet::propose`] therefore
//! applies a short randomized backoff after conflicted laps (a standard
//! technique for running obstruction-free algorithms, which does not change
//! the algorithm's shared-memory footprint: still exactly `n-k` swap
//! objects). [`ThreadedKSet::propose_bounded`] offers a lap-bounded variant
//! for callers that need a hard stop.

use rand::{rngs::StdRng, Rng, SeedableRng};
use swapcons_objects::atomic::AtomicSwap;
use swapcons_sim::ProcessId;

use crate::lap::{LapVec, SwapEntry};
use crate::two_process::ThreadedTwoProcess;

/// Threaded Algorithm 1: obstruction-free m-valued k-set agreement among
/// real threads from `n-k` lock-free swap objects.
///
/// # Example
///
/// ```
/// use swapcons_core::threaded::ThreadedKSet;
///
/// let alg = ThreadedKSet::new(4, 2, 3);
/// let decisions = alg.run(&[0, 1, 2, 0]);
/// let distinct: std::collections::HashSet<_> = decisions.iter().copied().collect();
/// assert!(distinct.len() <= 2);
/// ```
#[derive(Debug)]
pub struct ThreadedKSet {
    n: usize,
    k: usize,
    m: u64,
    objects: Vec<AtomicSwap<SwapEntry>>,
}

impl ThreadedKSet {
    /// An instance for `n` threads, degree `k`, inputs from `{0, …, m-1}`.
    ///
    /// `k == n` is permitted and degenerates exactly as the paper's space
    /// bound predicts: `n-k = 0` swap objects, so every process races against
    /// nobody, never conflicts, and decides its own input — trivial k-set
    /// agreement for free. (The simulator-side
    /// [`crate::algorithm1::SwapKSet::new`] keeps the strict `n > k`
    /// precondition because its adversary machinery is only meaningful with
    /// at least one object.)
    ///
    /// # Panics
    ///
    /// Panics if `n < k`, `k == 0`, or `m == 0`.
    pub fn new(n: usize, k: usize, m: u64) -> Self {
        assert!(k > 0 && n >= k && m > 0, "require n >= k >= 1 and m >= 1");
        let objects = (0..n - k)
            .map(|_| AtomicSwap::new(SwapEntry::bot(m as usize)))
            .collect();
        ThreadedKSet { n, k, m, objects }
    }

    /// Number of threads (`n`).
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Number of swap objects (`n-k`) — the space complexity.
    pub fn space(&self) -> usize {
        self.objects.len()
    }

    /// The agreement degree `k`.
    pub fn degree(&self) -> usize {
        self.k
    }

    /// Propose `input` as process `pid`; blocks until the race is decided.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n` or `input >= m`.
    pub fn propose(&self, pid: usize, input: u64) -> u64 {
        self.propose_bounded(pid, input, u64::MAX)
            .expect("unbounded propose always decides")
    }

    /// Propose with a cap on completed laps; returns `None` if the cap is
    /// reached without a decision (only possible under unbounded
    /// contention).
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n` or `input >= m`.
    pub fn propose_bounded(&self, pid: usize, input: u64, max_laps: u64) -> Option<u64> {
        self.propose_inner(pid, input, max_laps, None)
    }

    /// Propose, but **crash** after exactly `crash_after_swaps` swap
    /// operations: the thread stops dead before its next shared-memory
    /// step — mid-pass if the crash point falls inside one — and returns
    /// `None`, leaving whatever it already swapped into the objects for the
    /// survivors to observe. A decision reached strictly before the crash
    /// point is returned (the decision is part of the final swap's
    /// transition, as in the simulator's model). `crash_after_swaps == 0`
    /// crashes before the first step of the race.
    ///
    /// This is the threaded counterpart of the model checker's `Crash`
    /// transition: a crashed process is one the OS scheduler never runs
    /// again.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n` or `input >= m`.
    pub fn propose_crashing(&self, pid: usize, input: u64, crash_after_swaps: u64) -> Option<u64> {
        self.propose_inner(pid, input, u64::MAX, Some(crash_after_swaps))
    }

    fn propose_inner(
        &self,
        pid: usize,
        input: u64,
        max_laps: u64,
        crash_after: Option<u64>,
    ) -> Option<u64> {
        assert!(pid < self.n, "pid {pid} out of range for n={}", self.n);
        assert!(
            input < self.m,
            "input {input} out of range for m={}",
            self.m
        );
        let me = ProcessId(pid);
        let mut u = LapVec::initial(self.m as usize, input);
        let mut rng = StdRng::seed_from_u64((pid as u64) << 32 | input);
        let mut contended_passes: u32 = 0;
        let mut laps: u64 = 0;
        let mut swaps: u64 = 0;
        loop {
            // The crash point also strikes between passes — in particular
            // before the decision of a zero-object (`k == n`) instance.
            if crash_after.is_some_and(|limit| swaps >= limit) {
                return None;
            }
            let mut conflict = false;
            for object in &self.objects {
                if crash_after.is_some_and(|limit| swaps >= limit) {
                    return None; // Crashed mid-pass: stale entries remain.
                }
                // Line 7: one atomic swap = one shared-memory step.
                let got = object.swap(SwapEntry::of(u.clone(), me));
                swaps += 1;
                if got.id != Some(me) || got.laps != u {
                    conflict = true;
                    if got.laps != u {
                        u.merge_max(&got.laps);
                    }
                }
            }
            if !conflict {
                let (v, _) = u.leader();
                if u.leads_by(v as usize, 2) {
                    return Some(v);
                }
                u.increment(v as usize);
                laps += 1;
                if laps >= max_laps {
                    return None;
                }
                contended_passes = 0;
            } else {
                // Randomized exponential backoff: purely local, no shared
                // memory — the schedule knob that makes obstruction-freedom
                // terminate in practice.
                contended_passes = contended_passes.saturating_add(1);
                let cap = 1u32 << contended_passes.min(12);
                for _ in 0..rng.gen_range(0..cap) {
                    std::hint::spin_loop();
                }
                if contended_passes > 4 {
                    // Through the conc alias: a real yield in production, a
                    // visible scheduling point under `--cfg conc_check`.
                    swapcons_conc::thread::yield_now();
                }
            }
        }
    }

    /// Run all `n` proposers on their own threads and collect the decisions,
    /// indexed by process id.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n` or any input is out of range.
    pub fn run(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.n, "one input per process");
        std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(pid, &input)| scope.spawn(move || self.propose(pid, input)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("proposer panicked"))
                .collect()
        })
    }
}

/// Threaded pairing construction: wait-free k-set agreement for
/// `k ≥ ⌈n/2⌉` from `n-k` swap objects (see [`crate::pairs::PairsKSet`]).
#[derive(Debug)]
pub struct ThreadedPairs {
    n: usize,
    k: usize,
    pairs: Vec<ThreadedTwoProcess>,
}

impl ThreadedPairs {
    /// An instance for `n` threads and degree `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > k ≥ ⌈n/2⌉`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n > k && 2 * k >= n, "pairing requires n > k >= ceil(n/2)");
        ThreadedPairs {
            n,
            k,
            pairs: (0..n - k).map(|_| ThreadedTwoProcess::new()).collect(),
        }
    }

    /// Number of swap objects (`n-k`).
    pub fn space(&self) -> usize {
        self.pairs.len()
    }

    /// Propose `input` as process `pid`; wait-free (at most one swap).
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n`.
    pub fn propose(&self, pid: usize, input: u64) -> u64 {
        assert!(pid < self.n, "pid {pid} out of range for n={}", self.n);
        if pid < 2 * self.pairs.len() {
            self.pairs[pid / 2].propose(input)
        } else {
            input
        }
    }

    /// Run all `n` proposers on their own threads; returns decisions indexed
    /// by process id.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n`.
    pub fn run(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.n, "one input per process");
        std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(pid, &input)| scope.spawn(move || self.propose(pid, input)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("proposer panicked"))
                .collect()
        })
    }

    /// The agreement degree `k`.
    pub fn degree(&self) -> usize {
        self.k
    }
}

// These tests run the algorithms on free-running std threads (`run()`),
// which requires the conc aliases to resolve to the real std types; under
// `--cfg conc_check` the shims demand a model context and the exhaustive
// suite in `tests/conc_exhaustive.rs` takes over.
#[cfg(all(test, not(conc_check)))]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_kset(inputs: &[u64], decisions: &[u64], k: usize) {
        let distinct: HashSet<u64> = decisions.iter().copied().collect();
        assert!(distinct.len() <= k, "{distinct:?} exceeds k={k}");
        let valid: HashSet<u64> = inputs.iter().copied().collect();
        for d in decisions {
            assert!(valid.contains(d), "decision {d} is nobody's input");
        }
    }

    #[test]
    fn threaded_consensus_small() {
        for round in 0..20 {
            let alg = ThreadedKSet::new(3, 1, 2);
            let inputs = [round % 2, (round + 1) % 2, round % 2];
            let decisions = alg.run(&inputs);
            assert_kset(&inputs, &decisions, 1);
        }
    }

    #[test]
    fn threaded_kset_n6_k2() {
        for _ in 0..10 {
            let alg = ThreadedKSet::new(6, 2, 3);
            let inputs = [0, 1, 2, 0, 1, 2];
            let decisions = alg.run(&inputs);
            assert_kset(&inputs, &decisions, 2);
        }
    }

    #[test]
    fn threaded_kset_equal_inputs_decide_it() {
        let alg = ThreadedKSet::new(4, 1, 3);
        let decisions = alg.run(&[2, 2, 2, 2]);
        assert_eq!(
            decisions,
            vec![2, 2, 2, 2],
            "validity forces the unique input"
        );
    }

    #[test]
    fn propose_bounded_gives_up_cleanly() {
        // Solo proposer needs ~3 laps; a cap of 1 must abort.
        let alg = ThreadedKSet::new(3, 1, 2);
        assert_eq!(alg.propose_bounded(0, 1, 1), None);
        // A fresh instance decides solo well within 10 laps.
        let alg = ThreadedKSet::new(3, 1, 2);
        assert_eq!(alg.propose_bounded(0, 1, 10), Some(1));
    }

    #[test]
    fn propose_crashing_stops_dead_and_survivors_decide() {
        // Crash before the first step: no decision, no trace in the objects.
        let alg = ThreadedKSet::new(3, 1, 2);
        assert_eq!(alg.propose_crashing(1, 1, 0), None);
        // Crash mid-race: p1 stops after 2 swaps (one full pass of the two
        // objects), its entries stay behind, and a survivor still decides.
        assert_eq!(alg.propose_crashing(2, 0, 2), None);
        let d = alg.propose(0, 0);
        assert!(d < 2, "survivor decides a valid value, got {d}");
        // A generous crash point is never reached solo: the proposer
        // decides first, exactly like plain propose.
        let alg = ThreadedKSet::new(3, 1, 2);
        assert_eq!(alg.propose_crashing(0, 1, 1_000), Some(1));
        // Zero-object (k = n) instances decide without any shared-memory
        // step, so only a crash point of 0 can pre-empt the decision.
        let alg = ThreadedKSet::new(2, 2, 2);
        assert_eq!(alg.propose_crashing(0, 1, 0), None);
        assert_eq!(alg.propose_crashing(1, 0, 1), Some(0));
    }

    #[test]
    fn solo_propose_decides_own_input() {
        let alg = ThreadedKSet::new(5, 2, 4);
        assert_eq!(alg.propose(3, 2), 2, "a solo run must decide its own input");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn propose_validates_input() {
        let alg = ThreadedKSet::new(3, 1, 2);
        let _ = alg.propose(0, 5);
    }

    #[test]
    fn threaded_pairs_wait_free_rounds() {
        for _ in 0..20 {
            let alg = ThreadedPairs::new(6, 4);
            let inputs = [0, 1, 2, 3, 4, 5];
            let decisions = alg.run(&inputs);
            assert_kset(&inputs, &decisions, 4);
            // Pairwise agreement inside each pair.
            assert_eq!(decisions[0], decisions[1]);
            assert_eq!(decisions[2], decisions[3]);
            // Unpaired processes keep their inputs.
            assert_eq!(decisions[4], 4);
            assert_eq!(decisions[5], 5);
        }
    }

    #[test]
    fn threaded_pairs_space() {
        assert_eq!(ThreadedPairs::new(8, 5).space(), 3);
        assert_eq!(ThreadedPairs::new(8, 5).degree(), 5);
    }

    #[test]
    fn oversubscribed_threads() {
        // More threads than cores: stresses preemption mid-pass.
        let alg = ThreadedKSet::new(12, 4, 5);
        let inputs: Vec<u64> = (0..12).map(|i| (i % 5) as u64).collect();
        let decisions = alg.run(&inputs);
        assert_kset(&inputs, &decisions, 4);
    }
}
