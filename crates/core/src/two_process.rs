//! The paper's wait-free 2-process consensus from a single swap object
//! (Section 1).
//!
//! "There is also a simple wait-free 2-process consensus algorithm from a
//! single swap object. The swap object initially contains a special value ⊥
//! which cannot be the input value of any process. Both processes swap their
//! input value into the object. The process that receives the response ⊥
//! decides its input value and the other process decides the value it
//! obtained in response to its swap operation."
//!
//! The deterministic simulator protocol lives in
//! [`swapcons_sim::testing::TwoProcessSwapConsensus`] (re-exported here);
//! this module adds the lock-free threaded form used by the pairs
//! construction in [`crate::threaded`].

pub use swapcons_sim::testing::{TwoProcConsensusValue, TwoProcState, TwoProcessSwapConsensus};

use swapcons_objects::atomic::AtomicSwap;

/// A wait-free 2-process consensus object for real threads, built on one
/// lock-free [`AtomicSwap`].
///
/// Each of the two parties calls [`ThreadedTwoProcess::propose`] exactly
/// once; both calls return the same value, which is one of the two proposed
/// values. The decision takes exactly one atomic swap — wait-free with a
/// concrete step bound of 1.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use swapcons_core::two_process::ThreadedTwoProcess;
///
/// let obj = Arc::new(ThreadedTwoProcess::new());
/// let a = Arc::clone(&obj);
/// let t = std::thread::spawn(move || a.propose(7));
/// let mine = obj.propose(9);
/// let theirs = t.join().unwrap();
/// assert_eq!(mine, theirs);
/// assert!(mine == 7 || mine == 9);
/// ```
#[derive(Debug)]
pub struct ThreadedTwoProcess {
    // None plays the role of ⊥.
    object: AtomicSwap<Option<u64>>,
}

impl ThreadedTwoProcess {
    /// A fresh consensus object holding `⊥`.
    pub fn new() -> Self {
        ThreadedTwoProcess {
            object: AtomicSwap::new(None),
        }
    }

    /// Propose `input`; returns the agreed value. Must be called at most
    /// once by each of at most two parties.
    pub fn propose(&self, input: u64) -> u64 {
        match self.object.swap(Some(input)) {
            None => input,
            Some(theirs) => theirs,
        }
    }
}

impl Default for ThreadedTwoProcess {
    fn default() -> Self {
        ThreadedTwoProcess::new()
    }
}

// Free-running std threads: normal builds only (see `threaded.rs`).
#[cfg(all(test, not(conc_check)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_first_proposer_wins() {
        let o = ThreadedTwoProcess::new();
        assert_eq!(o.propose(3), 3);
        assert_eq!(o.propose(8), 3);
    }

    #[test]
    fn concurrent_agreement_many_rounds() {
        for round in 0..200u64 {
            let o = Arc::new(ThreadedTwoProcess::new());
            let a = Arc::clone(&o);
            let b = Arc::clone(&o);
            let t1 = std::thread::spawn(move || a.propose(round));
            let t2 = std::thread::spawn(move || b.propose(round + 1000));
            let d1 = t1.join().unwrap();
            let d2 = t2.join().unwrap();
            assert_eq!(d1, d2, "agreement in round {round}");
            assert!(
                d1 == round || d1 == round + 1000,
                "validity in round {round}"
            );
        }
    }

    #[test]
    fn default_is_fresh() {
        let o = ThreadedTwoProcess::default();
        assert_eq!(o.propose(5), 5);
    }
}
