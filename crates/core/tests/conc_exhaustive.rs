//! Exhaustive model-checking of the threaded layer under the vendored
//! concurrency checker (`swapcons-conc`).
//!
//! Compiled only under `RUSTFLAGS="--cfg conc_check"`, which switches the
//! `swapcons_conc::{sync, thread}` aliases from std to the instrumented
//! shims: every atomic, lock, spawn/join, and yield becomes a controlled
//! scheduling point, and the explorer enumerates interleavings — all of
//! them for the small two-process gates, all up to a preemption bound for
//! the `ThreadedKSet` races. The vector-clock detector watches the raw
//! payload handoff inside `AtomicSwap::swap` on every explored schedule.
//!
//! Each gate asserts safety *inside* the checked program, so a violation
//! surfaces as a counterexample with a replayable schedule (printed via
//! the failure's `Display`), and also cross-checks DPOR against full
//! enumeration where the full space is affordable: identical verdicts and
//! outcome sets from measurably fewer explored interleavings.

#![cfg(conc_check)]

use std::collections::HashSet;
use std::sync::Arc;

use swapcons_conc::{CheckReport, Checker, Mode};
use swapcons_core::threaded::ThreadedKSet;
use swapcons_core::two_process::ThreadedTwoProcess;
use swapcons_objects::atomic::AtomicSwap;
use swapcons_objects::linearize::{chain_consistent, SwapOp};

/// Lap cap for checked races: far above what any finite schedule needs
/// (a solo run decides in ~3 laps), so hitting it means livelock — which
/// the in-model `expect` turns into a replayable counterexample.
const MAX_LAPS: u64 = 16;

/// Model-check a `ThreadedKSet` race: `n` shim threads propose, every
/// decision is asserted in-model (validity + k-agreement), the decision
/// vector is the outcome.
fn check_kset(
    mode: Mode,
    n: usize,
    k: usize,
    m: u64,
    inputs: &[u64],
    preemption_bound: u32,
) -> CheckReport<Vec<u64>> {
    let inputs = inputs.to_vec();
    let checker = Checker::new(mode).with_preemption_bound(preemption_bound);
    checker.check(move || {
        let alg = Arc::new(ThreadedKSet::new(n, k, m));
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(pid, &input)| {
                let alg = Arc::clone(&alg);
                swapcons_conc::thread::spawn(move || {
                    alg.propose_bounded(pid, input, MAX_LAPS)
                        .expect("livelock: lap cap reached under a finite schedule")
                })
            })
            .collect();
        let decisions: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().expect("proposer panicked"))
            .collect();
        // Safety asserted inside the model: a violation aborts this
        // execution as a counterexample carrying its schedule.
        let distinct: HashSet<u64> = decisions.iter().copied().collect();
        assert!(
            distinct.len() <= k,
            "k-agreement violated: {distinct:?} exceeds k={k}"
        );
        for d in &decisions {
            assert!(
                inputs.contains(d),
                "validity violated: {d} is nobody's input"
            );
        }
        decisions
    })
}

fn assert_clean<V: std::fmt::Debug>(report: &CheckReport<V>, label: &str) {
    assert!(
        report.passed(),
        "{label}: {}",
        report
            .failure
            .as_ref()
            .map(|f| f.to_string())
            .unwrap_or_else(|| "failed without failure record".into())
    );
    assert!(report.complete, "{label}: exploration truncated");
    assert!(report.interleavings > 0, "{label}: nothing explored");
}

#[test]
fn kset_n2_k1_exhaustive_consensus() {
    // n=2, k=1: one swap object, full binary consensus. Preemption bound 3
    // covers every schedule the bound admits, in both modes, for both
    // input patterns; DPOR must agree with full enumeration on verdict and
    // outcomes while exploring no more interleavings.
    for inputs in [[0u64, 1], [1, 0], [1, 1]] {
        let full = check_kset(Mode::FullEnumeration, 2, 1, 2, &inputs, 3);
        let dpor = check_kset(Mode::Dpor, 2, 1, 2, &inputs, 3);
        assert_clean(&full, "kset(2,1) full");
        assert_clean(&dpor, "kset(2,1) dpor");
        let full_set: HashSet<_> = full.outcomes.iter().cloned().collect();
        let dpor_set: HashSet<_> = dpor.outcomes.iter().cloned().collect();
        assert_eq!(full_set, dpor_set, "outcome sets diverge on {inputs:?}");
        assert!(
            dpor.interleavings <= full.interleavings,
            "DPOR explored more than full enumeration on {inputs:?}"
        );
        eprintln!(
            "kset(2,1) inputs={inputs:?}: full={} dpor={} outcomes={}",
            full.interleavings,
            dpor.interleavings,
            full_set.len()
        );
    }
}

#[test]
fn kset_n3_k1_exhaustive_consensus() {
    // n=3, k=1: two swap objects, three proposers. Both modes cover the
    // bounded space completely; DPOR must reach the same outcome set from
    // strictly fewer interleavings.
    let full = check_kset(Mode::FullEnumeration, 3, 1, 2, &[0, 1, 0], 2);
    let dpor = check_kset(Mode::Dpor, 3, 1, 2, &[0, 1, 0], 2);
    assert_clean(&full, "kset(3,1) full");
    assert_clean(&dpor, "kset(3,1) dpor");
    // Consensus: every explored schedule decided a single value.
    for outcome in full.outcomes.iter().chain(&dpor.outcomes) {
        let distinct: HashSet<_> = outcome.iter().collect();
        assert_eq!(distinct.len(), 1, "k=1 requires unanimity: {outcome:?}");
    }
    let full_set: HashSet<_> = full.outcomes.iter().cloned().collect();
    let dpor_set: HashSet<_> = dpor.outcomes.iter().cloned().collect();
    assert_eq!(full_set, dpor_set, "outcome sets diverge at (3,1)");
    assert!(
        dpor.interleavings < full.interleavings,
        "no reduction at (3,1)"
    );
    eprintln!(
        "kset(3,1): full={} dpor={} distinct_outcomes={}",
        full.interleavings,
        dpor.interleavings,
        full_set.len()
    );
}

#[test]
fn kset_n3_k2_exhaustive_set_agreement() {
    // n=3, k=2: one swap object, 3-valued inputs, full-vs-DPOR parity.
    let full = check_kset(Mode::FullEnumeration, 3, 2, 3, &[0, 1, 2], 2);
    let dpor = check_kset(Mode::Dpor, 3, 2, 3, &[0, 1, 2], 2);
    assert_clean(&full, "kset(3,2) full");
    assert_clean(&dpor, "kset(3,2) dpor");
    let full_set: HashSet<_> = full.outcomes.iter().cloned().collect();
    let dpor_set: HashSet<_> = dpor.outcomes.iter().cloned().collect();
    assert_eq!(full_set, dpor_set, "outcome sets diverge at (3,2)");
    assert!(
        dpor.interleavings < full.interleavings,
        "no reduction at (3,2)"
    );
    eprintln!(
        "kset(3,2): full={} dpor={} distinct_outcomes={}",
        full.interleavings,
        dpor.interleavings,
        full_set.len()
    );
}

#[test]
fn two_process_consensus_every_interleaving() {
    // The 1-swap 2-process consensus object: small enough for unbounded
    // full enumeration. Agreement and validity in every interleaving, and
    // both swap orders must be observed.
    let run = |mode: Mode| -> CheckReport<(u64, u64)> {
        Checker::new(mode).check(|| {
            let obj = Arc::new(ThreadedTwoProcess::new());
            let a = Arc::clone(&obj);
            let t = swapcons_conc::thread::spawn(move || a.propose(7));
            let mine = obj.propose(9);
            let theirs = t.join().expect("proposer panicked");
            assert_eq!(mine, theirs, "agreement violated");
            assert!(mine == 7 || mine == 9, "validity violated");
            (mine, theirs)
        })
    };
    let full = run(Mode::FullEnumeration);
    let dpor = run(Mode::Dpor);
    assert_clean(&full, "two-process full");
    assert_clean(&dpor, "two-process dpor");
    let outcomes: HashSet<_> = full.outcomes.iter().cloned().collect();
    assert_eq!(
        outcomes,
        HashSet::from([(7, 7), (9, 9)]),
        "both swap orders must be reachable"
    );
    assert_eq!(
        outcomes,
        dpor.outcomes.iter().cloned().collect::<HashSet<_>>(),
        "DPOR lost an outcome"
    );
    assert!(dpor.interleavings <= full.interleavings);
    eprintln!(
        "two-process: full={} dpor={}",
        full.interleavings, dpor.interleavings
    );
}

#[test]
fn atomic_swap_histories_linearize_in_every_interleaving() {
    // Object-level linearizability: two threads push tokens through one
    // AtomicSwap while the checker enumerates schedules; every history,
    // closed by a final drain, must form a single Eulerian chain from the
    // initial value (`chain_consistent` is the O(ops) decision procedure).
    let run = |mode: Mode| -> CheckReport<Vec<(u64, u64)>> {
        Checker::new(mode).check(|| {
            let obj = Arc::new(AtomicSwap::new(0u64));
            let spawn_swapper = |obj: &Arc<AtomicSwap<u64>>, tokens: [u64; 2]| {
                let obj = Arc::clone(obj);
                swapcons_conc::thread::spawn(move || tokens.map(|t| SwapOp::new(t, obj.swap(t))))
            };
            let t1 = spawn_swapper(&obj, [11, 12]);
            let t2 = spawn_swapper(&obj, [21, 22]);
            let mut ops: Vec<SwapOp<u64>> = Vec::new();
            ops.extend(t1.join().expect("swapper panicked"));
            ops.extend(t2.join().expect("swapper panicked"));
            let last = Arc::try_unwrap(obj)
                .unwrap_or_else(|_| panic!("threads joined; Arc must be unique"))
                .into_inner();
            ops.push(SwapOp::new(u64::MAX, last));
            assert!(
                chain_consistent(&0, &ops),
                "non-linearizable swap history: {ops:?}"
            );
            // Outcome: the history as response pairs, order-normalized.
            let mut pairs: Vec<(u64, u64)> =
                ops.iter().map(|o| (o.swapped_in, o.returned)).collect();
            pairs.sort_unstable();
            pairs
        })
    };
    let full = run(Mode::FullEnumeration);
    let dpor = run(Mode::Dpor);
    assert_clean(&full, "linearize full");
    assert_clean(&dpor, "linearize dpor");
    let full_set: HashSet<_> = full.outcomes.iter().cloned().collect();
    let dpor_set: HashSet<_> = dpor.outcomes.iter().cloned().collect();
    assert_eq!(full_set, dpor_set, "DPOR changed the set of histories");
    assert!(dpor.interleavings < full.interleavings);
    eprintln!(
        "linearize: full={} dpor={} histories={}",
        full.interleavings,
        dpor.interleavings,
        full_set.len()
    );
}

#[test]
fn counterexample_schedules_replay() {
    // A seeded safety violation: two "proposers" that skip the swap object
    // entirely cannot agree; the checker must find the disagreement and
    // hand back a schedule that `replay` reproduces.
    let checker = Checker::new(Mode::Dpor);
    let report: CheckReport<u64> = checker.check(|| {
        let obj = Arc::new(ThreadedTwoProcess::new());
        let a = Arc::clone(&obj);
        let t = swapcons_conc::thread::spawn(move || a.propose(1));
        let mine = obj.propose(2);
        let theirs = t.join().expect("proposer panicked");
        // Deliberately wrong assertion: claims a fixed winner.
        assert_eq!(mine, 1, "seeded violation");
        mine + theirs
    });
    let failure = report.failure.expect("the seeded violation must be found");
    let replayed: swapcons_conc::ReplayReport<u64> = checker.replay(
        || {
            let obj = Arc::new(ThreadedTwoProcess::new());
            let a = Arc::clone(&obj);
            let t = swapcons_conc::thread::spawn(move || a.propose(1));
            let mine = obj.propose(2);
            let theirs = t.join().expect("proposer panicked");
            assert_eq!(mine, 1, "seeded violation");
            mine + theirs
        },
        &failure.schedule,
    );
    let refailure = replayed
        .failure
        .expect("replaying the counterexample schedule must re-fail");
    assert_eq!(
        format!("{:?}", refailure.kind).contains("seeded violation"),
        true,
        "replay reproduced a different failure: {refailure}"
    );
}
