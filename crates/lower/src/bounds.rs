//! The formula side of Table 1: every row's lower and upper bound, with its
//! source, evaluable at concrete `(n, k, b)`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A bound formula: display text, literature source, and numeric evaluation.
#[derive(Clone, Copy)]
pub struct BoundFormula {
    /// Human-readable formula, as printed in Table 1.
    pub text: &'static str,
    /// Source annotation (theorem/algorithm/citation), as in Table 1.
    pub source: &'static str,
    /// Numeric evaluation at `(n, k, b)`.
    pub eval: fn(n: usize, k: usize, b: u64) -> f64,
}

impl BoundFormula {
    /// Evaluate at concrete parameters.
    pub fn at(&self, n: usize, k: usize, b: u64) -> f64 {
        (self.eval)(n, k, b)
    }
}

impl fmt::Debug for BoundFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.text, self.source)
    }
}

impl fmt::Display for BoundFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.text, self.source)
    }
}

fn ceil_div(a: usize, b: usize) -> f64 {
    a.div_ceil(b) as f64
}

/// The eight rows of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Table1Row {
    /// Consensus from registers: `n` / `n`.
    ConsensusRegisters,
    /// Consensus from swap objects: `n-1` / `n-1` — **the paper's headline**.
    ConsensusSwap,
    /// Consensus from readable swap objects with domain size 2:
    /// `n-2` / `2n-1`.
    ConsensusReadableBinarySwap,
    /// Consensus from readable swap objects with domain size `b`:
    /// `(n-2)/(3b+1)` / `2n-1`.
    ConsensusReadableSwapDomainB,
    /// Consensus from readable swap objects with unbounded domain:
    /// `Ω(√n)` / `n-1`.
    ConsensusReadableSwapUnbounded,
    /// k-set agreement from registers: `⌈n/k⌉` / `n-k+1`.
    KSetRegisters,
    /// k-set agreement from swap objects: `⌈n/k⌉-1` / `n-k` — **new in the
    /// paper**.
    KSetSwap,
    /// k-set agreement from readable swap objects with unbounded domain:
    /// `1` / `n-k`.
    KSetReadableSwapUnbounded,
}

impl Table1Row {
    /// All rows in the paper's order.
    pub const ALL: [Table1Row; 8] = [
        Table1Row::ConsensusRegisters,
        Table1Row::ConsensusSwap,
        Table1Row::ConsensusReadableBinarySwap,
        Table1Row::ConsensusReadableSwapDomainB,
        Table1Row::ConsensusReadableSwapUnbounded,
        Table1Row::KSetRegisters,
        Table1Row::KSetSwap,
        Table1Row::KSetReadableSwapUnbounded,
    ];

    /// The task column of Table 1.
    pub fn task(&self) -> &'static str {
        match self {
            Table1Row::ConsensusRegisters
            | Table1Row::ConsensusSwap
            | Table1Row::ConsensusReadableBinarySwap
            | Table1Row::ConsensusReadableSwapDomainB
            | Table1Row::ConsensusReadableSwapUnbounded => "Consensus",
            Table1Row::KSetRegisters
            | Table1Row::KSetSwap
            | Table1Row::KSetReadableSwapUnbounded => "k-set agreement",
        }
    }

    /// The object-kind column of Table 1.
    pub fn objects(&self) -> &'static str {
        match self {
            Table1Row::ConsensusRegisters | Table1Row::KSetRegisters => "Registers",
            Table1Row::ConsensusSwap | Table1Row::KSetSwap => "Swap objects",
            Table1Row::ConsensusReadableBinarySwap => "Readable swap objects, domain size 2",
            Table1Row::ConsensusReadableSwapDomainB => "Readable swap objects, domain size b",
            Table1Row::ConsensusReadableSwapUnbounded | Table1Row::KSetReadableSwapUnbounded => {
                "Readable swap objects, unbounded domain"
            }
        }
    }

    /// Whether this row is one of the paper's new results (boldface in
    /// Table 1).
    pub fn is_new_in_paper(&self) -> bool {
        matches!(
            self,
            Table1Row::ConsensusSwap
                | Table1Row::ConsensusReadableBinarySwap
                | Table1Row::ConsensusReadableSwapDomainB
                | Table1Row::KSetSwap
        )
    }

    /// The lower-bound formula.
    pub fn lower_bound(&self) -> BoundFormula {
        match self {
            Table1Row::ConsensusRegisters => BoundFormula {
                text: "n",
                source: "[EGZ 2018]",
                eval: |n, _, _| n as f64,
            },
            Table1Row::ConsensusSwap => BoundFormula {
                text: "n-1",
                source: "[Theorem 10]",
                eval: |n, _, _| (n as f64) - 1.0,
            },
            Table1Row::ConsensusReadableBinarySwap => BoundFormula {
                text: "n-2",
                source: "[Theorem 18]",
                eval: |n, _, _| (n as f64) - 2.0,
            },
            Table1Row::ConsensusReadableSwapDomainB => BoundFormula {
                text: "(n-2)/(3b+1)",
                source: "[Theorem 22]",
                eval: |n, _, b| ((n as f64) - 2.0) / (3.0 * (b as f64) + 1.0),
            },
            Table1Row::ConsensusReadableSwapUnbounded => BoundFormula {
                text: "Ω(√n)",
                source: "[EHS 1998]",
                eval: |n, _, _| (n as f64).sqrt(),
            },
            Table1Row::KSetRegisters => BoundFormula {
                text: "⌈n/k⌉",
                source: "[EGZ 2018]",
                eval: |n, k, _| ceil_div(n, k),
            },
            Table1Row::KSetSwap => BoundFormula {
                text: "⌈n/k⌉-1",
                source: "[Theorem 10]",
                eval: |n, k, _| ceil_div(n, k) - 1.0,
            },
            Table1Row::KSetReadableSwapUnbounded => BoundFormula {
                text: "1",
                source: "(trivial)",
                eval: |_, _, _| 1.0,
            },
        }
    }

    /// The upper-bound formula.
    pub fn upper_bound(&self) -> BoundFormula {
        match self {
            Table1Row::ConsensusRegisters => BoundFormula {
                text: "n",
                source: "[AH 1990, CIL 1994]",
                eval: |n, _, _| n as f64,
            },
            Table1Row::ConsensusSwap => BoundFormula {
                text: "n-1",
                source: "[Algorithm 1]",
                eval: |n, _, _| (n as f64) - 1.0,
            },
            Table1Row::ConsensusReadableBinarySwap | Table1Row::ConsensusReadableSwapDomainB => {
                BoundFormula {
                    text: "2n-1",
                    source: "[Bowman 2011]",
                    eval: |n, _, _| 2.0 * (n as f64) - 1.0,
                }
            }
            Table1Row::ConsensusReadableSwapUnbounded => BoundFormula {
                text: "n-1",
                source: "[EGSZ 2020]",
                eval: |n, _, _| (n as f64) - 1.0,
            },
            Table1Row::KSetRegisters => BoundFormula {
                text: "n-k+1",
                source: "[BRS 2018]",
                eval: |n, k, _| (n - k + 1) as f64,
            },
            Table1Row::KSetSwap | Table1Row::KSetReadableSwapUnbounded => BoundFormula {
                text: "n-k",
                source: "[Algorithm 1]",
                eval: |n, k, _| (n - k) as f64,
            },
        }
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {}", self.task(), self.objects())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_bounds_are_tight_for_consensus_from_swap() {
        let row = Table1Row::ConsensusSwap;
        for n in 2..=100 {
            assert_eq!(row.lower_bound().at(n, 1, 0), row.upper_bound().at(n, 1, 0));
        }
    }

    #[test]
    fn kset_gap_is_one_object_at_k_dividing_n() {
        // ⌈n/k⌉-1 vs n-k: the gap the conclusion section leaves open.
        let row = Table1Row::KSetSwap;
        assert_eq!(row.lower_bound().at(6, 2, 0), 2.0);
        assert_eq!(row.upper_bound().at(6, 2, 0), 4.0);
        // At k=1 they coincide.
        assert_eq!(row.lower_bound().at(6, 1, 0), row.upper_bound().at(6, 1, 0));
    }

    #[test]
    fn binary_row_dominates_general_bounded_row() {
        // For b = 2 the paper notes n-2 beats (n-2)/7.
        let n = 30;
        let binary = Table1Row::ConsensusReadableBinarySwap
            .lower_bound()
            .at(n, 1, 2);
        let general = Table1Row::ConsensusReadableSwapDomainB
            .lower_bound()
            .at(n, 1, 2);
        assert!(binary > general);
        assert!((general - 4.0).abs() < 1e-9, "(30-2)/7 = 4");
    }

    #[test]
    fn bounded_domain_beats_sqrt_when_b_small() {
        // The paper: for b ∈ o(√n) the new bound exceeds Ω(√n).
        let n = 10_000;
        let sqrt = Table1Row::ConsensusReadableSwapUnbounded
            .lower_bound()
            .at(n, 1, 0);
        let bounded = Table1Row::ConsensusReadableSwapDomainB
            .lower_bound()
            .at(n, 1, 4);
        assert!(bounded > sqrt, "{bounded} vs {sqrt}");
    }

    #[test]
    fn lower_bounds_never_exceed_upper_bounds() {
        for row in Table1Row::ALL {
            for n in 3..=64 {
                for k in 1..n {
                    if row.task() == "Consensus" && k != 1 {
                        continue;
                    }
                    for b in [2u64, 3, 8] {
                        let lo = row.lower_bound().at(n, k, b);
                        let hi = row.upper_bound().at(n, k, b);
                        assert!(
                            lo <= hi + 1e-9,
                            "{row}: lower {lo} > upper {hi} at n={n} k={k} b={b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn new_rows_flagged() {
        assert!(Table1Row::ConsensusSwap.is_new_in_paper());
        assert!(Table1Row::KSetSwap.is_new_in_paper());
        assert!(!Table1Row::ConsensusRegisters.is_new_in_paper());
        assert_eq!(
            Table1Row::ALL
                .iter()
                .filter(|r| r.is_new_in_paper())
                .count(),
            4
        );
    }

    #[test]
    fn formulas_render() {
        let f = Table1Row::KSetSwap.lower_bound();
        assert_eq!(f.to_string(), "⌈n/k⌉-1 [Theorem 10]");
    }
}
