//! Lemma 13: preserving bivalence across a block swap.
//!
//! *Let `C` be a configuration in which `Q` is bivalent and a set `S ⊆ P` of
//! processes cover a set `B` of readable swap objects. Then there is a
//! `Q`-only execution `γ` from `C` such that `Q` is bivalent in `Cγβ`, where
//! `β` is the block swap by `S`.*
//!
//! This module provides the two executable pieces: [`block_update`] (apply
//! each covering process's poised swap consecutively — the `β` of the
//! paper's covering arguments, generalized from block writes in Section 2)
//! and [`find_gamma`], which searches `Q`-only executions for one after
//! which the block swap leaves `Q` bivalent. The search follows the proof:
//! it walks prefixes of a `Q`-only execution deciding the value opposite to
//! the valency of `Cβ`, and the proof guarantees a bivalent switch point on
//! that path; we verify each candidate with the [`ValencyOracle`].

use swapcons_sim::{Configuration, ObjectId, ProcessId, Protocol};

use crate::valency::{Valency, ValencyOracle};

/// Apply the next poised operation of each process in `s`, consecutively and
/// in the given order — the paper's block swap (or block update) `β`.
///
/// Returns the objects accessed, in order.
///
/// # Errors
///
/// Returns a string description if any process has already decided or a
/// step is rejected by the simulator.
pub fn block_update<P: Protocol>(
    protocol: &P,
    config: &mut Configuration<P>,
    s: &[ProcessId],
) -> Result<Vec<ObjectId>, String> {
    let mut touched = Vec::with_capacity(s.len());
    for &pid in s {
        let rec = config.step(protocol, pid).map_err(|e| e.to_string())?;
        touched.push(rec.object);
    }
    Ok(touched)
}

/// Whether every process in `s` is poised to apply a *nontrivial* operation,
/// each to a distinct object — i.e. `s` covers a set of `|s|` objects
/// (Section 2's covering notion, generalized to historyless objects).
pub fn covers_distinct_objects<P: Protocol>(
    protocol: &P,
    config: &Configuration<P>,
    s: &[ProcessId],
) -> bool {
    let mut seen = std::collections::HashSet::new();
    for &pid in s {
        match config.poised(protocol, pid) {
            Some((obj, op)) if op.is_nontrivial() => {
                if !seen.insert(obj) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

/// Outcome of [`find_gamma`].
#[derive(Clone, Debug)]
pub struct GammaOutcome {
    /// The `Q`-only schedule `γ` found.
    pub gamma: Vec<ProcessId>,
    /// Number of candidate prefixes tested.
    pub candidates_tested: usize,
}

/// Search for the Lemma 13 execution `γ`: a `Q`-only schedule from `config`
/// such that `Q` remains bivalent after the block swap by `s`.
///
/// The search walks the proof's path: starting from the empty `γ`
/// (sufficient when `Cβ` is already bivalent), it extends along `Q`-only
/// executions — prioritized by the oracle's decision witnesses — testing
/// bivalence of `C·γ·β` for each prefix.
///
/// Returns `None` when the bounded oracle cannot certify any candidate
/// (either genuinely impossible — which the lemma rules out for correct
/// protocols with truly bivalent `Q` — or budgets too small).
pub fn find_gamma<P: Protocol>(
    protocol: &P,
    config: &Configuration<P>,
    q: &[ProcessId],
    s: &[ProcessId],
    oracle: &ValencyOracle,
    max_prefix: usize,
) -> Option<GammaOutcome> {
    let mut tested = 0usize;

    // Candidate 0: empty γ.
    let check = |gamma: &[ProcessId], tested: &mut usize| -> Option<bool> {
        *tested += 1;
        let mut world = config.clone();
        for &pid in gamma {
            if world.decision(pid).is_some() {
                return Some(false);
            }
            world.step(protocol, pid).ok()?;
        }
        // Every process in s must still be coverable (they take no steps in
        // γ, so they are).
        let mut after_block = world.clone();
        block_update(protocol, &mut after_block, s).ok()?;
        Some(oracle.valency(protocol, &after_block, q) == Valency::Bivalent)
    };

    if check(&[], &mut tested)? {
        return Some(GammaOutcome {
            gamma: vec![],
            candidates_tested: tested,
        });
    }

    // Determine the valency v of Cβ, then follow a Q-only execution deciding
    // v̄ (the proof's α), testing each prefix.
    let mut after_block = config.clone();
    block_update(protocol, &mut after_block, s).ok()?;
    let cb = oracle.query(protocol, &after_block, q);
    let v = match cb.verdict() {
        Valency::Univalent(v) => v,
        Valency::Bivalent => unreachable!("handled by the empty-γ candidate"),
        Valency::Unknown => {
            // Fall back: pick any value the oracle did find, else give up.
            *cb.witnesses.keys().next()?
        }
    };
    let vbar = 1 - v; // binary consensus
    let from_c = oracle.query(protocol, config, q);
    let alpha = from_c.witnesses.get(&vbar)?.clone();

    for len in 1..=alpha.len().min(max_prefix) {
        if check(&alpha[..len], &mut tested)? {
            return Some(GammaOutcome {
                gamma: alpha[..len].to_vec(),
                candidates_tested: tested,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_baselines::BinaryRacing;
    use swapcons_sim::runner;

    /// Drive two P-processes of BinaryRacing until both are poised to swap
    /// distinct cells, yielding a covering set.
    fn covering_config(
        p: &BinaryRacing,
        inputs: &[u64],
        covers: &[ProcessId],
    ) -> Option<Configuration<BinaryRacing>> {
        let mut c = Configuration::initial(p, inputs).unwrap();
        // Step each would-be coverer until it is poised on a Swap.
        for &pid in covers {
            for _ in 0..200 {
                match c.poised(p, pid) {
                    Some((_, op)) if op.is_nontrivial() => break,
                    Some(_) => {
                        c.step(p, pid).ok()?;
                    }
                    None => return None,
                }
            }
        }
        covers_distinct_objects(p, &c, covers).then_some(c)
    }

    #[test]
    fn block_update_applies_all_covering_swaps() {
        let p = BinaryRacing::with_track_len(4, 10);
        // p2 prefers 0, p3 prefers 1: they will cover cells on different
        // tracks (distinct objects).
        let c =
            covering_config(&p, &[0, 1, 0, 1], &[ProcessId(2), ProcessId(3)]).expect("coverable");
        let mut world = c.clone();
        let touched = block_update(&p, &mut world, &[ProcessId(2), ProcessId(3)]).unwrap();
        assert_eq!(touched.len(), 2);
        assert_ne!(touched[0], touched[1], "distinct covered objects");
        for &obj in &touched {
            assert_eq!(*world.value(obj), 1, "block swap set the covered cells");
        }
    }

    #[test]
    fn covering_predicate_rejects_readers() {
        let p = BinaryRacing::with_track_len(3, 10);
        let c = Configuration::initial(&p, &[0, 1, 0]).unwrap();
        // Initially every process is poised to Read (ScanMine).
        assert!(!covers_distinct_objects(&p, &c, &[ProcessId(2)]));
    }

    #[test]
    fn lemma13_gamma_found_for_binary_racing() {
        let p = BinaryRacing::with_track_len(4, 10);
        let q = [ProcessId(0), ProcessId(1)];
        let s = [ProcessId(2), ProcessId(3)];
        let c = covering_config(&p, &[0, 1, 0, 1], &s).expect("coverable");
        let oracle = ValencyOracle::new(150, 60_000);
        // Precondition: Q bivalent in C.
        assert_eq!(oracle.valency(&p, &c, &q), Valency::Bivalent);
        let outcome = find_gamma(&p, &c, &q, &s, &oracle, 40).expect("lemma 13 guarantees γ");
        // Verify the certificate independently: apply γ then β, check
        // bivalence.
        let mut world = c.clone();
        runner::replay(&p, &mut world, &outcome.gamma).unwrap();
        block_update(&p, &mut world, &s).unwrap();
        assert_eq!(oracle.valency(&p, &world, &q), Valency::Bivalent);
        assert!(
            outcome.gamma.iter().all(|pid| q.contains(pid)),
            "γ is Q-only"
        );
    }
}
