//! The Lemma 9 overwriting adversary — the engine of Theorem 10.
//!
//! Lemma 9: *let `C` be an initial configuration of a nondeterministic
//! solo-terminating k-set agreement algorithm from swap objects in which a
//! set of processes `Q` share input `v`, and let `α` be an execution from
//! `C` without steps by `Q` in which `k` values different from `v` are
//! decided. Then the algorithm uses at least `|Q|` swap objects.*
//!
//! The proof is an induction that this module executes literally
//! (Figure 1). Two worlds run side by side:
//!
//! * world `Cαγᵢ` — the "real" world, where `k` foreign values are decided;
//! * world `Dδᵢ` — the "clean" world, from the all-inputs-`v` initial
//!   configuration `D`, where validity forces every decision to be `v`.
//!
//! Invariant: a set `Aᵢ` of `i` swap objects has **equal values in both
//! worlds**, and `q₁, …, qᵢ` have executed the *same* steps in both. Process
//! `qᵢ₊₁`'s solo run from `Dδᵢ` must decide `v`; mirrored into the real
//! world it would violate k-agreement — so the run must first step outside
//! `Aᵢ`. That first outside step is a `Swap`, whose response the adversary
//! never lets `qᵢ₊₁` act on: stopping `qᵢ₊₁` right after the swap leaves the
//! new object with **equal values in both worlds** (a swap object's value is
//! just the last value swapped in, and `qᵢ₊₁` is in the same state in both).
//! `Aᵢ₊₁` gains a genuinely new object; after `|Q|` rounds the algorithm has
//! been forced to reveal `|Q|` distinct swap objects.
//!
//! The "learning requires overwriting" property of swap is exactly what
//! makes the mirroring sound — and exactly what fails for readable swap
//! objects (a `Read` would let `qᵢ₊₁` learn about `α` without leaving a
//! trace). [`run`] therefore rejects protocols whose schemas admit trivial
//! operations; the unit tests point it at [`ReadableRacing`] expecting that
//! rejection.
//!
//! [`ReadableRacing`]: swapcons_baselines::ReadableRacing

use std::collections::BTreeSet;
use std::fmt;

use swapcons_sim::engine;
use swapcons_sim::{Configuration, ObjectId, ProcessId, Protocol, SynthesisReport};

/// Outcome of a successful Lemma 9 construction.
#[derive(Clone, Debug)]
pub struct LemmaNineReport {
    /// The distinct objects forced, in the order they were discovered
    /// (`A_|Q|` in the proof).
    pub forced_objects: Vec<ObjectId>,
    /// Steps taken by each `qᵢ` during its `τᵢ sᵢ` phase (mirrored in both
    /// worlds).
    pub steps_per_process: Vec<usize>,
    /// Total simulator steps across both worlds.
    pub total_steps: usize,
}

impl fmt::Display for LemmaNineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "forced {} distinct swap objects ({:?}) in {} total steps",
            self.forced_objects.len(),
            self.forced_objects,
            self.total_steps
        )
    }
}

/// Why the construction could not be carried out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LemmaNineError {
    /// The protocol's schemas admit a trivial operation (e.g. a readable
    /// swap object): Lemma 9 only covers objects supporting nontrivial
    /// operations only.
    TrivialOpsSupported,
    /// A `qᵢ` failed to decide within the solo budget (not solo-terminating
    /// within the given bound).
    SoloBudgetExhausted {
        /// The process that failed to decide.
        process: ProcessId,
    },
    /// `qᵢ` decided without ever leaving `Aᵢ` — mirrored into the real world
    /// this violates k-agreement, i.e. the target algorithm is broken.
    AgreementViolatedByMirror {
        /// The offending process.
        process: ProcessId,
        /// The value it decided in both worlds.
        decided: u64,
    },
    /// The two worlds diverged during mirroring: the target protocol is not
    /// deterministic (or the invariant was violated — an internal error).
    MirrorDiverged {
        /// The process being mirrored.
        process: ProcessId,
    },
    /// The simulator rejected a step.
    Sim(String),
}

impl fmt::Display for LemmaNineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LemmaNineError::TrivialOpsSupported => write!(
                f,
                "protocol admits trivial operations; Lemma 9 applies to swap-only algorithms"
            ),
            LemmaNineError::SoloBudgetExhausted { process } => {
                write!(f, "{process} did not decide within the solo budget")
            }
            LemmaNineError::AgreementViolatedByMirror { process, decided } => write!(
                f,
                "{process} decided {decided} without leaving the equalized set: \
                 the mirrored run violates k-agreement"
            ),
            LemmaNineError::MirrorDiverged { process } => {
                write!(
                    f,
                    "worlds diverged while mirroring {process}: protocol nondeterministic?"
                )
            }
            LemmaNineError::Sim(msg) => write!(f, "simulator error: {msg}"),
        }
    }
}

impl std::error::Error for LemmaNineError {}

/// Execute the Lemma 9 construction.
///
/// * `real_world` — the configuration `Cα`: reached from an initial
///   configuration `C` in which every process of `q` has input `v`, by an
///   execution `α` containing no steps by `q` (the caller is responsible
///   for these preconditions; [`theorem10_consensus_witness`] builds them
///   for the consensus case).
/// * `q` — the fresh processes `q₁, …, q_|Q|`.
/// * `v` — their common input.
/// * `solo_budget` — step bound for each solo run (for obstruction-free
///   targets, their solo bound).
///
/// Returns the forced object set, of size exactly `q.len()`.
///
/// # Errors
///
/// See [`LemmaNineError`].
pub fn run<P: Protocol>(
    protocol: &P,
    real_world: &Configuration<P>,
    q: &[ProcessId],
    v: u64,
    solo_budget: usize,
) -> Result<LemmaNineReport, LemmaNineError> {
    // Lemma 9 requires objects that support only nontrivial operations.
    if protocol
        .schemas()
        .iter()
        .any(|s| s.kind().supports_trivial())
    {
        return Err(LemmaNineError::TrivialOpsSupported);
    }
    // World 1: Cα (then γ₁ γ₂ …). World 2: D (then δ₁ δ₂ …), D = all-v.
    let mut w1 = real_world.clone();
    let d_inputs = vec![v; protocol.task().n];
    let mut w2 = Configuration::initial(protocol, &d_inputs)
        .map_err(|e| LemmaNineError::Sim(e.to_string()))?;

    let mut equalized: BTreeSet<ObjectId> = BTreeSet::new();
    let mut forced_order: Vec<ObjectId> = Vec::new();
    let mut steps_per_process = Vec::with_capacity(q.len());
    let mut total_steps = 0usize;

    for &qi in q {
        // Find τ: run qᵢ solo *hypothetically* from Dδᵢ to find the longest
        // prefix touching only equalized objects. We step the clean world
        // directly and mirror into the real world step by step, stopping at
        // the first access outside Aᵢ (which we also take, as step s).
        let mut steps_this = 0usize;
        loop {
            if steps_this >= solo_budget {
                return Err(LemmaNineError::SoloBudgetExhausted { process: qi });
            }
            let Some((obj, _op)) = w2.poised(protocol, qi) else {
                // qᵢ decided in the clean world without leaving Aᵢ: the
                // identical mirrored run decided in the real world too —
                // k-agreement is violated there (k foreign values + v).
                let decided = w2.decision(qi).expect("not poised means decided");
                return Err(LemmaNineError::AgreementViolatedByMirror {
                    process: qi,
                    decided,
                });
            };
            let outside = !equalized.contains(&obj);
            // Take the step in both worlds. Indistinguishability argument:
            // qᵢ has equal states in both; if obj ∈ Aᵢ the object values are
            // equal, hence equal responses and equal successor states; if
            // outside, this is the final step sᵢ — a Swap whose *response*
            // may differ between worlds, but qᵢ takes no further steps, and
            // the swapped-in value (a function of qᵢ's pre-state alone)
            // equalizes the object.
            let rec2 = w2
                .step(protocol, qi)
                .map_err(|e| LemmaNineError::Sim(e.to_string()))?;
            let rec1 = w1
                .step(protocol, qi)
                .map_err(|e| LemmaNineError::Sim(e.to_string()))?;
            total_steps += 2;
            steps_this += 1;
            if rec1.object != rec2.object || rec1.op != rec2.op {
                return Err(LemmaNineError::MirrorDiverged { process: qi });
            }
            if outside {
                debug_assert!(
                    rec1.op.is_nontrivial(),
                    "swap-only schema guarantees nontrivial ops"
                );
                // The defining moment: the object q overwrote now has equal
                // values in both worlds.
                debug_assert_eq!(w1.value(obj), w2.value(obj));
                equalized.insert(obj);
                forced_order.push(obj);
                break;
            } else {
                // Inside Aᵢ: responses must have matched (equal values).
                if rec1.response != rec2.response {
                    return Err(LemmaNineError::MirrorDiverged { process: qi });
                }
                // Invariant: values in Aᵢ remain equal (same op applied to
                // equal values).
                debug_assert_eq!(w1.value(obj), w2.value(obj));
            }
        }
        steps_per_process.push(steps_this);
    }

    debug_assert_eq!(forced_order.len(), q.len());
    Ok(LemmaNineReport {
        forced_objects: forced_order,
        steps_per_process,
        total_steps,
    })
}

/// Adversary *synthesis* over the Lemma 8 landscape: search all schedules
/// (up to `depth` steps and `max_states` configurations) for the reachable
/// configuration from which some running process needs the **most** solo
/// steps to decide, and return that schedule as a replayable witness.
///
/// This is the companion worst-case to the hand-built adversaries in this
/// module: where [`run`] *constructs* a specific bad schedule the proof
/// describes, this searches the whole bounded schedule space for the
/// extremal one. For Algorithm 1 the paper's Lemma 8 caps the objective at
/// `8(n-k)` from *every* reachable configuration — so the searched maximum
/// is a machine-checked probe of that bound over the explored region (the
/// tests pin `best_score ≤ 8(n-k)`).
///
/// A process whose solo run exhausts `solo_budget` scores `solo_budget + 1`
/// — strictly worse than any in-budget run, so obstruction-freedom
/// violations (were any reachable) would dominate the search and surface
/// as the extremum.
///
/// # Panics
///
/// Panics if `inputs` are invalid for the protocol's task.
pub fn searched_solo_pressure<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    depth: usize,
    max_states: usize,
    solo_budget: usize,
) -> SynthesisReport<P> {
    engine::synthesize(protocol, inputs, depth, max_states, |p, c| {
        c.running()
            .into_iter()
            .map(|pid| {
                swapcons_sim::runner::solo_run_cloned(p, c, pid, solo_budget)
                    .map(|(out, _)| out.steps as u64)
                    .unwrap_or(solo_budget as u64 + 1)
            })
            .max()
            .unwrap_or(0)
    })
}

/// The Theorem 10 base case (`k = 1`), packaged: for an n-process consensus
/// protocol from swap objects, build `C` (process `p₀` with input 0, the
/// rest with input 1), run `α` = `p₀`'s solo-terminating execution (it
/// decides 0, being unable to distinguish `C` from the all-0 configuration),
/// and unleash the adversary with `Q = {p₁, …, p_{n-1}}`, `v = 1` — forcing
/// `n-1` distinct swap objects.
///
/// # Errors
///
/// See [`LemmaNineError`]; additionally fails if `p₀`'s solo run exhausts
/// `solo_budget`.
pub fn theorem10_consensus_witness<P: Protocol>(
    protocol: &P,
    solo_budget: usize,
) -> Result<LemmaNineReport, LemmaNineError> {
    let task = protocol.task();
    assert_eq!(
        task.k, 1,
        "theorem10_consensus_witness drives consensus protocols"
    );
    assert!(task.m >= 2, "need at least two input values");
    let mut inputs = vec![1u64; task.n];
    inputs[0] = 0;
    let mut c_alpha = Configuration::initial(protocol, &inputs)
        .map_err(|e| LemmaNineError::Sim(e.to_string()))?;
    // α: p₀ solo until it decides (0, by validity + indistinguishability).
    let out = swapcons_sim::runner::solo_run(protocol, &mut c_alpha, ProcessId(0), solo_budget)
        .map_err(|e| LemmaNineError::Sim(e.to_string()))?;
    debug_assert_eq!(
        out.decision, 0,
        "p0 cannot distinguish C from the all-0 configuration"
    );
    let q: Vec<ProcessId> = (1..task.n).map(ProcessId).collect();
    run(protocol, &c_alpha, &q, 1, solo_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_baselines::ReadableRacing;
    use swapcons_core::pairs::PairsKSet;
    use swapcons_core::SwapKSet;
    use swapcons_sim::runner;

    #[test]
    fn forces_all_n_minus_1_objects_of_algorithm1() {
        // Theorem 10 is tight for k=1: Algorithm 1 uses n-1 objects and the
        // adversary forces every single one of them.
        for n in 2..=10 {
            let p = SwapKSet::consensus(n, 2);
            let report = theorem10_consensus_witness(&p, p.solo_step_bound()).unwrap();
            assert_eq!(report.forced_objects.len(), n - 1, "n={n}");
            // All distinct, all within range.
            let set: BTreeSet<ObjectId> = report.forced_objects.iter().copied().collect();
            assert_eq!(set.len(), n - 1);
            assert!(set.iter().all(|o| o.index() < n - 1));
        }
    }

    #[test]
    fn forces_all_pair_objects_of_pairs_kset() {
        // PairsKSet(2k, k): k pairs, each with its own object. C: the pair
        // partners p0, p2, ..., p_{2k-2} hold inputs 0..k-1 and decide them
        // in α; Q = the other partners with input k — forcing all k objects.
        for k in 1..=4usize {
            let n = 2 * k;
            let m = (k + 1) as u64;
            let p = PairsKSet::new(n, k, m);
            let mut inputs = vec![0u64; n];
            for pair in 0..k {
                inputs[2 * pair] = pair as u64;
                inputs[2 * pair + 1] = k as u64; // Q's common input v = k
            }
            let mut c_alpha = Configuration::initial(&p, &inputs).unwrap();
            // α: the even-indexed processes decide 0..k-1 (one step each).
            for pair in 0..k {
                let out = runner::solo_run(&p, &mut c_alpha, ProcessId(2 * pair), 2).unwrap();
                assert_eq!(out.decision, pair as u64);
            }
            let q: Vec<ProcessId> = (0..k).map(|pair| ProcessId(2 * pair + 1)).collect();
            let report = run(&p, &c_alpha, &q, k as u64, 4).unwrap();
            assert_eq!(report.forced_objects.len(), k, "k={k}");
        }
    }

    #[test]
    fn searched_solo_pressure_respects_lemma8_and_replays() {
        // Machine-search the worst case of Lemma 8's 8(n-k) solo bound over
        // a bounded region of Algorithm 1's schedule space.
        let p = SwapKSet::consensus(3, 2);
        let inputs = [0u64, 1, 1];
        let bound = p.solo_step_bound();
        let report = lemma9_pressure(&p, &inputs, bound);
        assert!(report.complete, "budgets must cover the depth-8 region");
        // Lemma 8, searched: no reachable configuration in the region
        // needs more than 8(n-k) solo steps (a score of bound+1 would mean
        // an exhausted budget, i.e. an obstruction-freedom violation).
        assert!(
            report.best_score <= bound as u64,
            "searched worst case {} exceeds Lemma 8's bound {bound}",
            report.best_score
        );
        // The adversary found genuinely worse configurations than the
        // initial one (where a solo run needs 4 steps at n=3).
        let initial = Configuration::initial(&p, &inputs).unwrap();
        let from_initial = (0..3)
            .map(|i| {
                runner::solo_run_cloned(&p, &initial, ProcessId(i), bound)
                    .unwrap()
                    .0
                    .steps as u64
            })
            .max()
            .unwrap();
        assert!(
            report.best_score > from_initial,
            "searched pressure {} must beat the initial configuration's {from_initial}",
            report.best_score
        );
        // The extremal schedule is a real, replayable witness.
        let mut replay = initial.clone();
        runner::replay(&p, &mut replay, &report.schedule).unwrap();
        assert_eq!(replay, report.config, "witness replays to the extremum");
    }

    /// The pressure search at the budgets the unit tests and the bench
    /// smoke share.
    fn lemma9_pressure(
        p: &SwapKSet,
        inputs: &[u64],
        solo_budget: usize,
    ) -> swapcons_sim::SynthesisReport<SwapKSet> {
        searched_solo_pressure(p, inputs, 8, 60_000, solo_budget)
    }

    #[test]
    fn rejects_readable_swap_protocols() {
        // Reads learn without overwriting: the construction must refuse.
        let p = ReadableRacing::new(4, 2);
        let inputs = [0, 1, 1, 1];
        let c = Configuration::initial(&p, &inputs).unwrap();
        let q: Vec<ProcessId> = (1..4).map(ProcessId).collect();
        let err = run(&p, &c, &q, 1, p.solo_step_bound()).unwrap_err();
        assert_eq!(err, LemmaNineError::TrivialOpsSupported);
    }

    #[test]
    fn forced_objects_monotone_growth() {
        // Each qᵢ contributes exactly one new object and at least one step.
        let p = SwapKSet::consensus(6, 2);
        let report = theorem10_consensus_witness(&p, p.solo_step_bound()).unwrap();
        assert_eq!(report.steps_per_process.len(), 5);
        assert!(report.steps_per_process.iter().all(|&s| s >= 1));
        assert!(report.total_steps >= 2 * 5);
        assert!(report.to_string().contains("5 distinct swap objects"));
    }

    #[test]
    fn solo_budget_too_small_reported() {
        let p = SwapKSet::consensus(4, 2);
        // p0's own α run already needs more than 1 step.
        let err = theorem10_consensus_witness(&p, 1).unwrap_err();
        assert!(matches!(err, LemmaNineError::Sim(_)));
    }

    #[test]
    fn works_for_kset_with_explicit_alpha() {
        // Algorithm 1 with k=1 but a *hand-built* α: p0 and nobody else.
        // Equivalent to the packaged driver; exercises the public `run`.
        let p = SwapKSet::consensus(3, 2);
        let mut c_alpha = Configuration::initial(&p, &[0, 1, 1]).unwrap();
        runner::solo_run(&p, &mut c_alpha, ProcessId(0), p.solo_step_bound()).unwrap();
        let report = run(
            &p,
            &c_alpha,
            &[ProcessId(1), ProcessId(2)],
            1,
            p.solo_step_bound(),
        )
        .unwrap();
        assert_eq!(report.forced_objects.len(), 2);
    }
}
