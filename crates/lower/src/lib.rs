//! Executable lower-bound machinery for *The Space Complexity of Consensus
//! from Swap*.
//!
//! The paper's lower bounds are **constructive**: each proof describes an
//! adversary that, pointed at any algorithm of the relevant class, builds
//! executions forcing the algorithm to use many objects. This crate
//! implements those adversaries against the [`swapcons_sim::Protocol`]
//! interface, so they can literally be run against Algorithm 1, the
//! baselines, or any future algorithm:
//!
//! * [`lemma9`] — the overwriting adversary behind Theorem 10 (`⌈n/k⌉ - 1`
//!   swap objects for k-set agreement): repeatedly dispatches fresh
//!   processes whose solo runs must step outside the already-equalized
//!   object set, forcing one new distinct object per process (Figure 1).
//!   Run against Algorithm 1 with `k = 1` it forces **all** `n-1` objects —
//!   the bound is exactly tight.
//! * [`valency`] — bounded-exhaustive bivalence/univalence computation for
//!   process groups (the Section 2 valency notions; Observation 12).
//! * [`lemma13`] — the block-swap bivalence extension: given a bivalent pair
//!   `Q` and a covering set `S`, find a `Q`-only execution after which the
//!   block swap leaves `Q` bivalent.
//! * [`section5`] — the inductive constructions of Lemma 16 (readable
//!   binary swap objects, Theorem 18: `n-2`) and Lemma 20 (domain size `b`,
//!   Theorem 22: `(n-2)/(3b+1)`), executed step by step with their
//!   invariants checked on every iteration (Figures 2–6).
//! * [`bounds`] / [`table1`] — the formula side of Table 1 and its
//!   regeneration: every row rendered with the paper's lower/upper bound
//!   formulas evaluated next to the *measured* object counts of this
//!   repository's implementations.
//!
//! # Example: force all `n-1` objects of Algorithm 1
//!
//! ```
//! use swapcons_core::SwapKSet;
//! use swapcons_lower::lemma9;
//!
//! let protocol = SwapKSet::consensus(5, 2);
//! let report = lemma9::theorem10_consensus_witness(&protocol, 200).unwrap();
//! assert_eq!(report.forced_objects.len(), 4); // |Q| = n-1 distinct objects
//! ```

// Unsafe-code audit (PR 6): the adversaries are pure safe Rust.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod lemma13;
pub mod lemma9;
pub mod section5;
pub mod table1;
pub mod theorem10;
pub mod valency;

pub use bounds::{BoundFormula, Table1Row};
pub use lemma9::LemmaNineReport;
pub use valency::{Valency, ValencyOracle};
