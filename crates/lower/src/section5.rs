//! The Section 5 inductive constructions, executable: Lemma 16 (readable
//! binary swap objects — Theorem 18's `n-2`) and Lemma 20 (domain size `b` —
//! Theorem 22's `(n-2)/(3b+1)`), with Lemma 14's critical-step search as the
//! shared engine (Figures 2–6).
//!
//! # What runs here
//!
//! The proofs build, stage by stage (`i = 0 … n-2`), configurations `Cᵢ` in
//! which the special pair `Q = {q₀, q₁}` stays bivalent, while extracting
//! from each sacrificed process `pᵢ` one unit of "space evidence":
//!
//! * **Lemma 16** splits evidence into `Xᵢ` (objects whose value is frozen —
//!   touching their critical value collapses `Q` to univalence) and `Yᵢ`
//!   (objects covered by a set `Sᵢ` of poised processes), with
//!   `|Xᵢ ∪ Yᵢ| = i`.
//! * **Lemma 20** refines the accounting for domain size `b` into forbidden
//!   value sets `fᵢ(B)`, `gᵢ(B)` and the covering set `Sᵢ`, with
//!   `Σ_B (2|fᵢ(B)| + |gᵢ(B)|) + |Sᵢ| ≥ i`.
//!
//! The engine of both is Lemma 14: run `pᵢ`'s deterministic solo execution
//! `δ` in a *hypothetical* world, then search for real `(Q ∪ Pᵢ)`-only
//! executions `α_j` that are indistinguishable to `pᵢ` from ever-longer
//! prefixes `δ_j` while keeping `Q` bivalent. The largest such `j` marks the
//! **critical step** `d`: the operation whose effect on its target object
//! `B⋆` cannot be tolerated by any bivalence-preserving world. Whether `d`
//! would change `B⋆`'s value decides the case split (frozen vs covered).
//!
//! # Exactness caveat
//!
//! Bivalence is computed by the bounded [`ValencyOracle`], and the witness
//! search is breadth-bounded, so the drivers are *bounded-faithful*: every
//! stage they complete is a machine-checked instance of the proof's
//! invariants (verified explicitly at each step via
//! [`StageOutcome::invariants_ok`]), but on large instances they may stop
//! early and say so. The paper guarantees the construction always exists;
//! the drivers *find* it on the small instances the tests and benches run.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use swapcons_sim::search::VisitedSet;
use swapcons_sim::{
    engine, Configuration, ObjectId, ProcessId, Protocol, SimValue, StepRecord, SynthesisReport,
};

use crate::lemma13::{self, block_update};
use crate::valency::{Valency, ValencyOracle};

/// Search budgets for the Section 5 drivers.
#[derive(Clone, Copy, Debug)]
pub struct Budgets {
    /// Step budget for each hypothetical solo execution `δ`.
    pub solo: usize,
    /// Maximum `j` levels to probe in the Lemma 14 search.
    pub max_j: usize,
    /// Maximum BFS nodes per `α_j` search level.
    pub max_nodes: usize,
    /// Maximum bivalence-oracle candidates tested per level.
    pub max_candidates: usize,
    /// Valency oracle budgets.
    pub oracle: ValencyOracle,
}

impl Budgets {
    /// Budgets suitable for the small instances exercised in tests/benches.
    pub fn small() -> Self {
        Budgets {
            solo: 400,
            max_j: 40,
            max_nodes: 250_000,
            max_candidates: 3_000,
            oracle: ValencyOracle::new(150, 60_000),
        }
    }

    /// [`Budgets::small`] with the valency oracle — the drivers' inner loop —
    /// running symmetry-reduced. Stage outcomes are unchanged (the oracle's
    /// verdicts are); the bivalence certifications just explore fewer
    /// configurations each. Since the oracle's stabilizer subgroup learned
    /// to compose object permutations (track swaps, pair swaps) with `σ`,
    /// the reduction also bites on the Lemma 16 query shape itself —
    /// balanced configurations of `BinaryRacing` pair up under the
    /// track-swapping renaming instead of degrading to the trivial group.
    pub fn small_reduced() -> Self {
        Budgets {
            oracle: ValencyOracle::new(150, 60_000).with_symmetry_reduction(),
            ..Self::small()
        }
    }
}

/// How the critical object was accounted at a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageCase {
    /// Lemma 16 case 1 / Lemma 20 case 1: the critical operation would not
    /// change the object — its observed value is *frozen/forbidden*.
    Frozen,
    /// Case 2: the critical operation is a value-changing swap — `pᵢ` now
    /// *covers* the object.
    Covered,
}

/// Outcome of one stage of the induction.
#[derive(Clone, Debug)]
pub struct StageOutcome {
    /// Stage index `i` (the sacrificed process is `pᵢ`).
    pub i: usize,
    /// The sacrificed process.
    pub process: ProcessId,
    /// Length of the Lemma 13 prefix `γ` used (Lemma 16 only; 0 for
    /// Lemma 20).
    pub gamma_len: usize,
    /// The critical index `j` (length of the mirrored solo prefix).
    pub j: usize,
    /// The critical object `B⋆`.
    pub object: ObjectId,
    /// The value `v⋆ = value(B⋆, C'δⱼ)` at the critical step.
    pub value: u64,
    /// The case split.
    pub case: StageCase,
    /// Whether the stage's inductive invariants were re-verified.
    pub invariants_ok: bool,
}

/// Result of a Section 5 construction run.
#[derive(Clone, Debug)]
pub struct Section5Report {
    /// Per-stage outcomes, in order.
    pub stages: Vec<StageOutcome>,
    /// Lemma 16: the frozen set `X`; Lemma 20: objects with nonempty `f`.
    pub frozen: Vec<ObjectId>,
    /// Lemma 16: the covered set `Y`; Lemma 20: objects with nonempty `g`.
    pub covered: Vec<ObjectId>,
    /// Lemma 20 accounting value `Σ(2|f|+|g|) + |S|` (equals
    /// `|X| + |Y|` for Lemma 16 runs).
    pub accounting: usize,
    /// Number of stages the paper's construction would complete (`n-2`).
    pub target_stages: usize,
    /// Notes about early stops (budget exhaustion etc.).
    pub notes: Vec<String>,
}

impl Section5Report {
    /// Whether the full `n-2` stages completed.
    pub fn complete(&self) -> bool {
        self.stages.len() == self.target_stages
    }
}

impl fmt::Display for Section5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} stages, accounting {} (frozen {:?}, covered {:?}){}",
            self.stages.len(),
            self.target_stages,
            self.accounting,
            self.frozen,
            self.covered,
            if self.notes.is_empty() {
                String::new()
            } else {
                format!("; notes: {:?}", self.notes)
            }
        )
    }
}

/// Record `pid`'s solo execution from `config` (hypothetically — on a
/// clone), up to `budget` steps or decision.
fn record_solo<P: Protocol>(
    protocol: &P,
    config: &Configuration<P>,
    pid: ProcessId,
    budget: usize,
) -> Vec<StepRecord<P::Value>> {
    let mut world = config.clone();
    let mut records = Vec::new();
    for _ in 0..budget {
        if world.decision(pid).is_some() {
            break;
        }
        match world.step(protocol, pid) {
            Ok(rec) => records.push(rec),
            Err(_) => break,
        }
    }
    records
}

/// Lemma 14's engine: find the largest `j ≤ max_j` for which some
/// `(q ∪ others ∪ {pi})`-only execution from `base` is indistinguishable to
/// `pi` from `δ_j` and leaves `q` bivalent, preferring witnesses whose
/// *next* δ-step targets an object not yet in `used` (the proofs show the
/// critical object is always fresh; the preference steers the bounded
/// search the same way).
///
/// Two phases:
/// 1. **Solo chain** (cheap): `pi` replaying `δ` verbatim from `base` *is*
///    an `α`-candidate for every prefix length — determinism guarantees the
///    responses match. Test bivalence along the chain.
/// 2. **Interleaved BFS** (fallback): only when the solo chain yields no
///    fresh critical object, search interleavings with `q ∪ others`, pruning
///    any branch where `pi`'s mirrored response diverges from `δ`.
///
/// Returns `(j, configuration after α_j)`; `j = 0` with the base
/// configuration when no extension is certifiable.
#[allow(clippy::too_many_arguments)]
fn critical_step_search<P: Protocol>(
    protocol: &P,
    base: &Configuration<P>,
    q: &[ProcessId],
    others: &[ProcessId],
    pi: ProcessId,
    delta: &[StepRecord<P::Value>],
    used: &BTreeSet<ObjectId>,
    budgets: &Budgets,
    notes: &mut Vec<String>,
) -> (usize, Configuration<P>) {
    let max_level = delta.len().min(budgets.max_j);
    let is_fresh = |t: usize| t < delta.len() && !used.contains(&delta[t].object);

    // Phase 1: the solo chain.
    let mut chain: Vec<(usize, Configuration<P>)> = Vec::new();
    {
        let mut world = base.clone();
        for (t, want) in delta.iter().enumerate().take(max_level) {
            match world.step(protocol, pi) {
                Ok(rec) => {
                    debug_assert!(
                        rec.object == want.object && rec.op == want.op,
                        "determinism: solo replay mirrors δ"
                    );
                    if rec.response != want.response {
                        break;
                    }
                }
                Err(_) => break,
            }
            if budgets.oracle.valency(protocol, &world, q) == Valency::Bivalent {
                chain.push((t + 1, world.clone()));
            }
        }
        if base_bivalent(protocol, base, q, budgets) {
            chain.insert(0, (0, base.clone()));
        }
    }
    // Prefer the deepest bivalent prefix whose next step is fresh.
    if let Some((j, config)) = chain.iter().rev().find(|(j, _)| is_fresh(*j)) {
        return (*j, config.clone());
    }

    // Phase 2: interleaved BFS.
    let mut best: Option<(usize, Configuration<P>)> = chain.into_iter().next_back();
    let steppers: Vec<ProcessId> = q
        .iter()
        .chain(others.iter())
        .chain(std::iter::once(&pi))
        .copied()
        .collect();
    // Visited states, partitioned by mirrored-prefix length `t` (the BFS
    // key is the pair (configuration, t)): one fingerprint set per level.
    let mut visited: Vec<VisitedSet<P>> = Vec::new();
    let mut queue: VecDeque<(Configuration<P>, usize)> = VecDeque::new();
    queue.push_back((base.clone(), 0));
    let mut nodes = 0usize;
    let mut candidates = 0usize;

    while let Some((config, t)) = queue.pop_front() {
        if visited.len() <= t {
            visited.resize_with(t + 1, VisitedSet::new);
        }
        if !visited[t].insert(&config) {
            continue;
        }
        nodes += 1;
        if nodes > budgets.max_nodes {
            notes.push(format!(
                "α-search node budget hit at j={}",
                best.as_ref().map_or(0, |(j, _)| *j)
            ));
            break;
        }
        // Candidate test: fresh next step, deeper than the current best.
        if is_fresh(t)
            && best.as_ref().is_none_or(|(j, _)| t > *j || !is_fresh(*j))
            && candidates < budgets.max_candidates
        {
            candidates += 1;
            if budgets.oracle.valency(protocol, &config, q) == Valency::Bivalent {
                best = Some((t, config.clone()));
            }
        }
        for &pid in &steppers {
            if config.decision(pid).is_some() {
                continue;
            }
            if pid == pi {
                if t >= max_level {
                    continue;
                }
                let mut child = config.clone();
                if let Ok(rec) = child.step(protocol, pi) {
                    let want = &delta[t];
                    if rec.object == want.object
                        && rec.op == want.op
                        && rec.response == want.response
                    {
                        queue.push_back((child, t + 1));
                    }
                }
            } else {
                let mut child = config.clone();
                if child.step(protocol, pid).is_ok() {
                    queue.push_back((child, t));
                }
            }
        }
    }
    best.unwrap_or_else(|| (0, base.clone()))
}

fn base_bivalent<P: Protocol>(
    protocol: &P,
    base: &Configuration<P>,
    q: &[ProcessId],
    budgets: &Budgets,
) -> bool {
    budgets.oracle.valency(protocol, base, q) == Valency::Bivalent
}

/// Adversarial probe of Lemma 14(b) (Figure 3) around a found critical
/// step: sample `(q ∪ others)`-only executions `λ'` from `alpha_config`;
/// whenever the critical object's value equals the value `pi` observed at
/// its critical step in the hypothetical world, extend by `pi`'s step `d`
/// and test whether `Q` is still certifiably bivalent afterwards.
///
/// Returns `(preconditioned_samples, still_bivalent)`. For the paper's
/// *true* critical index `j` (minimal with all `δ_{j+1}`-indistinguishable
/// worlds univalent), `still_bivalent` would be 0. The bounded
/// `critical_step_search` may settle for a smaller index `j̃ ≤ j`
/// (preferring fresh objects and certifiable bivalence), in which case a
/// positive count *measures the gap* between the bounded search and the
/// exact lemma — the drivers' stage invariants do not depend on it, but the
/// probe is reported in the Section 5 bench output as a fidelity metric.
// The arity mirrors the lemma statement (protocol, configuration, Q, R',
// pi, critical step, budgets, sample count); bundling them would only
// obscure the correspondence.
#[allow(clippy::too_many_arguments)]
pub fn verify_lemma14b<P: Protocol>(
    protocol: &P,
    alpha_config: &Configuration<P>,
    q: &[ProcessId],
    others: &[ProcessId],
    pi: ProcessId,
    critical: &StepRecord<P::Value>,
    budgets: &Budgets,
    samples: u64,
) -> (usize, usize) {
    use rand::{Rng, SeedableRng};
    let critical_value = match critical.response.value() {
        Some(v) => v.clone(),
        None => return (0, 0),
    };
    let steppers: Vec<ProcessId> = q.iter().chain(others.iter()).copied().collect();
    let mut checked = 0usize;
    let mut violations = 0usize;
    for seed in 0..samples {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut world = alpha_config.clone();
        let lambda_len = rng.gen_range(0..12);
        for _ in 0..lambda_len {
            let alive: Vec<ProcessId> = steppers
                .iter()
                .copied()
                .filter(|&p| world.decision(p).is_none())
                .collect();
            if alive.is_empty() {
                break;
            }
            let p = alive[rng.gen_range(0..alive.len())];
            if world.step(protocol, p).is_err() {
                break;
            }
        }
        // Precondition: value(B, Cα_jλ') == value(B, C'δ_j).
        if world.value(critical.object) != &critical_value {
            continue;
        }
        if world.decision(pi).is_some() {
            continue;
        }
        // Extend by pi's step d; pi is poised to apply exactly `critical.op`
        // (it took no steps in λ').
        let Ok(rec) = world.step(protocol, pi) else {
            continue;
        };
        if rec.op != critical.op || rec.object != critical.object {
            continue;
        }
        checked += 1;
        if budgets.oracle.valency(protocol, &world, q) == Valency::Bivalent {
            violations += 1;
        }
    }
    (checked, violations)
}

/// Adversary synthesis for the Section 5 racing regime: search all
/// schedules (up to `depth` steps and `max_states` configurations) for the
/// configuration maximizing the total value mass swapped into the shared
/// objects **while nobody has decided** — for the monotone-track protocols
/// (`BinaryRacing`-style, `Value = u64`) that is exactly the total track
/// progress of the livelocked race, the analog of Algorithm 1's lap totals.
///
/// Returns the extremal schedule as a replayable witness
/// ([`SynthesisReport::schedule`]). Configurations with any decision score
/// zero, so the search optimizes strictly inside the contended
/// (bivalence-compatible) region the Section 5 adversaries live in.
///
/// # Panics
///
/// Panics if `inputs` are invalid for the protocol's task.
pub fn searched_object_pressure<P>(
    protocol: &P,
    inputs: &[u64],
    depth: usize,
    max_states: usize,
) -> SynthesisReport<P>
where
    P: Protocol<Value = u64>,
{
    engine::synthesize(protocol, inputs, depth, max_states, |_, c| {
        if c.decisions_iter().flatten().next().is_some() {
            return 0;
        }
        c.object_values().iter().sum()
    })
}

/// Whether the recorded step `rec` would change its object's value (the
/// case-split test: `value(B, C'δⱼd) = value(B, C'δⱼ)`?).
fn step_changes_value<P: Protocol>(rec: &StepRecord<P::Value>) -> Option<bool> {
    let before = rec.response.value()?;
    Some(match rec.op.payload() {
        None => false, // Read
        Some(new) => new != before,
    })
}

/// Run the Lemma 16 construction (readable binary swap objects) against a
/// binary consensus protocol.
///
/// Convention: processes `0` and `1` are the special pair `Q` (inputs 0 and
/// 1 respectively — Observation 12 makes them bivalent initially); processes
/// `2 … n-1` are `P = {p₀, …, p_{n-3}}`, sacrificed in order.
///
/// # Panics
///
/// Panics if the protocol solves anything other than binary consensus with
/// at least 3 processes.
pub fn lemma16_driver<P>(protocol: &P, inputs: &[u64], budgets: &Budgets) -> Section5Report
where
    P: Protocol,
{
    let task = protocol.task();
    assert_eq!(task.k, 1, "Section 5 concerns consensus");
    assert_eq!(task.m, 2, "Section 5 concerns *binary* consensus");
    assert!(task.n >= 3, "need at least one sacrificial process");
    assert_eq!(inputs[0], 0, "q0 must hold input 0 (Observation 12)");
    assert_eq!(inputs[1], 1, "q1 must hold input 1 (Observation 12)");

    let q = [ProcessId(0), ProcessId(1)];
    let target_stages = task.n - 2;
    let mut notes = Vec::new();

    let mut config = Configuration::initial(protocol, inputs).expect("valid inputs");
    if budgets.oracle.valency(protocol, &config, &q) != Valency::Bivalent {
        notes.push("initial bivalence not certified within oracle budget".into());
        return Section5Report {
            stages: vec![],
            frozen: vec![],
            covered: vec![],
            accounting: 0,
            target_stages,
            notes,
        };
    }

    let mut x: BTreeSet<ObjectId> = BTreeSet::new();
    let mut y: BTreeSet<ObjectId> = BTreeSet::new();
    let mut s: Vec<ProcessId> = Vec::new(); // covering set, swaps Y
    let mut stages = Vec::new();

    for i in 0..target_stages {
        let pi = ProcessId(2 + i);
        let others: Vec<ProcessId> = ((2 + i + 1)..task.n).map(ProcessId).collect();

        // Lemma 13: find γ such that Q is bivalent in C γ β (and hence, by
        // Observation 15, in C γ).
        let gamma_len;
        match lemma13::find_gamma(protocol, &config, &q, &s, &budgets.oracle, budgets.max_j) {
            Some(outcome) => {
                gamma_len = outcome.gamma.len();
                for &pid in &outcome.gamma {
                    if config.step(protocol, pid).is_err() {
                        break;
                    }
                }
            }
            None => {
                notes.push(format!("stage {i}: Lemma 13 search failed (budget)"));
                break;
            }
        }
        if budgets.oracle.valency(protocol, &config, &q) != Valency::Bivalent {
            notes.push(format!("stage {i}: bivalence after γ not certified"));
            break;
        }

        // δ: pi's solo execution from C_i γ (hypothetical world C' = C).
        let delta = record_solo(protocol, &config, pi, budgets.solo);
        if delta.is_empty() {
            notes.push(format!("stage {i}: δ empty"));
            break;
        }

        // Lemma 14: critical step.
        let used: BTreeSet<ObjectId> = x.union(&y).copied().collect();
        let (j, next_config) = critical_step_search(
            protocol, &config, &q, &others, pi, &delta, &used, budgets, &mut notes,
        );
        if j >= delta.len() {
            notes.push(format!("stage {i}: δ fully mirrored — agreement suspect"));
            break;
        }
        let d = &delta[j];
        let Some(changes) = step_changes_value::<P>(d) else {
            notes.push(format!("stage {i}: critical step carries no value"));
            break;
        };
        let b_star = d.object;
        let v_star = d
            .response
            .value()
            .and_then(|v| v.domain_point())
            .unwrap_or_default();

        // Case split and the paper's disjointness facts (B⋆ ∉ Xᵢ ∪ Yᵢ).
        let fresh = !x.contains(&b_star) && !y.contains(&b_star);
        let case = if changes {
            y.insert(b_star);
            s.push(pi);
            StageCase::Covered
        } else {
            x.insert(b_star);
            StageCase::Frozen
        };
        config = next_config;

        // Invariants: (a) Q bivalent in C_{i+1}; (b) S covers distinct
        // objects; disjointness; |X ∪ Y| = i+1.
        let inv_a = budgets.oracle.valency(protocol, &config, &q) == Valency::Bivalent;
        let inv_b = s.is_empty() || lemma13::covers_distinct_objects(protocol, &config, &s);
        let inv_sets = x.is_disjoint(&y) && x.len() + y.len() == i + 1;
        let invariants_ok = inv_a && inv_b && inv_sets && fresh;
        stages.push(StageOutcome {
            i,
            process: pi,
            gamma_len,
            j,
            object: b_star,
            value: v_star,
            case,
            invariants_ok,
        });
        if !invariants_ok {
            notes.push(format!("stage {i}: invariant re-verification failed"));
            break;
        }
    }

    Section5Report {
        accounting: x.len() + y.len(),
        frozen: x.into_iter().collect(),
        covered: y.into_iter().collect(),
        stages,
        target_stages,
        notes,
    }
}

/// Run the Lemma 20 construction (readable swap objects with domain size
/// `b`): the same engine with forbidden-value accounting
/// `Σ(2|f|+|g|) + |S| ≥ i`.
///
/// Differences from Lemma 16, per the paper: the hypothetical world is
/// `C' = Cᵢβᵢ` (block swap *before* the solo run), there is no `γ`, and the
/// evidence is per-(object, value) rather than per-object.
///
/// # Panics
///
/// Same preconditions as [`lemma16_driver`].
pub fn lemma20_driver<P>(protocol: &P, inputs: &[u64], budgets: &Budgets) -> Section5Report
where
    P: Protocol,
{
    let task = protocol.task();
    assert_eq!(task.k, 1, "Section 5 concerns consensus");
    assert_eq!(task.m, 2, "binary consensus inputs");
    assert!(task.n >= 3);
    assert_eq!(inputs[0], 0);
    assert_eq!(inputs[1], 1);

    let q = [ProcessId(0), ProcessId(1)];
    let target_stages = task.n - 2;
    let mut notes = Vec::new();

    let mut config = Configuration::initial(protocol, inputs).expect("valid inputs");
    let mut f: BTreeMap<ObjectId, BTreeSet<u64>> = BTreeMap::new();
    let mut g: BTreeMap<ObjectId, BTreeSet<u64>> = BTreeMap::new();
    let mut s: Vec<ProcessId> = Vec::new();
    let mut stages = Vec::new();

    for i in 0..target_stages {
        let pi = ProcessId(2 + i);
        let others: Vec<ProcessId> = ((2 + i + 1)..task.n).map(ProcessId).collect();

        // C' = C_i β_i: hypothetical world with the block swap applied.
        let mut hypothetical = config.clone();
        if !s.is_empty() && block_update(protocol, &mut hypothetical, &s).is_err() {
            notes.push(format!("stage {i}: block swap failed"));
            break;
        }
        let delta = record_solo(protocol, &hypothetical, pi, budgets.solo);
        if delta.is_empty() {
            notes.push(format!("stage {i}: δ empty"));
            break;
        }

        // Lemma 20's evidence is per-(object, value): prefer critical steps
        // whose (B⋆, v⋆) pair is new. The driver approximates this by
        // steering away from objects whose f/g sets are already full.
        let used: BTreeSet<ObjectId> = f
            .iter()
            .chain(g.iter())
            .filter(|(_, vs)| !vs.is_empty())
            .map(|(obj, _)| *obj)
            .collect();
        let (j, next_config) = critical_step_search(
            protocol, &config, &q, &others, pi, &delta, &used, budgets, &mut notes,
        );
        if j >= delta.len() {
            notes.push(format!("stage {i}: δ fully mirrored — agreement suspect"));
            break;
        }
        let d = &delta[j];
        let Some(changes) = step_changes_value::<P>(d) else {
            notes.push(format!("stage {i}: critical step carries no value"));
            break;
        };
        let b_star = d.object;
        let v_star = d
            .response
            .value()
            .and_then(|v| v.domain_point())
            .unwrap_or_default();

        let case = if changes {
            // Case 2: g(B⋆) += v⋆; S gains pi (replacing any member that
            // covered B⋆).
            g.entry(b_star).or_default().insert(v_star);
            s.retain(|&p| {
                config
                    .poised(protocol, p)
                    .map(|(obj, _)| obj != b_star)
                    .unwrap_or(false)
            });
            s.push(pi);
            StageCase::Covered
        } else {
            // Case 1: f(B⋆) += v⋆; S drops a member poised to swap v⋆ into
            // B⋆, if any.
            f.entry(b_star).or_default().insert(v_star);
            if let Some(pos) = s.iter().position(|&p| {
                config
                    .poised(protocol, p)
                    .map(|(obj, op)| {
                        obj == b_star && op.payload().and_then(|v| v.domain_point()) == Some(v_star)
                    })
                    .unwrap_or(false)
            }) {
                s.remove(pos);
            }
            StageCase::Frozen
        };
        config = next_config;

        // Invariant (d): Σ(2|f|+|g|) + |S| ≥ i+1; (a) bivalence.
        let accounting: usize = f.values().map(|vs| 2 * vs.len()).sum::<usize>()
            + g.values().map(|vs| vs.len()).sum::<usize>()
            + s.len();
        let inv_a = budgets.oracle.valency(protocol, &config, &q) == Valency::Bivalent;
        let inv_d = accounting > i;
        let invariants_ok = inv_a && inv_d;
        stages.push(StageOutcome {
            i,
            process: pi,
            gamma_len: 0,
            j,
            object: b_star,
            value: v_star,
            case,
            invariants_ok,
        });
        if !invariants_ok {
            notes.push(format!("stage {i}: invariant re-verification failed"));
            break;
        }
    }

    let accounting: usize = f.values().map(|vs| 2 * vs.len()).sum::<usize>()
        + g.values().map(|vs| vs.len()).sum::<usize>()
        + s.len();
    Section5Report {
        frozen: f.keys().copied().collect(),
        covered: g.keys().copied().collect(),
        accounting,
        stages,
        target_stages,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_baselines::BinaryRacing;

    #[test]
    fn lemma16_completes_one_stage_at_n3() {
        // n=3: Q = {0,1}, one sacrificial process p0 = ProcessId(2).
        let p = BinaryRacing::with_track_len(3, 8);
        let report = lemma16_driver(&p, &[0, 1, 0], &Budgets::small());
        assert!(report.complete(), "{report}");
        assert_eq!(report.accounting, 1);
        assert!(report.stages.iter().all(|s| s.invariants_ok), "{report}");
    }

    #[test]
    fn lemma16_accumulates_distinct_objects_at_n4() {
        let p = BinaryRacing::with_track_len(4, 8);
        let report = lemma16_driver(&p, &[0, 1, 0, 1], &Budgets::small());
        // The paper guarantees n-2 = 2 stages exist; the bounded driver
        // should find them on this small instance.
        assert!(report.complete(), "{report}");
        assert_eq!(report.accounting, 2, "{report}");
        let all: BTreeSet<ObjectId> = report
            .frozen
            .iter()
            .chain(report.covered.iter())
            .copied()
            .collect();
        assert_eq!(all.len(), 2, "distinct evidence objects: {report}");
    }

    #[test]
    fn reduced_oracle_drives_lemma16_to_identical_stages() {
        // Thread the symmetry-reduced oracle through the whole Section 5
        // engine: every stage outcome (process, critical object, case) must
        // match the unreduced run bit for bit.
        let p = BinaryRacing::with_track_len(3, 8);
        let full = lemma16_driver(&p, &[0, 1, 0], &Budgets::small());
        let reduced = lemma16_driver(&p, &[0, 1, 0], &Budgets::small_reduced());
        assert!(full.complete() && reduced.complete(), "{full} vs {reduced}");
        assert_eq!(full.stages.len(), reduced.stages.len());
        for (a, b) in full.stages.iter().zip(&reduced.stages) {
            assert_eq!((a.process, a.object, a.case), (b.process, b.object, b.case));
            assert!(b.invariants_ok);
        }
        assert_eq!(full.accounting, reduced.accounting);
    }

    #[test]
    fn reduced_oracle_drives_lemma16_n4_with_object_symmetry() {
        // n=4, inputs [0,1,0,1]: the initial bivalence certification (and
        // any stage whose configuration stays track-balanced) runs with the
        // composed track-swap stabilizer instead of the trivial group;
        // stage outcomes must still match the unreduced run bit for bit.
        let p = BinaryRacing::with_track_len(4, 8);
        let full = lemma16_driver(&p, &[0, 1, 0, 1], &Budgets::small());
        let reduced = lemma16_driver(&p, &[0, 1, 0, 1], &Budgets::small_reduced());
        assert!(full.complete() && reduced.complete(), "{full} vs {reduced}");
        assert_eq!(full.stages.len(), reduced.stages.len());
        for (a, b) in full.stages.iter().zip(&reduced.stages) {
            assert_eq!((a.process, a.object, a.case), (b.process, b.object, b.case));
            assert!(b.invariants_ok);
        }
        assert_eq!(full.accounting, reduced.accounting);
    }

    #[test]
    fn lemma20_accounting_reaches_target_at_n3() {
        let p = BinaryRacing::with_track_len(3, 8);
        let report = lemma20_driver(&p, &[0, 1, 0], &Budgets::small());
        assert!(report.complete(), "{report}");
        assert!(report.accounting >= 1, "{report}");
        assert!(report.stages.iter().all(|s| s.invariants_ok));
    }

    #[test]
    fn stage_outcomes_record_critical_steps() {
        let p = BinaryRacing::with_track_len(3, 8);
        let report = lemma16_driver(&p, &[0, 1, 0], &Budgets::small());
        let stage = &report.stages[0];
        assert_eq!(stage.process, ProcessId(2));
        assert!(stage.value <= 1, "binary domain value");
    }

    #[test]
    fn searched_object_pressure_finds_a_contended_witness() {
        // The racing-pressure synthesis on BinaryRacing: the searched
        // schedule advances track cells (3 steps per advance: two frontier
        // scans + a swap) without letting anyone decide.
        let p = BinaryRacing::with_track_len(3, 8);
        let inputs = [0u64, 1, 0];
        let report = searched_object_pressure(&p, &inputs, 12, 150_000);
        assert!(report.complete, "budgets must cover the depth-12 region");
        assert!(
            report.best_score >= 2,
            "depth 12 admits at least two advances: {report:?}"
        );
        assert!(
            report.config.decided_values().is_empty(),
            "pressure is only scored in undecided configurations"
        );
        // The witness replays, and the objective recomputes on the replay.
        let mut replay = swapcons_sim::Configuration::initial(&p, &inputs).unwrap();
        swapcons_sim::runner::replay(&p, &mut replay, &report.schedule).unwrap();
        assert_eq!(replay, report.config);
        assert_eq!(
            replay.object_values().iter().sum::<u64>(),
            report.best_score
        );
        // Obstruction-freedom holds even at maximal pressure: everyone
        // decides once left alone, and safety survives the whole episode.
        let mut rec = report.config.clone();
        for pid in rec.running() {
            swapcons_sim::runner::solo_run(&p, &mut rec, pid, p.solo_step_bound()).unwrap();
        }
        assert!(rec.all_decided());
        assert!(p.task().check(&inputs, &rec.decisions()).is_ok());
    }

    #[test]
    fn lemma14b_probe_measures_search_fidelity() {
        // Reconstruct stage 0 of the Lemma 16 run by hand and probe
        // Lemma 14(b) around the found critical step. The bounded search
        // may settle below the paper's exact critical index, so the probe's
        // still-bivalent count is a fidelity metric, not a correctness
        // assertion; the contract here is that the probe exercises real
        // preconditioned samples and that pi's critical step collapses
        // bivalence in at least some of them (it would collapse *all* of
        // them at the exact index).
        let p = BinaryRacing::with_track_len(3, 8);
        let budgets = Budgets::small();
        let q = [ProcessId(0), ProcessId(1)];
        let pi = ProcessId(2);
        let config = swapcons_sim::Configuration::initial(&p, &[0, 1, 0]).unwrap();
        let delta = record_solo(&p, &config, pi, budgets.solo);
        let mut notes = Vec::new();
        let (j, alpha_config) = critical_step_search(
            &p,
            &config,
            &q,
            &[],
            pi,
            &delta,
            &BTreeSet::new(),
            &budgets,
            &mut notes,
        );
        assert!(j < delta.len(), "critical step exists");
        let critical = &delta[j];
        let (checked, still_bivalent) =
            verify_lemma14b(&p, &alpha_config, &q, &[], pi, critical, &budgets, 200);
        assert!(
            checked > 0,
            "sampling produced no preconditioned extensions"
        );
        assert!(
            still_bivalent < checked,
            "the critical step never collapsed bivalence: {still_bivalent}/{checked}"
        );
    }
}
