//! Regeneration of Table 1: formulas evaluated side by side with the
//! **measured** space (object counts) of this repository's implementations.
//!
//! For each row that has an executable witness in this repository, the
//! generator instantiates the algorithm and reports
//! [`swapcons_sim::Protocol::num_objects`] — the machine-checked space
//! complexity (every operation is validated against the object schemas at
//! run time, so the count cannot lie about the object kinds either).
//!
//! The paper-vs-measured comparison encodes the substitutions documented in
//! DESIGN.md: the register rows carry our commit–adopt (`2n`) against the
//! literature `n`; the binary row carries our monotone-track algorithm
//! (`Θ(n)`, concretely `2·8(n+3)`) against Bowman's `2n-1`.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
use swapcons_baselines::{BinaryRacing, CommitAdoptConsensus, ReadableRacing, RegisterKSet};
use swapcons_core::pairs::PairsKSet;
use swapcons_core::SwapKSet;
use swapcons_sim::explore::{CheckReport, ModelChecker};
use swapcons_sim::Protocol;

use crate::bounds::Table1Row;
use crate::valency::{ValencyOracle, ValencyResult};

/// One evaluated cell of the regenerated Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Entry {
    /// The row.
    pub row: Table1Row,
    /// Number of processes.
    pub n: usize,
    /// Agreement degree (1 for the consensus rows).
    pub k: usize,
    /// Domain size (only meaningful for the bounded-domain row).
    pub b: u64,
    /// Lower-bound formula text.
    pub lower_text: String,
    /// Lower bound evaluated.
    pub lower: f64,
    /// Upper-bound formula text.
    pub upper_text: String,
    /// Upper bound evaluated.
    pub upper: f64,
    /// Object count of our implementation witnessing the row, if any.
    pub measured: Option<usize>,
    /// Name of the witnessing implementation.
    pub witness: Option<String>,
}

/// Instantiate the repository's witness for a row, returning
/// `(object count, name)`.
pub fn witness(row: Table1Row, n: usize, k: usize, _b: u64) -> Option<(usize, String)> {
    match row {
        Table1Row::ConsensusRegisters => {
            let p = CommitAdoptConsensus::new(n, 2);
            Some((p.num_objects(), p.name()))
        }
        Table1Row::ConsensusSwap => {
            let p = SwapKSet::consensus(n, 2);
            Some((p.num_objects(), p.name()))
        }
        Table1Row::ConsensusReadableBinarySwap => {
            let p = BinaryRacing::new(n);
            Some((p.num_objects(), p.name()))
        }
        // Our binary-domain algorithm is the domain-size-b witness at b = 2
        // (any b >= 2 admits it; smaller spaces for larger b are open).
        Table1Row::ConsensusReadableSwapDomainB => {
            let p = BinaryRacing::new(n);
            Some((p.num_objects(), p.name()))
        }
        Table1Row::ConsensusReadableSwapUnbounded => {
            let p = ReadableRacing::new(n, 2);
            Some((p.num_objects(), p.name()))
        }
        Table1Row::KSetRegisters => {
            let p = RegisterKSet::new(n, k, (k + 1) as u64);
            Some((p.num_objects(), p.name()))
        }
        Table1Row::KSetSwap => {
            let p = SwapKSet::new(n, k, (k + 1) as u64);
            Some((p.num_objects(), p.name()))
        }
        Table1Row::KSetReadableSwapUnbounded => {
            // A swap object is a readable swap object: Algorithm 1 witnesses
            // this row too. When k >= ⌈n/2⌉ the pairs construction is even
            // wait-free; prefer it there to display the distinct algorithm.
            if 2 * k >= n {
                let p = PairsKSet::new(n, k, (k + 1) as u64);
                Some((p.num_objects(), p.name()))
            } else {
                let p = SwapKSet::new(n, k, (k + 1) as u64);
                Some((p.num_objects(), p.name()))
            }
        }
    }
}

/// Evaluate every row at the given parameter grid. Consensus rows use the
/// `n` values only; k-set rows use every `(n, k)` pair with `k < n` and
/// `k > 1` (the paper's k-set results concern `n > k > 1`; `k = 1` is the
/// consensus rows).
pub fn generate(ns: &[usize], ks: &[usize], b: u64) -> Vec<Table1Entry> {
    let mut entries = Vec::new();
    for row in Table1Row::ALL {
        let is_kset = row.task() == "k-set agreement";
        for &n in ns {
            let k_values: Vec<usize> = if is_kset {
                ks.iter().copied().filter(|&k| k > 1 && k < n).collect()
            } else {
                vec![1]
            };
            for k in k_values {
                let lower = row.lower_bound();
                let upper = row.upper_bound();
                let w = witness(row, n, k, b);
                entries.push(Table1Entry {
                    row,
                    n,
                    k,
                    b,
                    lower_text: lower.to_string(),
                    lower: lower.at(n, k, b),
                    upper_text: upper.to_string(),
                    upper: upper.at(n, k, b),
                    measured: w.as_ref().map(|(c, _)| *c),
                    witness: w.map(|(_, name)| name),
                });
            }
        }
    }
    entries
}

/// Render entries as an aligned plain-text table (the bench harness prints
/// this; EXPERIMENTS.md records it).
pub fn render(entries: &[Table1Entry]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<55} {:>4} {:>3} | {:>22} {:>9} | {:>22} {:>9} | {:>9}",
        "Task / Objects", "n", "k", "lower bound", "=", "upper bound", "=", "measured"
    );
    let _ = writeln!(out, "{}", "-".repeat(148));
    for e in entries {
        let _ = writeln!(
            out,
            "{:<55} {:>4} {:>3} | {:>22} {:>9.2} | {:>22} {:>9.2} | {:>9}",
            format!(
                "{}{}",
                e.row,
                if e.row.is_new_in_paper() { " *" } else { "" }
            ),
            e.n,
            e.k,
            e.lower_text,
            e.lower,
            e.upper_text,
            e.upper,
            e.measured
                .map_or_else(|| "-".to_string(), |m| m.to_string()),
        );
    }
    out.push_str(
        "* = new result in the paper. 'measured' = objects allocated by this repo's witness.\n",
    );
    out
}

/// Bounded model-check of every row's witness implementation at a small
/// instance, run **twice** — once with exact dedup, once symmetry-reduced —
/// returning `(row, full report, reduced report)` triples. The bench
/// harness and CI smoke assert the two verdicts agree for every row, so a
/// broken symmetry declaration in any witness fails the build, not just the
/// protocol's own unit tests.
///
/// Budgets are sized for a single-core CI box: depth-bounded on the racing
/// rows (their reachable spaces are infinite), exhaustive on the wait-free
/// ones.
pub fn verify_witnesses() -> Vec<(Table1Row, CheckReport, CheckReport)> {
    verify_witnesses_threaded(1)
}

/// [`verify_witnesses`] with every check sharded across `threads` workers
/// (`1` = the sequential sweep). The CI parity gate runs this at several
/// thread counts and asserts the reports match the sequential ones.
pub fn verify_witnesses_threaded(threads: usize) -> Vec<(Table1Row, CheckReport, CheckReport)> {
    // (row, protocol instance parameters, depth, states, solo budget).
    let mut out = Vec::new();
    let mut verify =
        |row: Table1Row, checker: ModelChecker, run: &dyn Fn(ModelChecker) -> CheckReport| {
            let checker = checker.with_threads(threads);
            let full = run(checker);
            let reduced = run(checker.with_symmetry_reduction());
            out.push((row, full, reduced));
        };
    {
        let p = CommitAdoptConsensus::new(2, 2);
        verify(
            Table1Row::ConsensusRegisters,
            ModelChecker::new(14, 150_000).with_solo_budget(p.solo_step_bound()),
            &|c| c.check_all_inputs(&p),
        );
    }
    {
        let p = SwapKSet::consensus(3, 2);
        verify(
            Table1Row::ConsensusSwap,
            ModelChecker::new(12, 300_000).with_solo_budget(p.solo_step_bound()),
            &|c| c.check(&p, &[1, 1, 1]),
        );
    }
    {
        let p = BinaryRacing::with_track_len(2, 8);
        verify(
            Table1Row::ConsensusReadableBinarySwap,
            ModelChecker::new(16, 150_000),
            &|c| c.check_all_inputs(&p),
        );
    }
    {
        let p = ReadableRacing::new(2, 2);
        verify(
            Table1Row::ConsensusReadableSwapUnbounded,
            ModelChecker::new(16, 150_000).with_solo_budget(p.solo_step_bound()),
            &|c| c.check_all_inputs(&p),
        );
    }
    {
        let p = RegisterKSet::new(3, 2, 2);
        verify(
            Table1Row::KSetRegisters,
            ModelChecker::new(12, 150_000),
            &|c| c.check_all_inputs(&p),
        );
    }
    {
        let p = SwapKSet::new(3, 2, 3);
        verify(
            Table1Row::KSetSwap,
            ModelChecker::new(12, 150_000).with_solo_budget(p.solo_step_bound()),
            &|c| c.check(&p, &[0, 1, 2]),
        );
    }
    {
        let p = PairsKSet::new(4, 2, 3);
        verify(
            Table1Row::KSetReadableSwapUnbounded,
            ModelChecker::new(10, 150_000).with_solo_budget(1),
            &|c| c.check_all_inputs(&p),
        );
    }
    out
}

/// The oracle half of the engine-parity sweep: run [`ValencyOracle`]
/// queries — full and symmetry-reduced — over representative fixtures
/// (the wait-free pairs construction, Algorithm 1 after a commitment,
/// the racing baseline's bivalent start), returning
/// `(label, full result, reduced result)` triples. The bench harness and
/// CI smoke assert verdicts and witness-value sets agree for every row, so
/// a regression in the shared search core's oracle client (or a broken
/// symmetry declaration) fails the build, not just unit tests.
pub fn verify_oracle_parity() -> Vec<(String, ValencyResult, ValencyResult)> {
    verify_oracle_parity_threaded(1)
}

/// [`verify_oracle_parity`] with every query sharded across `threads`
/// workers (`1` = the sequential oracle). The CI parity gate runs this at
/// several thread counts and asserts verdicts and witness-value sets match
/// the sequential ones.
pub fn verify_oracle_parity_threaded(
    threads: usize,
) -> Vec<(String, ValencyResult, ValencyResult)> {
    use swapcons_sim::{Configuration, ProcessId};
    let mut out = Vec::new();
    {
        // Finite group-only space, no bivalence early-exit: {p1, p3} are
        // partners in different pairs whose other halves never move, so
        // both can only decide their common input — the whole (tiny) space
        // is enumerated and both searches must report it exhaustively.
        let p = PairsKSet::new(4, 2, 3);
        let c = Configuration::initial(&p, &[0, 1, 2, 1]).unwrap();
        let group = [ProcessId(1), ProcessId(3)];
        let oracle = ValencyOracle::new(20, 30_000).with_threads(threads);
        out.push((
            "pairs_kset n=4 {p1,p3}".into(),
            oracle.query(&p, &c, &group),
            oracle.with_symmetry_reduction().query(&p, &c, &group),
        ));
    }
    {
        // Algorithm 1 after p0 commits: agreement forces univalence toward
        // p0's value in the (depth-bounded) remainder.
        let p = SwapKSet::consensus(3, 2);
        let mut c = Configuration::initial(&p, &[1, 0, 0]).unwrap();
        swapcons_sim::runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
        let group = [ProcessId(1), ProcessId(2)];
        // The post-commitment {p1,p2} space is finite (agreement pins the
        // race); depth 60 closes it in both modes, so the verdicts are the
        // definitive `Univalent(1)` rather than a truncation artifact.
        let oracle = ValencyOracle::new(60, 150_000).with_threads(threads);
        out.push((
            "alg1 n=3 post-commit {p1,p2}".into(),
            oracle.query(&p, &c, &group),
            oracle.with_symmetry_reduction().query(&p, &c, &group),
        ));
    }
    {
        // Observation 12: the special pair is bivalent initially.
        let p = BinaryRacing::with_track_len(4, 10);
        let c = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let oracle = ValencyOracle::new(60, 60_000).with_threads(threads);
        out.push((
            "binary_racing n=4 {q0,q1}".into(),
            oracle.query(&p, &c, &group),
            oracle.with_symmetry_reduction().query(&p, &c, &group),
        ));
    }
    {
        // The Lemma 16 query shape with its object-symmetry stabilizer:
        // balanced inputs make (q0 q1)(p2 p3) with the coupled track swap
        // fix the initial configuration, and a depth too small for any solo
        // decision forces the bounded search to actually run — the reduced
        // query drains about half the configurations (group order 2, where
        // the σ = id oracle of PR 3/4 degraded to trivial).
        let p = BinaryRacing::with_track_len(4, 10);
        let c = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let oracle = ValencyOracle::new(10, 60_000).with_threads(threads);
        out.push((
            "binary_racing n=4 track-swap {q0,q1} d10".into(),
            oracle.query(&p, &c, &group),
            oracle.with_symmetry_reduction().query(&p, &c, &group),
        ));
    }
    {
        // Pair-swap stabilizer on the pairs construction: {p1, p3} are
        // partners of *different* pairs, so only the composed pair swap
        // (π moving both pairs, τ moving both objects, σ forced by the
        // inputs) stabilizes the query — the oracle's first genuinely
        // object-permuting subgroup.
        let p = PairsKSet::new(4, 2, 3);
        let c = Configuration::initial(&p, &[0, 1, 2, 1]).unwrap();
        let group = [ProcessId(1), ProcessId(3)];
        let oracle = ValencyOracle::new(20, 30_000).with_threads(threads);
        out.push((
            "pairs_kset n=4 pair-swap {p1,p3}".into(),
            oracle.query(&p, &c, &group),
            oracle.with_symmetry_reduction().query(&p, &c, &group),
        ));
    }
    {
        // The TAS register pool: swapping the two processes drags their
        // single-writer proposal registers along via the protocol's
        // `rename_object` override; with distinct inputs the renaming needs
        // σ ≠ id, which the stabilizer subgroup now admits. The query
        // fast-paths to bivalence (both solo runs decide), so this row
        // pins group nontriviality and verdict parity rather than a state
        // reduction.
        let p = swapcons_core::hierarchy::TasConsensus;
        let c = Configuration::initial(&p, &[3, 8]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let oracle = ValencyOracle::new(6, 10_000).with_threads(threads);
        out.push((
            "tas_consensus register-pool {p0,p1}".into(),
            oracle.query(&p, &c, &group),
            oracle.with_symmetry_reduction().query(&p, &c, &group),
        ));
    }
    out
}

/// Cross-validation: no implementation in this repository may use fewer
/// objects than the paper's lower bound for its row. Returns the offending
/// entries (empty = all consistent).
pub fn violations(entries: &[Table1Entry]) -> Vec<&Table1Entry> {
    entries
        .iter()
        .filter(|e| {
            // The unbounded-domain consensus row's lower bound is
            // asymptotic (Ω(√n)); constant factors make a literal numeric
            // comparison meaningless there.
            e.row != Table1Row::ConsensusReadableSwapUnbounded
                && e.measured
                    .is_some_and(|m| (m as f64) < e.lower.ceil() - 1e-9)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_rows() {
        let entries = generate(&[4, 8], &[2], 2);
        // 5 consensus rows × 2 n-values + 3 k-set rows × 2 (n,k) pairs.
        assert_eq!(entries.len(), 5 * 2 + 3 * 2);
    }

    #[test]
    fn no_implementation_beats_a_lower_bound() {
        // The key consistency check between the algorithms and the theory.
        let entries = generate(&[3, 4, 6, 8, 16, 32], &[2, 3, 4], 2);
        let bad = violations(&entries);
        assert!(
            bad.is_empty(),
            "implementations beat paper lower bounds: {bad:?}"
        );
    }

    #[test]
    fn headline_row_is_exactly_tight() {
        for n in [4usize, 8, 64] {
            let entries = generate(&[n], &[], 2);
            let swap_row = entries
                .iter()
                .find(|e| e.row == Table1Row::ConsensusSwap)
                .unwrap();
            assert_eq!(swap_row.measured, Some(n - 1));
            assert_eq!(swap_row.lower, (n - 1) as f64);
            assert_eq!(swap_row.upper, (n - 1) as f64);
        }
    }

    #[test]
    fn kset_swap_row_matches_algorithm1() {
        let entries = generate(&[9], &[3], 2);
        let e = entries
            .iter()
            .find(|e| e.row == Table1Row::KSetSwap)
            .unwrap();
        assert_eq!(e.measured, Some(6)); // n-k = 9-3
        assert_eq!(e.lower, 2.0); // ⌈9/3⌉-1
        assert_eq!(e.upper, 6.0); // n-k
    }

    #[test]
    fn pairs_witnesses_kset_readable_when_k_large() {
        let (count, name) = witness(Table1Row::KSetReadableSwapUnbounded, 6, 4, 2).unwrap();
        assert_eq!(count, 2);
        assert!(name.contains("pairs"), "{name}");
        let (count, name) = witness(Table1Row::KSetReadableSwapUnbounded, 6, 2, 2).unwrap();
        assert_eq!(count, 4);
        assert!(name.contains("Algorithm 1"), "{name}");
    }

    #[test]
    fn witness_verification_reduced_matches_full() {
        for (row, full, reduced) in verify_witnesses() {
            assert!(full.passed(), "{row}: {full}");
            assert!(
                full.same_verdict(&reduced),
                "{row}: reduced verdict diverged: {full} vs {reduced}"
            );
            assert!(
                reduced.states <= full.states,
                "{row}: reduction may never explore more: {full} vs {reduced}"
            );
        }
    }

    #[test]
    fn oracle_parity_reduced_matches_full() {
        for (label, full, reduced) in verify_oracle_parity() {
            assert_eq!(
                full.verdict(),
                reduced.verdict(),
                "{label}: verdicts diverged: {full:?} vs {reduced:?}"
            );
            assert_eq!(
                full.witnesses
                    .keys()
                    .collect::<std::collections::BTreeSet<_>>(),
                reduced
                    .witnesses
                    .keys()
                    .collect::<std::collections::BTreeSet<_>>(),
                "{label}: witness-value sets diverged"
            );
            assert!(
                reduced.states <= full.states,
                "{label}: reduction may never explore more: {full:?} vs {reduced:?}"
            );
        }
    }

    #[test]
    fn oracle_object_symmetry_rows_have_nontrivial_stabilizers() {
        let rows = verify_oracle_parity();
        let find = |label: &str| {
            rows.iter()
                .find(|(l, _, _)| l == label)
                .unwrap_or_else(|| panic!("missing fixture {label}"))
        };
        for label in [
            "binary_racing n=4 track-swap {q0,q1} d10",
            "pairs_kset n=4 pair-swap {p1,p3}",
            "tas_consensus register-pool {p0,p1}",
        ] {
            let (_, full, reduced) = find(label);
            assert_eq!(full.symmetry_group, 1, "{label}: {full:?}");
            assert!(
                reduced.symmetry_group > 1,
                "{label}: the composed stabilizer degraded to trivial: {reduced:?}"
            );
        }
        // Where the engine actually runs (no bivalence fast path), the
        // nontrivial stabilizer must buy a reduction factor > 1.
        for label in [
            "binary_racing n=4 track-swap {q0,q1} d10",
            "pairs_kset n=4 pair-swap {p1,p3}",
        ] {
            let (_, full, reduced) = find(label);
            assert!(
                reduced.states < full.states,
                "{label}: no state reduction: {full:?} vs {reduced:?}"
            );
        }
    }

    #[test]
    fn render_produces_a_line_per_entry() {
        let entries = generate(&[4], &[2], 2);
        let text = render(&entries);
        // Header + separator + entries + footnote.
        assert_eq!(text.lines().count(), 2 + entries.len() + 1);
        assert!(text.contains("measured"));
    }
}
