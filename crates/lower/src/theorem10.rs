//! The full Theorem 10 induction, executable.
//!
//! *For all `n > k ≥ 1`, every nondeterministic solo-terminating n-process
//! (k+1)-valued k-set agreement algorithm from swap objects uses at least
//! `⌈n/k⌉ - 1` objects.*
//!
//! The proof inducts on `k`. At each level, for the current process universe
//! `R` (initially all of `P`):
//!
//! * pick `R' ⊆ R` of size `⌈|R|(k-1)/k⌉`;
//! * **either** some `R'`-only execution decides all `k` values
//!   `0, …, k-1` — then Lemma 9 with `Q = R − R'` (inputs `v = k`) forces
//!   `|R − R'| ≥ ⌈n/k⌉ - 1` distinct objects;
//! * **or** no such execution exists — then the algorithm solves `(k-1)`-set
//!   agreement among `R'`, and the induction descends.
//!
//! The base case `k = 1` is the consensus argument
//! ([`crate::lemma9::theorem10_consensus_witness`]).
//!
//! [`kset_witness`] executes this decision procedure against a concrete
//! algorithm: it *searches* (bounded, seeded-random `R'`-only schedules) for
//! a k-valued execution; on success it runs the Lemma 9 adversary, on
//! failure it descends exactly like the proof. Either way it ends with a
//! concrete set of forced objects whose size is checked against
//! `⌈n/k⌉ - 1`. Against Algorithm 1 the search provably must fail at every
//! level (an `R'`-only execution cannot complete laps for two different
//! leaders without `n-k` outside processes — Lemma 5), so the run descends
//! all the way and documents *why* the bound has the `⌈n/k⌉` shape. Against
//! the pairs construction the search succeeds immediately.

use std::fmt;

use swapcons_sim::{runner, Configuration, ProcessId, Protocol};

use crate::lemma9::{self, LemmaNineError, LemmaNineReport};

/// What happened at one level of the induction.
#[derive(Clone, Debug)]
pub enum LevelOutcome {
    /// A `k`-valued `R'`-only execution was found; Lemma 9 ran with
    /// `Q = R − R'`.
    KValuedExecutionFound {
        /// The level's `k`.
        k: usize,
        /// Size of the sub-universe `R'` whose execution decided `k` values.
        r_prime: usize,
        /// The seed of the schedule that exhibited it.
        seed: u64,
    },
    /// No such execution within budget: descended to `k-1` on `R'`.
    Descended {
        /// The level's `k`.
        k: usize,
        /// Size of the next universe.
        r_prime: usize,
        /// Schedules tried before giving up.
        schedules_tried: u64,
    },
}

/// Result of the full induction.
#[derive(Clone, Debug)]
pub struct Theorem10Report {
    /// Per-level outcomes, top down.
    pub levels: Vec<LevelOutcome>,
    /// The Lemma 9 report from the terminal level.
    pub lemma9: LemmaNineReport,
    /// The bound the theorem asserts for the original instance:
    /// `⌈n/k⌉ - 1`.
    pub theorem_bound: usize,
}

impl Theorem10Report {
    /// Number of distinct objects actually forced.
    pub fn forced(&self) -> usize {
        self.lemma9.forced_objects.len()
    }
}

impl fmt::Display for Theorem10Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} levels, forced {} objects (theorem bound {})",
            self.levels.len(),
            self.forced(),
            self.theorem_bound
        )
    }
}

/// Search budget for the k-valued execution hunt at each level.
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Seeded-random schedules tried per level.
    pub schedules: u64,
    /// Steps per schedule.
    pub steps: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            schedules: 64,
            steps: 4_000,
        }
    }
}

/// Execute the Theorem 10 induction against a `(k+1)`-valued k-set
/// agreement protocol from swap objects.
///
/// # Errors
///
/// Propagates [`LemmaNineError`] from the terminal adversary run (protocol
/// not swap-only, budget exhaustion, or a genuine agreement violation).
///
/// # Panics
///
/// Panics if the protocol's task has `m < k + 1` (the theorem concerns
/// `(k+1)`-valued k-set agreement).
pub fn kset_witness<P: Protocol>(
    protocol: &P,
    solo_budget: usize,
    search: SearchBudget,
) -> Result<Theorem10Report, LemmaNineError> {
    let task = protocol.task();
    assert!(task.m >= (task.k + 1) as u64, "need k+1 input values");
    let theorem_bound = task.n.div_ceil(task.k) - 1;

    let mut universe: Vec<ProcessId> = ProcessId::all(task.n).collect();
    let mut k = task.k;
    let mut levels = Vec::new();

    loop {
        if k == 1 {
            // Base case among `universe`: C gives universe[0] input 0,
            // everyone else (in or out of the universe) input 1; α =
            // universe[0]'s solo run; Q = the rest of the universe.
            let mut inputs = vec![1u64; task.n];
            inputs[universe[0].index()] = 0;
            let mut c_alpha = Configuration::initial(protocol, &inputs)
                .map_err(|e| LemmaNineError::Sim(e.to_string()))?;
            runner::solo_run(protocol, &mut c_alpha, universe[0], solo_budget)
                .map_err(|e| LemmaNineError::Sim(e.to_string()))?;
            let q: Vec<ProcessId> = universe[1..].to_vec();
            let report = lemma9::run(protocol, &c_alpha, &q, 1, solo_budget)?;
            return Ok(Theorem10Report {
                levels,
                lemma9: report,
                theorem_bound,
            });
        }

        // |R'| = ⌈|R|(k-1)/k⌉.
        let r_prime_size = (universe.len() * (k - 1)).div_ceil(k);
        let r_prime = &universe[..r_prime_size];
        let complement: Vec<ProcessId> = universe[r_prime_size..].to_vec();

        // Hunt for an R'-only execution deciding all k values. Inputs:
        // R' gets 0..k-1 cyclically; everyone else gets k (the Q input).
        let mut inputs = vec![k as u64; task.n];
        for (idx, pid) in r_prime.iter().enumerate() {
            inputs[pid.index()] = (idx % k) as u64;
        }
        let mut found: Option<(u64, Configuration<P>)> = None;
        for seed in 0..search.schedules {
            let mut config = Configuration::initial(protocol, &inputs)
                .map_err(|e| LemmaNineError::Sim(e.to_string()))?;
            let mut sched = RestrictedRandom::new(r_prime.to_vec(), seed);
            runner::run(protocol, &mut config, &mut sched, search.steps)
                .map_err(|e| LemmaNineError::Sim(e.to_string()))?;
            let decided: std::collections::HashSet<u64> = r_prime
                .iter()
                .filter_map(|&pid| config.decision(pid))
                .collect();
            if decided.len() >= k {
                found = Some((seed, config));
                break;
            }
        }

        match found {
            Some((seed, c_alpha)) => {
                levels.push(LevelOutcome::KValuedExecutionFound {
                    k,
                    r_prime: r_prime_size,
                    seed,
                });
                let report = lemma9::run(protocol, &c_alpha, &complement, k as u64, solo_budget)?;
                return Ok(Theorem10Report {
                    levels,
                    lemma9: report,
                    theorem_bound,
                });
            }
            None => {
                levels.push(LevelOutcome::Descended {
                    k,
                    r_prime: r_prime_size,
                    schedules_tried: search.schedules,
                });
                universe = r_prime.to_vec();
                k -= 1;
            }
        }
    }
}

/// A seeded-random scheduler restricted to a subset of processes (the
/// `R'`-only schedules of the induction).
struct RestrictedRandom {
    allowed: Vec<ProcessId>,
    rng: rand::rngs::StdRng,
}

impl RestrictedRandom {
    fn new(allowed: Vec<ProcessId>, seed: u64) -> Self {
        use rand::SeedableRng;
        RestrictedRandom {
            allowed,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl swapcons_sim::Scheduler for RestrictedRandom {
    fn pick(&mut self, running: &[ProcessId], _step: usize) -> Option<ProcessId> {
        use rand::Rng;
        let eligible: Vec<ProcessId> = running
            .iter()
            .copied()
            .filter(|p| self.allowed.contains(p))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        Some(eligible[self.rng.gen_range(0..eligible.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_core::pairs::PairsKSet;
    use swapcons_core::SwapKSet;

    #[test]
    fn consensus_reduces_to_base_case() {
        let p = SwapKSet::consensus(5, 2);
        let report = kset_witness(&p, p.solo_step_bound(), SearchBudget::default()).unwrap();
        assert!(
            report.levels.is_empty(),
            "k=1 goes straight to the base case"
        );
        assert_eq!(report.forced(), 4);
        assert_eq!(report.theorem_bound, 4);
    }

    #[test]
    fn algorithm1_kset_descends_and_meets_the_bound() {
        // Algorithm 1 at k=2, n=4: the k-valued hunt fails (Lemma 5 makes
        // R'-only two-value executions impossible with too few outsiders),
        // so the induction descends to consensus among R' and still forces
        // ⌈n/k⌉-1 objects.
        let p = SwapKSet::new(4, 2, 3);
        let report = kset_witness(&p, p.solo_step_bound(), SearchBudget::default()).unwrap();
        assert!(
            report.forced() >= report.theorem_bound,
            "{report}: must meet the theorem bound"
        );
        assert_eq!(report.theorem_bound, 1);
        // Document the path taken.
        assert!(!report.levels.is_empty());
    }

    #[test]
    fn pairs_kset_takes_the_lemma9_branch() {
        // PairsKSet(4, 2): R' = {p0, p1} = the first pair; running p0 and
        // p1's full pair protocol... p0, p1 share object 0 and decide ONE
        // value, so a 2-valued R'-only execution needs both pairs — R' is
        // pair 0 only and the hunt fails; the induction still meets the
        // bound by descending.
        let p = PairsKSet::new(4, 2, 3);
        let report = kset_witness(&p, 4, SearchBudget::default()).unwrap();
        assert!(report.forced() >= report.theorem_bound, "{report}");
    }

    #[test]
    fn pairs_kset_wide_instance() {
        // n=6, k=3: R' = first 4 processes = pairs {0,1} and {2,3}: their
        // executions decide at most 2 < 3 values, so the hunt fails and we
        // descend to k=2 on 4 processes, R'' = pair {0,1} ∪ {2}: still at
        // most 2 values... the recursion bottoms out at consensus and the
        // forced count must meet ⌈6/3⌉-1 = 1.
        let p = PairsKSet::new(6, 3, 4);
        let report = kset_witness(&p, 4, SearchBudget::default()).unwrap();
        assert!(report.forced() >= report.theorem_bound, "{report}");
        assert_eq!(report.theorem_bound, 1);
    }

    #[test]
    fn report_renders() {
        let p = SwapKSet::consensus(3, 2);
        let report = kset_witness(&p, p.solo_step_bound(), SearchBudget::default()).unwrap();
        assert!(report.to_string().contains("forced 2 objects"));
    }
}
