//! Valency computation — the Section 2 notions, bounded-exhaustively.
//!
//! "A set of processes `P` is **bivalent** in configuration `C` if, for each
//! `v ∈ {0,1}`, there exists an execution from `C` only involving steps by
//! `P` in which some process in `P` decides the value `v`. If `P` is not
//! bivalent in `C`, then it is **univalent**; `v`-univalent if `v` is the
//! only value decided by `P` in its deciding executions."
//!
//! Exact valency is computable only when the group-only reachable space is
//! finite; racing algorithms grow lap counters unboundedly, so
//! [`ValencyOracle`] explores group-only executions to a configurable depth
//! and state budget. Its verdicts are therefore three-valued:
//!
//! * decided values *found* are definite (witness schedules are returned);
//! * a verdict of univalence/bivalence is definitive only when the search
//!   was exhaustive ([`ValencyResult::exhaustive`]);
//! * otherwise the verdict is the best-effort [`Valency::Unknown`] — the
//!   Section 5 drivers treat it conservatively and record the cutoff.

use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;
use std::sync::Mutex;

use swapcons_sim::canon::{apply_renaming, DedupSet};
use swapcons_sim::engine::{
    Budget, Control, EdgeCtx, Engine, GroupRestricted, Lifo, NodeCtx, Visitor,
};
use swapcons_sim::search::ScheduleArena;
use swapcons_sim::shard::{run_sharded, ShardOptions, ShardVisitor, StripedDedup, WitnessRef};
use swapcons_sim::{Canonicalizer, Configuration, ProcessId, Protocol, SimError};

/// Three-valued valency verdict for a process group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Valency {
    /// Both 0 and 1 are decidable by the group (definitive: witnesses
    /// exist even if the search was truncated).
    Bivalent,
    /// Exactly this value is decidable, and the search was exhaustive.
    Univalent(u64),
    /// The search was truncated before both values were found; the values
    /// seen so far are in the accompanying [`ValencyResult`].
    Unknown,
}

impl fmt::Display for Valency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Valency::Bivalent => write!(f, "bivalent"),
            Valency::Univalent(v) => write!(f, "{v}-univalent"),
            Valency::Unknown => write!(f, "unknown (search truncated)"),
        }
    }
}

/// Result of a valency query.
#[derive(Clone, Debug)]
pub struct ValencyResult {
    /// Values decided by the group in some explored group-only execution,
    /// with a witnessing schedule for each.
    pub witnesses: HashMap<u64, Vec<ProcessId>>,
    /// Whether the exploration covered the entire group-only reachable
    /// space.
    pub exhaustive: bool,
    /// Distinct configurations (orbits, under reduction) explored.
    pub states: usize,
    /// Order of the stabilizer subgroup the query deduplicated by (1 = no
    /// reduction, or a reduced query whose stabilizer degenerated to
    /// trivial).
    pub symmetry_group: usize,
    /// Whether the run group the stabilizer was carved from is itself a
    /// degraded subgroup of the protocol's declared symmetry (cap exceeded
    /// or inconsistent declaration — see
    /// `swapcons_sim::Canonicalizer::degraded`). Sound either way; reported
    /// so a declared-but-lost reduction never passes silently.
    pub symmetry_degraded: bool,
}

impl ValencyResult {
    /// The verdict, combining found values with exhaustiveness.
    pub fn verdict(&self) -> Valency {
        let values: HashSet<u64> = self.witnesses.keys().copied().collect();
        if values.len() >= 2 {
            Valency::Bivalent
        } else if self.exhaustive {
            match values.iter().next() {
                Some(&v) => Valency::Univalent(v),
                // No group member can ever decide — degenerate; treat as
                // unknown rather than inventing a value.
                None => Valency::Unknown,
            }
        } else {
            Valency::Unknown
        }
    }

    /// Whether `v` was proven decidable.
    pub fn can_decide(&self, v: u64) -> bool {
        self.witnesses.contains_key(&v)
    }
}

/// Bounded-exhaustive valency oracle for a fixed protocol.
#[derive(Clone, Copy, Debug)]
pub struct ValencyOracle {
    /// Maximum schedule length explored.
    pub max_depth: usize,
    /// Maximum distinct configurations visited per query.
    pub max_states: usize,
    /// Deduplicate group-only configurations modulo the protocol's declared
    /// symmetry, restricted to the **stabilizer subgroup** of the query:
    /// renamings that map the queried process group onto itself *and* fix
    /// the queried configuration exactly (which pins the input assignment
    /// pointwise up to `σ`). Fixing the root makes every group translate of
    /// an explored execution a real execution from the same root, so the
    /// collected witness set is closed under the subgroup afterwards —
    /// value-moving renamings (a `BinaryRacing` track swap, a `PairsKSet`
    /// pair swap) are admissible, not just `σ = id` ones.
    pub reduce: bool,
    /// Optional wall-clock deadline per query, passed through to the engine
    /// ([`Engine::with_deadline`]): an expired query returns gracefully
    /// with `exhaustive == false` (hence [`Valency::Unknown`] unless
    /// bivalence was already witnessed) instead of running without bound.
    pub deadline: Option<std::time::Duration>,
    /// Worker threads per query. `1` (the default) runs the sequential
    /// engine; `t > 1` shards the group-only sweep across the work-stealing
    /// driver ([`swapcons_sim::shard`]). Exhaustive queries report the same
    /// verdict, witness-value set, state count, and exhaustiveness as the
    /// sequential oracle; bivalence early-exits remain early exits (the
    /// workers quiesce at the next wave boundary).
    pub threads: usize,
}

impl ValencyOracle {
    /// An oracle with the given per-query budgets.
    pub fn new(max_depth: usize, max_states: usize) -> Self {
        ValencyOracle {
            max_depth,
            max_states,
            reduce: false,
            deadline: None,
            threads: 1,
        }
    }

    /// Enable symmetry-reduced dedup (see [`ValencyOracle::reduce`]).
    pub fn with_symmetry_reduction(mut self) -> Self {
        self.reduce = true;
        self
    }

    /// Bound each query by wall-clock time (see [`ValencyOracle::deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Shard each query across `threads` workers (see
    /// [`ValencyOracle::threads`]). `1` restores the sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is `0` or exceeds
    /// [`MAX_THREADS`](swapcons_sim::shard::MAX_THREADS).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(
            (1..=swapcons_sim::shard::MAX_THREADS).contains(&threads),
            "thread count must be in 1..={}",
            swapcons_sim::shard::MAX_THREADS
        );
        self.threads = threads;
        self
    }

    /// Explore `group`-only executions from `config`, collecting every value
    /// some group member decides.
    ///
    /// Early-exits once two distinct values are found (bivalence is then
    /// definitive).
    pub fn query<P: Protocol>(
        &self,
        protocol: &P,
        config: &Configuration<P>,
        group: &[ProcessId],
    ) -> ValencyResult {
        // The stabilizer subgroup of the query: renamings mapping `group`
        // onto itself that fix `config` exactly. Both conditions are closed
        // under composition and inverse, so the retained set is a genuine
        // subgroup — required for orbit dedup and the witness closure below.
        let canon = if self.reduce {
            let mut canon = Canonicalizer::for_inputs(protocol, config.inputs());
            canon.retain(|g| g.stabilizes(group) && apply_renaming(protocol, g, config) == *config);
            canon
        } else {
            Canonicalizer::trivial()
        };
        let mut witnesses: HashMap<u64, Vec<ProcessId>> = HashMap::new();
        // Fast path: solo runs of each group member. For racing protocols a
        // bivalent configuration usually realizes both values on
        // straight-line schedules, making bivalence checks cheap.
        for &pid in group {
            if config.decision(pid).is_some() {
                continue;
            }
            if let Ok((out, _)) =
                swapcons_sim::runner::solo_run_cloned(protocol, config, pid, self.max_depth)
            {
                witnesses
                    .entry(out.decision)
                    .or_insert_with(|| vec![pid; out.steps]);
            }
        }
        if witnesses.len() >= 2 {
            return ValencyResult {
                witnesses,
                exhaustive: false,
                states: 0,
                symmetry_group: canon.group_order(),
                symmetry_degraded: canon.degraded(),
            };
        }
        // The shared search core ([`swapcons_sim::engine`]) owns the loop:
        // fingerprint-keyed discovery-time dedup, parent-pointer schedule
        // arena (witness schedules are materialized only when a decision is
        // first seen, never cloned into stack frames), scratch children
        // with delta-restore, and the checker's exact budget discipline —
        // a search that drains exactly at `max_states` without skipping
        // anything still reports `exhaustive == true`. Under reduction,
        // membership is per orbit of the stabilizer subgroup computed
        // above: because every retained renaming fixes the root, each group
        // translate of an explored execution is itself a real execution
        // from the root, so deduplicating a translate discards no *values*
        // — the closure pass after the search recovers them.
        let capacity = self.max_states.min(1 << 14);
        let template: DedupSet<P> = if self.reduce {
            DedupSet::reduced(canon.clone(), capacity)
        } else {
            DedupSet::exact(capacity)
        };
        let (states, exhaustive) = if self.threads > 1 {
            self.query_sharded(protocol, config, group, template, &mut witnesses)
        } else {
            let mut visited = template;
            let mut arena = ScheduleArena::new();
            /// The oracle's strategy: collect decided values per generated
            /// edge (even edges to already-known configurations), stop the
            /// moment bivalence is established — whatever remains unexplored
            /// cannot change the verdict — and treat schema rejections as
            /// skipped (hence incomplete) work rather than aborting.
            struct OracleVisitor<'a> {
                witnesses: &'a mut HashMap<u64, Vec<ProcessId>>,
            }
            impl<P: Protocol> Visitor<P> for OracleVisitor<'_> {
                fn enter(
                    &mut self,
                    _protocol: &P,
                    _config: &Configuration<P>,
                    _ctx: &NodeCtx<'_>,
                    _candidates: &[swapcons_sim::Action],
                ) -> Control {
                    if self.witnesses.len() >= 2 {
                        Control::Stop
                    } else {
                        Control::Continue
                    }
                }

                fn edge(
                    &mut self,
                    _protocol: &P,
                    _child: &Configuration<P>,
                    decided: Option<u64>,
                    _is_new: bool,
                    ctx: &mut EdgeCtx<'_>,
                ) -> Control {
                    if let Some(v) = decided {
                        self.witnesses.entry(v).or_insert_with(|| ctx.schedule());
                    }
                    Control::Continue
                }

                fn step_error(
                    &mut self,
                    _protocol: &P,
                    _error: SimError,
                    _ctx: &mut EdgeCtx<'_>,
                ) -> Control {
                    Control::Continue
                }
            }
            let mut engine = Engine::new(Budget::new(self.max_depth, self.max_states));
            if let Some(deadline) = self.deadline {
                engine = engine.with_deadline(deadline);
            }
            let stats = engine.run(
                protocol,
                config.clone(),
                &mut visited,
                &mut arena,
                &mut GroupRestricted(group),
                &mut Lifo::new(),
                &mut OracleVisitor {
                    witnesses: &mut witnesses,
                },
            );
            // A bivalence early-exit leaves the rest of the space
            // unexplored by design; it is never an exhaustiveness claim.
            (visited.len(), stats.complete() && !stats.stopped)
        };
        // Close the witness set under the stabilizer subgroup: an explored
        // execution deciding `v` renames, element by element, to a real
        // execution from the same root deciding `σ(v)` — exactly the
        // executions orbit dedup declined to re-explore. One pass suffices
        // because the retained set is a whole subgroup, not just
        // generators.
        if !canon.is_trivial() {
            let found: Vec<(u64, Vec<ProcessId>)> = witnesses
                .iter()
                .map(|(&v, schedule)| (v, schedule.clone()))
                .collect();
            for g in canon.renamings() {
                for (v, schedule) in &found {
                    witnesses
                        .entry(g.value(*v))
                        .or_insert_with(|| schedule.iter().map(|&p| g.pid(p)).collect());
                }
            }
        }
        ValencyResult {
            witnesses,
            exhaustive,
            states,
            symmetry_group: canon.group_order(),
            symmetry_degraded: canon.degraded(),
        }
    }

    /// The work-stealing leg of [`ValencyOracle::query`]: shard the
    /// group-only sweep over a [`StripedDedup`] built from the same dedup
    /// template. Workers share a seen-value set so bivalence still stops
    /// the search; each collects witnesses locally, and the post-join merge
    /// keeps — per value — the deterministically smallest schedule
    /// (length, then lexicographic), with solo fast-path witnesses taking
    /// precedence exactly as in the sequential path. Returns
    /// `(states, exhaustive)`.
    fn query_sharded<P: Protocol>(
        &self,
        protocol: &P,
        config: &Configuration<P>,
        group: &[ProcessId],
        template: DedupSet<P>,
        witnesses: &mut HashMap<u64, Vec<ProcessId>>,
    ) -> (usize, bool) {
        struct ShardOracleVisitor<'a> {
            seen: &'a Mutex<HashSet<u64>>,
            witnesses: HashMap<u64, Vec<ProcessId>>,
        }
        impl<P: Protocol> ShardVisitor<P> for ShardOracleVisitor<'_> {
            fn enter(
                &mut self,
                _protocol: &P,
                _config: &Configuration<P>,
                _witness: &WitnessRef<'_>,
                _candidates: &[swapcons_sim::Action],
            ) -> Control {
                if self.seen.lock().expect("seen-set lock").len() >= 2 {
                    Control::Stop
                } else {
                    Control::Continue
                }
            }

            fn edge(
                &mut self,
                _protocol: &P,
                _child: &Configuration<P>,
                decided: Option<u64>,
                _is_new: bool,
                witness: &WitnessRef<'_>,
            ) -> Control {
                if let Some(v) = decided {
                    self.witnesses
                        .entry(v)
                        .or_insert_with(|| witness.schedule());
                    self.seen.lock().expect("seen-set lock").insert(v);
                }
                Control::Continue
            }

            fn step_error(
                &mut self,
                _protocol: &P,
                _error: SimError,
                _witness: &WitnessRef<'_>,
            ) -> Control {
                Control::Continue
            }
        }
        let striped = StripedDedup::new(template, (self.threads * 8).min(64), self.max_states);
        // Seed with the solo fast-path values so a single engine-found
        // second value still triggers the bivalence stop.
        let seen: Mutex<HashSet<u64>> = Mutex::new(witnesses.keys().copied().collect());
        let mut workers: Vec<ShardOracleVisitor<'_>> = (0..self.threads)
            .map(|_| ShardOracleVisitor {
                seen: &seen,
                witnesses: HashMap::new(),
            })
            .collect();
        let opts = ShardOptions {
            threads: self.threads,
            budget: Budget::new(self.max_depth, self.max_states),
            deadline: self.deadline,
        };
        let stats = run_sharded(
            protocol,
            config.clone(),
            &striped,
            &opts,
            || GroupRestricted(group),
            &mut workers,
            None,
        );
        fn schedule_key(schedule: &[ProcessId]) -> (usize, Vec<usize>) {
            (schedule.len(), schedule.iter().map(|p| p.0).collect())
        }
        // Solo fast-path entries always win (as in the sequential path's
        // `or_insert`); among worker-found schedules for the same value the
        // smallest key survives, independent of thread scheduling.
        let solo_found: HashSet<u64> = witnesses.keys().copied().collect();
        for worker in workers {
            for (v, schedule) in worker.witnesses {
                match witnesses.entry(v) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(schedule);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        if !solo_found.contains(&v)
                            && schedule_key(&schedule) < schedule_key(e.get())
                        {
                            e.insert(schedule);
                        }
                    }
                }
            }
        }
        (striped.len(), stats.complete() && !stats.stopped)
    }

    /// Convenience: the verdict only.
    pub fn valency<P: Protocol>(
        &self,
        protocol: &P,
        config: &Configuration<P>,
        group: &[ProcessId],
    ) -> Valency {
        self.query(protocol, config, group).verdict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_baselines::BinaryRacing;
    use swapcons_core::SwapKSet;
    use swapcons_sim::runner;

    /// Observation 12: with q0 holding input 0 and q1 holding input 1, the
    /// pair {q0, q1} is bivalent in the initial configuration.
    #[test]
    fn observation12_initial_bivalence_binary_racing() {
        let p = BinaryRacing::with_track_len(4, 10);
        // Processes 0,1 are the special pair Q; 2,3 are P.
        let c = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        let oracle = ValencyOracle::new(60, 60_000);
        let result = oracle.query(&p, &c, &[ProcessId(0), ProcessId(1)]);
        assert_eq!(result.verdict(), Valency::Bivalent, "{result:?}");
        // Witness schedules replay to the claimed decisions.
        for (&v, schedule) in &result.witnesses {
            let mut replay = c.clone();
            let h = runner::replay(&p, &mut replay, schedule).unwrap();
            assert!(h.decisions().iter().any(|&(_, d)| d == v));
        }
    }

    #[test]
    fn observation12_initial_bivalence_algorithm1() {
        let p = SwapKSet::consensus(3, 2);
        let c = Configuration::initial(&p, &[0, 1, 0]).unwrap();
        let oracle = ValencyOracle::new(40, 40_000);
        assert_eq!(
            oracle.valency(&p, &c, &[ProcessId(0), ProcessId(1)]),
            Valency::Bivalent
        );
    }

    #[test]
    fn univalence_after_commitment() {
        // Run p0 of Algorithm 1 solo to decision; afterwards the pair
        // {p1, p2} can only decide p0's value.
        let p = SwapKSet::consensus(3, 2);
        let mut c = Configuration::initial(&p, &[1, 0, 0]).unwrap();
        runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
        let oracle = ValencyOracle::new(40, 150_000);
        let result = oracle.query(&p, &c, &[ProcessId(1), ProcessId(2)]);
        // 1 must be decidable (agreement forces it); 0 must NOT appear.
        assert!(result.can_decide(1), "{result:?}");
        assert!(
            !result.can_decide(0),
            "agreement violation witnessed: {result:?}"
        );
    }

    #[test]
    fn unanimous_inputs_are_univalent() {
        let p = BinaryRacing::with_track_len(3, 10);
        let c = Configuration::initial(&p, &[1, 1, 1]).unwrap();
        let oracle = ValencyOracle::new(60, 100_000);
        let result = oracle.query(&p, &c, &[ProcessId(0), ProcessId(1)]);
        assert!(result.can_decide(1));
        assert!(!result.can_decide(0), "validity: 0 is nobody's input");
    }

    #[test]
    fn reduced_oracle_agrees_with_full_oracle() {
        // Exact-agreement half: the wait-free pairs construction has a
        // finite group-only space, so both searches are exhaustive and the
        // verdict, witness-value set, and exhaustiveness must match.
        let p = swapcons_core::pairs::PairsKSet::new(4, 2, 3);
        let c = Configuration::initial(&p, &[0, 1, 2, 1]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let full = ValencyOracle::new(20, 30_000).query(&p, &c, &group);
        let reduced = ValencyOracle::new(20, 30_000)
            .with_symmetry_reduction()
            .query(&p, &c, &group);
        // (Bivalent queries early-exit with `exhaustive == false` by
        // design; the space is finite and depth 20 covers it, so the
        // witness-value sets are complete either way.)
        assert_eq!(full.verdict(), reduced.verdict());
        assert_eq!(
            full.witnesses
                .keys()
                .collect::<std::collections::BTreeSet<_>>(),
            reduced
                .witnesses
                .keys()
                .collect::<std::collections::BTreeSet<_>>()
        );
        assert!(reduced.states <= full.states, "{full:?} vs {reduced:?}");

        // Bounded half: Algorithm 1's racing space is infinite, so both
        // searches are depth-truncated and their bounded regions may
        // legitimately differ with discovery order — assert only the
        // order-insensitive claims: fewer states, and every reduced
        // witness replays to a real decision.
        let p = SwapKSet::consensus(3, 2);
        let group = [ProcessId(1), ProcessId(2)];
        let mut c = Configuration::initial(&p, &[1, 0, 0]).unwrap();
        runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
        let full = ValencyOracle::new(40, 150_000).query(&p, &c, &group);
        let reduced = ValencyOracle::new(40, 150_000)
            .with_symmetry_reduction()
            .query(&p, &c, &group);
        assert!(reduced.states < full.states, "{full:?} vs {reduced:?}");
        assert!(reduced.can_decide(1), "agreement forces p0's value");
        assert!(!reduced.can_decide(0), "agreement violation witnessed");
        for (&v, schedule) in &reduced.witnesses {
            let mut replay = c.clone();
            let h = runner::replay(&p, &mut replay, schedule).unwrap();
            assert!(h.decisions().iter().any(|&(_, d)| d == v));
        }
    }

    #[test]
    fn reduced_oracle_preserves_bivalence_verdicts() {
        let p = BinaryRacing::with_track_len(4, 10);
        let c = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        let oracle = ValencyOracle::new(60, 60_000).with_symmetry_reduction();
        let result = oracle.query(&p, &c, &[ProcessId(0), ProcessId(1)]);
        assert_eq!(result.verdict(), Valency::Bivalent, "{result:?}");
    }

    #[test]
    fn exact_state_budget_is_still_exhaustive() {
        // The budget-accounting drift fix, pinned: the oracle used to
        // account at pop time (`visited.len() > max_states`), which both
        // overshot the budget and could call an exactly-budget-sized space
        // truncated. On the shared engine it uses the checker's
        // discovery-time discipline.
        let p = swapcons_sim::testing::TwoProcessSwapConsensus;
        let c = Configuration::initial(&p, &[0, 1]).unwrap();
        let group = [ProcessId(0)];
        // p0-only executions: the initial configuration and the one where
        // p0 swapped and decided — a finite, 2-state space.
        let full = ValencyOracle::new(10, 10_000).query(&p, &c, &group);
        assert!(full.exhaustive, "{full:?}");
        assert_eq!(full.verdict(), Valency::Univalent(0));
        // A budget of exactly the space size drains without skipping
        // anything: still exhaustive.
        let exact = ValencyOracle::new(10, full.states).query(&p, &c, &group);
        assert!(
            exact.exhaustive,
            "cut exactly at max_states must stay exhaustive: {exact:?}"
        );
        assert_eq!(exact.states, full.states);
        // One state fewer genuinely truncates — and the budget is actually
        // enforced (the pop-time discipline used to overshoot it).
        let under = ValencyOracle::new(10, full.states - 1).query(&p, &c, &group);
        assert!(!under.exhaustive, "{under:?}");
        assert!(under.states < full.states);
        assert_eq!(under.verdict(), Valency::Unknown);
    }

    #[test]
    fn pair_swap_stabilizer_reduces_the_oracle_space() {
        // {p1, p3} are partners in different pairs; the pair swap maps the
        // group onto itself and fixes the initial configuration, so the
        // reduced query runs with a genuine order-2 stabilizer — the
        // composed object symmetry at work (this subgroup was trivial when
        // the oracle required σ = id).
        let p = swapcons_core::pairs::PairsKSet::new(4, 2, 3);
        let c = Configuration::initial(&p, &[0, 1, 2, 1]).unwrap();
        let group = [ProcessId(1), ProcessId(3)];
        let full = ValencyOracle::new(20, 30_000).query(&p, &c, &group);
        let reduced = ValencyOracle::new(20, 30_000)
            .with_symmetry_reduction()
            .query(&p, &c, &group);
        assert_eq!(full.symmetry_group, 1);
        assert_eq!(reduced.symmetry_group, 2, "{reduced:?}");
        assert_eq!(full.verdict(), reduced.verdict());
        assert_eq!(full.verdict(), Valency::Univalent(1));
        assert!(
            reduced.states < full.states,
            "reduction factor must exceed 1: {full:?} vs {reduced:?}"
        );
    }

    #[test]
    fn track_swap_stabilizer_reduces_the_depth_bounded_oracle() {
        // Balanced inputs on the racing baseline: the renaming
        // (q0 q1)(p2 p3) with σ swapping the two values and τ swapping the
        // two tracks fixes the initial configuration and maps {q0, q1}
        // onto itself. With the depth too small for anyone to decide, both
        // searches drain the bounded region and the reduced one visits
        // about half the configurations — the Lemma 16 query shape that
        // used to degrade to the trivial group.
        let p = BinaryRacing::with_track_len(4, 10);
        let c = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let full = ValencyOracle::new(10, 60_000).query(&p, &c, &group);
        let reduced = ValencyOracle::new(10, 60_000)
            .with_symmetry_reduction()
            .query(&p, &c, &group);
        assert_eq!(reduced.symmetry_group, 2, "{reduced:?}");
        assert_eq!(full.verdict(), reduced.verdict());
        assert!(
            2 * reduced.states <= full.states + 8,
            "the track swap should pair almost all configurations: {full:?} vs {reduced:?}"
        );
    }

    /// Two processes, one readable swap object, and a decision rule that
    /// only fires under contention: swap your input in, then spin-read
    /// until the object holds a *foreign* value, and decide that. Solo
    /// runs never decide (each process re-reads its own swapped value
    /// forever), so every witness must come from the engine — which makes
    /// this the protocol that exercises the oracle's witness closure: the
    /// quotient search finds one of the two mirrored deciding executions,
    /// and the stabilizer renaming must recover the other.
    #[derive(Clone, Copy, Debug)]
    struct ContentionDecider;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct CdState {
        input: u64,
        swapped: bool,
    }

    impl swapcons_sim::Protocol for ContentionDecider {
        type State = CdState;
        type Value = Option<u64>;

        fn name(&self) -> String {
            "contention decider (oracle-closure test protocol)".into()
        }

        fn task(&self) -> swapcons_sim::KSetTask {
            swapcons_sim::KSetTask::new(2, 1, 2)
        }

        fn num_objects(&self) -> usize {
            1
        }

        fn schema(&self, _obj: swapcons_sim::ObjectId) -> swapcons_objects::ObjectSchema {
            swapcons_objects::ObjectSchema::readable_swap(swapcons_objects::Domain::Unbounded)
        }

        fn initial_value(&self, _obj: swapcons_sim::ObjectId) -> Option<u64> {
            None
        }

        fn initial_state(&self, _pid: ProcessId, input: u64) -> CdState {
            CdState {
                input,
                swapped: false,
            }
        }

        fn poised(
            &self,
            state: &CdState,
        ) -> (
            swapcons_sim::ObjectId,
            swapcons_objects::ObjectOp<Option<u64>>,
        ) {
            let obj = swapcons_sim::ObjectId(0);
            if state.swapped {
                (obj, swapcons_objects::ObjectOp::read())
            } else {
                (obj, swapcons_objects::ObjectOp::swap(Some(state.input)))
            }
        }

        fn observe(
            &self,
            mut state: CdState,
            response: swapcons_objects::Response<Option<u64>>,
        ) -> swapcons_sim::Transition<CdState> {
            let value = response.expect_value("swap and read return the value");
            if !state.swapped {
                state.swapped = true;
                return swapcons_sim::Transition::Continue(state);
            }
            match value {
                Some(v) if v != state.input => swapcons_sim::Transition::Decide(v),
                _ => swapcons_sim::Transition::Continue(state),
            }
        }

        fn symmetry(&self) -> swapcons_sim::Symmetry {
            swapcons_sim::Symmetry::full_process(2).with_interchangeable_values()
        }

        fn rename_state(&self, state: &CdState, renaming: &swapcons_sim::Renaming) -> CdState {
            CdState {
                input: renaming.value(state.input),
                swapped: state.swapped,
            }
        }

        fn rename_value(
            &self,
            _obj: swapcons_sim::ObjectId,
            value: &Option<u64>,
            renaming: &swapcons_sim::Renaming,
        ) -> Option<u64> {
            value.map(|v| renaming.value(v))
        }
    }

    #[test]
    fn witness_closure_recovers_mirrored_decisions() {
        swapcons_sim::canon::assert_equivariant(&ContentionDecider, &[0, 1], 6, 8);
        let c = Configuration::initial(&ContentionDecider, &[0, 1]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let full = ValencyOracle::new(8, 10_000).query(&ContentionDecider, &c, &group);
        assert_eq!(full.verdict(), Valency::Bivalent, "{full:?}");
        assert!(
            full.states > 0,
            "no solo run decides, so the engine must have run: {full:?}"
        );
        let reduced = ValencyOracle::new(8, 10_000)
            .with_symmetry_reduction()
            .query(&ContentionDecider, &c, &group);
        assert_eq!(reduced.symmetry_group, 2, "{reduced:?}");
        assert_eq!(reduced.verdict(), Valency::Bivalent, "{reduced:?}");
        // Both witnesses replay from the *queried* configuration — the
        // closed-over schedule is a genuine schedule, not a renamed ghost.
        for (&v, schedule) in &reduced.witnesses {
            let mut replay = c.clone();
            let h = runner::replay(&ContentionDecider, &mut replay, schedule).unwrap();
            assert!(
                h.decisions().iter().any(|&(_, d)| d == v),
                "witness for {v} does not replay: {schedule:?}"
            );
        }
    }

    #[test]
    fn truncated_search_reports_unknown() {
        let p = SwapKSet::consensus(3, 2);
        let c = Configuration::initial(&p, &[0, 1, 0]).unwrap();
        // Depth 1 cannot reach any decision.
        let oracle = ValencyOracle::new(1, 10);
        let result = oracle.query(&p, &c, &[ProcessId(0), ProcessId(1)]);
        assert_eq!(result.verdict(), Valency::Unknown);
        assert!(!result.exhaustive);
    }

    #[test]
    fn sharded_oracle_matches_sequential_on_exhaustive_queries() {
        // Finite group-only space (no early exit): verdict, witness-value
        // set, state count, and exhaustiveness must all match, with and
        // without symmetry reduction.
        let p = swapcons_core::pairs::PairsKSet::new(4, 2, 3);
        let c = Configuration::initial(&p, &[0, 1, 2, 1]).unwrap();
        let group = [ProcessId(1), ProcessId(3)];
        for reduce in [false, true] {
            let mut base = ValencyOracle::new(20, 30_000);
            base.reduce = reduce;
            let sequential = base.query(&p, &c, &group);
            assert!(sequential.exhaustive, "{sequential:?}");
            for threads in [2, 4] {
                let sharded = base.with_threads(threads).query(&p, &c, &group);
                assert_eq!(sharded.verdict(), sequential.verdict());
                assert_eq!(sharded.exhaustive, sequential.exhaustive);
                assert_eq!(sharded.states, sequential.states, "reduce={reduce}");
                assert_eq!(sharded.symmetry_group, sequential.symmetry_group);
                assert_eq!(
                    sharded
                        .witnesses
                        .keys()
                        .collect::<std::collections::BTreeSet<_>>(),
                    sequential
                        .witnesses
                        .keys()
                        .collect::<std::collections::BTreeSet<_>>()
                );
            }
        }
    }

    #[test]
    fn sharded_oracle_preserves_bivalence_and_replayable_witnesses() {
        let p = BinaryRacing::with_track_len(4, 10);
        let c = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let result = ValencyOracle::new(60, 60_000)
            .with_threads(2)
            .query(&p, &c, &group);
        assert_eq!(result.verdict(), Valency::Bivalent, "{result:?}");
        for (&v, schedule) in &result.witnesses {
            let mut replay = c.clone();
            let h = runner::replay(&p, &mut replay, schedule).unwrap();
            assert!(h.decisions().iter().any(|&(_, d)| d == v));
        }
    }

    #[test]
    fn sharded_engine_witnesses_survive_the_closure_pass() {
        // ContentionDecider's witnesses can only come from the engine, so
        // this pins the sharded arena → schedule materialization and the
        // stabilizer closure working together.
        let c = Configuration::initial(&ContentionDecider, &[0, 1]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let result = ValencyOracle::new(8, 10_000)
            .with_symmetry_reduction()
            .with_threads(2)
            .query(&ContentionDecider, &c, &group);
        assert_eq!(result.verdict(), Valency::Bivalent, "{result:?}");
        for (&v, schedule) in &result.witnesses {
            let mut replay = c.clone();
            let h = runner::replay(&ContentionDecider, &mut replay, schedule).unwrap();
            assert!(h.decisions().iter().any(|&(_, d)| d == v));
        }
    }

    #[test]
    fn sharded_exact_state_budget_is_still_exhaustive() {
        let p = swapcons_sim::testing::TwoProcessSwapConsensus;
        let c = Configuration::initial(&p, &[0, 1]).unwrap();
        let group = [ProcessId(0)];
        let full = ValencyOracle::new(10, 10_000)
            .with_threads(2)
            .query(&p, &c, &group);
        assert!(full.exhaustive, "{full:?}");
        assert_eq!(full.verdict(), Valency::Univalent(0));
        let exact = ValencyOracle::new(10, full.states)
            .with_threads(2)
            .query(&p, &c, &group);
        assert!(exact.exhaustive, "{exact:?}");
        assert_eq!(exact.states, full.states);
        let under = ValencyOracle::new(10, full.states - 1)
            .with_threads(2)
            .query(&p, &c, &group);
        assert!(!under.exhaustive, "{under:?}");
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Valency::Bivalent.to_string(), "bivalent");
        assert_eq!(Valency::Univalent(1).to_string(), "1-univalent");
        assert!(Valency::Unknown.to_string().contains("truncated"));
    }
}
