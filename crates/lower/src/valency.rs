//! Valency computation — the Section 2 notions, bounded-exhaustively.
//!
//! "A set of processes `P` is **bivalent** in configuration `C` if, for each
//! `v ∈ {0,1}`, there exists an execution from `C` only involving steps by
//! `P` in which some process in `P` decides the value `v`. If `P` is not
//! bivalent in `C`, then it is **univalent**; `v`-univalent if `v` is the
//! only value decided by `P` in its deciding executions."
//!
//! Exact valency is computable only when the group-only reachable space is
//! finite; racing algorithms grow lap counters unboundedly, so
//! [`ValencyOracle`] explores group-only executions to a configurable depth
//! and state budget. Its verdicts are therefore three-valued:
//!
//! * decided values *found* are definite (witness schedules are returned);
//! * a verdict of univalence/bivalence is definitive only when the search
//!   was exhaustive ([`ValencyResult::exhaustive`]);
//! * otherwise the verdict is the best-effort [`Valency::Unknown`] — the
//!   Section 5 drivers treat it conservatively and record the cutoff.

use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

use swapcons_sim::canon::DedupSet;
use swapcons_sim::engine::{
    Budget, Control, EdgeCtx, Engine, GroupRestricted, Lifo, NodeCtx, Visitor,
};
use swapcons_sim::search::ScheduleArena;
use swapcons_sim::{Canonicalizer, Configuration, ProcessId, Protocol, SimError};

/// Three-valued valency verdict for a process group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Valency {
    /// Both 0 and 1 are decidable by the group (definitive: witnesses
    /// exist even if the search was truncated).
    Bivalent,
    /// Exactly this value is decidable, and the search was exhaustive.
    Univalent(u64),
    /// The search was truncated before both values were found; the values
    /// seen so far are in the accompanying [`ValencyResult`].
    Unknown,
}

impl fmt::Display for Valency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Valency::Bivalent => write!(f, "bivalent"),
            Valency::Univalent(v) => write!(f, "{v}-univalent"),
            Valency::Unknown => write!(f, "unknown (search truncated)"),
        }
    }
}

/// Result of a valency query.
#[derive(Clone, Debug)]
pub struct ValencyResult {
    /// Values decided by the group in some explored group-only execution,
    /// with a witnessing schedule for each.
    pub witnesses: HashMap<u64, Vec<ProcessId>>,
    /// Whether the exploration covered the entire group-only reachable
    /// space.
    pub exhaustive: bool,
    /// Distinct configurations explored.
    pub states: usize,
}

impl ValencyResult {
    /// The verdict, combining found values with exhaustiveness.
    pub fn verdict(&self) -> Valency {
        let values: HashSet<u64> = self.witnesses.keys().copied().collect();
        if values.len() >= 2 {
            Valency::Bivalent
        } else if self.exhaustive {
            match values.iter().next() {
                Some(&v) => Valency::Univalent(v),
                // No group member can ever decide — degenerate; treat as
                // unknown rather than inventing a value.
                None => Valency::Unknown,
            }
        } else {
            Valency::Unknown
        }
    }

    /// Whether `v` was proven decidable.
    pub fn can_decide(&self, v: u64) -> bool {
        self.witnesses.contains_key(&v)
    }
}

/// Bounded-exhaustive valency oracle for a fixed protocol.
#[derive(Clone, Copy, Debug)]
pub struct ValencyOracle {
    /// Maximum schedule length explored.
    pub max_depth: usize,
    /// Maximum distinct configurations visited per query.
    pub max_states: usize,
    /// Deduplicate group-only configurations modulo the protocol's declared
    /// symmetry, restricted to the value-preserving renamings that stabilize
    /// the queried group (so decided-value witnesses transfer verbatim
    /// between orbit-equal configurations).
    pub reduce: bool,
}

impl ValencyOracle {
    /// An oracle with the given per-query budgets.
    pub fn new(max_depth: usize, max_states: usize) -> Self {
        ValencyOracle {
            max_depth,
            max_states,
            reduce: false,
        }
    }

    /// Enable symmetry-reduced dedup (see [`ValencyOracle::reduce`]).
    pub fn with_symmetry_reduction(mut self) -> Self {
        self.reduce = true;
        self
    }

    /// Explore `group`-only executions from `config`, collecting every value
    /// some group member decides.
    ///
    /// Early-exits once two distinct values are found (bivalence is then
    /// definitive).
    pub fn query<P: Protocol>(
        &self,
        protocol: &P,
        config: &Configuration<P>,
        group: &[ProcessId],
    ) -> ValencyResult {
        let mut witnesses: HashMap<u64, Vec<ProcessId>> = HashMap::new();
        // Fast path: solo runs of each group member. For racing protocols a
        // bivalent configuration usually realizes both values on
        // straight-line schedules, making bivalence checks cheap.
        for &pid in group {
            if config.decision(pid).is_some() {
                continue;
            }
            if let Ok((out, _)) =
                swapcons_sim::runner::solo_run_cloned(protocol, config, pid, self.max_depth)
            {
                witnesses
                    .entry(out.decision)
                    .or_insert_with(|| vec![pid; out.steps]);
            }
        }
        if witnesses.len() >= 2 {
            return ValencyResult {
                witnesses,
                exhaustive: false,
                states: 0,
            };
        }
        // The shared search core ([`swapcons_sim::engine`]) owns the loop:
        // fingerprint-keyed discovery-time dedup, parent-pointer schedule
        // arena (witness schedules are materialized only when a decision is
        // first seen, never cloned into stack frames), scratch children
        // with delta-restore, and the checker's exact budget discipline —
        // a search that drains exactly at `max_states` without skipping
        // anything still reports `exhaustive == true`. Under reduction,
        // membership is per symmetry orbit — restricted to renamings with
        // σ = id that stabilize the group, so "some group member decides v"
        // transfers verbatim between orbit-equal configurations.
        let capacity = self.max_states.min(1 << 14);
        let mut visited: DedupSet<P> = if self.reduce {
            let mut canon = Canonicalizer::for_inputs(protocol, config.inputs());
            canon.retain(|g| g.is_value_identity() && g.stabilizes(group));
            DedupSet::reduced(canon, capacity)
        } else {
            DedupSet::exact(capacity)
        };
        let mut arena = ScheduleArena::new();
        /// The oracle's strategy: collect decided values per generated edge
        /// (even edges to already-known configurations), stop the moment
        /// bivalence is established — whatever remains unexplored cannot
        /// change the verdict — and treat schema rejections as skipped
        /// (hence incomplete) work rather than aborting.
        struct OracleVisitor<'a> {
            witnesses: &'a mut HashMap<u64, Vec<ProcessId>>,
        }
        impl<P: Protocol> Visitor<P> for OracleVisitor<'_> {
            fn enter(
                &mut self,
                _protocol: &P,
                _config: &Configuration<P>,
                _ctx: &NodeCtx<'_>,
                _candidates: &[ProcessId],
            ) -> Control {
                if self.witnesses.len() >= 2 {
                    Control::Stop
                } else {
                    Control::Continue
                }
            }

            fn edge(
                &mut self,
                _protocol: &P,
                _child: &Configuration<P>,
                decided: Option<u64>,
                _is_new: bool,
                ctx: &mut EdgeCtx<'_>,
            ) -> Control {
                if let Some(v) = decided {
                    self.witnesses.entry(v).or_insert_with(|| ctx.schedule());
                }
                Control::Continue
            }

            fn step_error(
                &mut self,
                _protocol: &P,
                _error: SimError,
                _ctx: &mut EdgeCtx<'_>,
            ) -> Control {
                Control::Continue
            }
        }
        let stats = Engine::new(Budget::new(self.max_depth, self.max_states)).run(
            protocol,
            config.clone(),
            &mut visited,
            &mut arena,
            &mut GroupRestricted(group),
            &mut Lifo::new(),
            &mut OracleVisitor {
                witnesses: &mut witnesses,
            },
        );
        ValencyResult {
            witnesses,
            // A bivalence early-exit leaves the rest of the space
            // unexplored by design; it is never an exhaustiveness claim.
            exhaustive: stats.complete() && !stats.stopped,
            states: visited.len(),
        }
    }

    /// Convenience: the verdict only.
    pub fn valency<P: Protocol>(
        &self,
        protocol: &P,
        config: &Configuration<P>,
        group: &[ProcessId],
    ) -> Valency {
        self.query(protocol, config, group).verdict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcons_baselines::BinaryRacing;
    use swapcons_core::SwapKSet;
    use swapcons_sim::runner;

    /// Observation 12: with q0 holding input 0 and q1 holding input 1, the
    /// pair {q0, q1} is bivalent in the initial configuration.
    #[test]
    fn observation12_initial_bivalence_binary_racing() {
        let p = BinaryRacing::with_track_len(4, 10);
        // Processes 0,1 are the special pair Q; 2,3 are P.
        let c = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        let oracle = ValencyOracle::new(60, 60_000);
        let result = oracle.query(&p, &c, &[ProcessId(0), ProcessId(1)]);
        assert_eq!(result.verdict(), Valency::Bivalent, "{result:?}");
        // Witness schedules replay to the claimed decisions.
        for (&v, schedule) in &result.witnesses {
            let mut replay = c.clone();
            let h = runner::replay(&p, &mut replay, schedule).unwrap();
            assert!(h.decisions().iter().any(|&(_, d)| d == v));
        }
    }

    #[test]
    fn observation12_initial_bivalence_algorithm1() {
        let p = SwapKSet::consensus(3, 2);
        let c = Configuration::initial(&p, &[0, 1, 0]).unwrap();
        let oracle = ValencyOracle::new(40, 40_000);
        assert_eq!(
            oracle.valency(&p, &c, &[ProcessId(0), ProcessId(1)]),
            Valency::Bivalent
        );
    }

    #[test]
    fn univalence_after_commitment() {
        // Run p0 of Algorithm 1 solo to decision; afterwards the pair
        // {p1, p2} can only decide p0's value.
        let p = SwapKSet::consensus(3, 2);
        let mut c = Configuration::initial(&p, &[1, 0, 0]).unwrap();
        runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
        let oracle = ValencyOracle::new(40, 150_000);
        let result = oracle.query(&p, &c, &[ProcessId(1), ProcessId(2)]);
        // 1 must be decidable (agreement forces it); 0 must NOT appear.
        assert!(result.can_decide(1), "{result:?}");
        assert!(
            !result.can_decide(0),
            "agreement violation witnessed: {result:?}"
        );
    }

    #[test]
    fn unanimous_inputs_are_univalent() {
        let p = BinaryRacing::with_track_len(3, 10);
        let c = Configuration::initial(&p, &[1, 1, 1]).unwrap();
        let oracle = ValencyOracle::new(60, 100_000);
        let result = oracle.query(&p, &c, &[ProcessId(0), ProcessId(1)]);
        assert!(result.can_decide(1));
        assert!(!result.can_decide(0), "validity: 0 is nobody's input");
    }

    #[test]
    fn reduced_oracle_agrees_with_full_oracle() {
        // Exact-agreement half: the wait-free pairs construction has a
        // finite group-only space, so both searches are exhaustive and the
        // verdict, witness-value set, and exhaustiveness must match.
        let p = swapcons_core::pairs::PairsKSet::new(4, 2, 3);
        let c = Configuration::initial(&p, &[0, 1, 2, 1]).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let full = ValencyOracle::new(20, 30_000).query(&p, &c, &group);
        let reduced = ValencyOracle::new(20, 30_000)
            .with_symmetry_reduction()
            .query(&p, &c, &group);
        // (Bivalent queries early-exit with `exhaustive == false` by
        // design; the space is finite and depth 20 covers it, so the
        // witness-value sets are complete either way.)
        assert_eq!(full.verdict(), reduced.verdict());
        assert_eq!(
            full.witnesses
                .keys()
                .collect::<std::collections::BTreeSet<_>>(),
            reduced
                .witnesses
                .keys()
                .collect::<std::collections::BTreeSet<_>>()
        );
        assert!(reduced.states <= full.states, "{full:?} vs {reduced:?}");

        // Bounded half: Algorithm 1's racing space is infinite, so both
        // searches are depth-truncated and their bounded regions may
        // legitimately differ with discovery order — assert only the
        // order-insensitive claims: fewer states, and every reduced
        // witness replays to a real decision.
        let p = SwapKSet::consensus(3, 2);
        let group = [ProcessId(1), ProcessId(2)];
        let mut c = Configuration::initial(&p, &[1, 0, 0]).unwrap();
        runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
        let full = ValencyOracle::new(40, 150_000).query(&p, &c, &group);
        let reduced = ValencyOracle::new(40, 150_000)
            .with_symmetry_reduction()
            .query(&p, &c, &group);
        assert!(reduced.states < full.states, "{full:?} vs {reduced:?}");
        assert!(reduced.can_decide(1), "agreement forces p0's value");
        assert!(!reduced.can_decide(0), "agreement violation witnessed");
        for (&v, schedule) in &reduced.witnesses {
            let mut replay = c.clone();
            let h = runner::replay(&p, &mut replay, schedule).unwrap();
            assert!(h.decisions().iter().any(|&(_, d)| d == v));
        }
    }

    #[test]
    fn reduced_oracle_preserves_bivalence_verdicts() {
        let p = BinaryRacing::with_track_len(4, 10);
        let c = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        let oracle = ValencyOracle::new(60, 60_000).with_symmetry_reduction();
        let result = oracle.query(&p, &c, &[ProcessId(0), ProcessId(1)]);
        assert_eq!(result.verdict(), Valency::Bivalent, "{result:?}");
    }

    #[test]
    fn exact_state_budget_is_still_exhaustive() {
        // The budget-accounting drift fix, pinned: the oracle used to
        // account at pop time (`visited.len() > max_states`), which both
        // overshot the budget and could call an exactly-budget-sized space
        // truncated. On the shared engine it uses the checker's
        // discovery-time discipline.
        let p = swapcons_sim::testing::TwoProcessSwapConsensus;
        let c = Configuration::initial(&p, &[0, 1]).unwrap();
        let group = [ProcessId(0)];
        // p0-only executions: the initial configuration and the one where
        // p0 swapped and decided — a finite, 2-state space.
        let full = ValencyOracle::new(10, 10_000).query(&p, &c, &group);
        assert!(full.exhaustive, "{full:?}");
        assert_eq!(full.verdict(), Valency::Univalent(0));
        // A budget of exactly the space size drains without skipping
        // anything: still exhaustive.
        let exact = ValencyOracle::new(10, full.states).query(&p, &c, &group);
        assert!(
            exact.exhaustive,
            "cut exactly at max_states must stay exhaustive: {exact:?}"
        );
        assert_eq!(exact.states, full.states);
        // One state fewer genuinely truncates — and the budget is actually
        // enforced (the pop-time discipline used to overshoot it).
        let under = ValencyOracle::new(10, full.states - 1).query(&p, &c, &group);
        assert!(!under.exhaustive, "{under:?}");
        assert!(under.states < full.states);
        assert_eq!(under.verdict(), Valency::Unknown);
    }

    #[test]
    fn truncated_search_reports_unknown() {
        let p = SwapKSet::consensus(3, 2);
        let c = Configuration::initial(&p, &[0, 1, 0]).unwrap();
        // Depth 1 cannot reach any decision.
        let oracle = ValencyOracle::new(1, 10);
        let result = oracle.query(&p, &c, &[ProcessId(0), ProcessId(1)]);
        assert_eq!(result.verdict(), Valency::Unknown);
        assert!(!result.exhaustive);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Valency::Bivalent.to_string(), "bivalent");
        assert_eq!(Valency::Univalent(1).to_string(), "1-univalent");
        assert!(Valency::Unknown.to_string().contains("truncated"));
    }
}
