//! Lock-free and linearizable shared objects for real multi-threaded runs.
//!
//! The deterministic cells in [`crate::cell`] serve the simulator; this
//! module provides the objects used by the threaded implementations of the
//! paper's algorithms (`swapcons-core::threaded`):
//!
//! * [`AtomicSwap<T>`] — a **lock-free swap object with arbitrary value
//!   type**. Because a swap object supports *no read*, the value can be
//!   represented as an exclusively-owned heap cell whose pointer is exchanged
//!   with [`std::sync::atomic::AtomicPtr::swap`]: ownership of the displaced
//!   value transfers atomically to the swapper, so no reclamation scheme is
//!   needed. This is the Rust-native realization of the paper's observation
//!   that learning from a swap object *requires* overwriting it.
//! * [`AtomicWordSwap`] — a lock-free **readable** swap object for values
//!   that fit in a machine word (`u64`), with optional bounded-domain
//!   enforcement, built on `AtomicU64::{swap, load}`.
//! * [`AtomicRegister<T>`] — a linearizable multi-reader multi-writer
//!   register for arbitrary `T: Clone` (via `std::sync::RwLock`; reads and
//!   writes are individually atomic, which is the register semantics the
//!   model assumes).
//! * [`AtomicTas`] — a test-and-set object on `AtomicBool`.

use std::fmt;
use std::marker::PhantomData;
use std::ptr;

// In normal builds these aliases re-export the std types verbatim; under
// `--cfg conc_check` they switch to the instrumented shims of
// `swapcons-conc`, making every object in this module exhaustively
// model-checkable without further changes.
use swapcons_conc::sync::{AtomicBool, AtomicPtr, AtomicU64, Ordering, RwLock};

use crate::schema::Domain;

/// A lock-free swap object holding values of type `T`.
///
/// Supports exactly one operation, [`AtomicSwap::swap`], matching the
/// paper's swap object (Section 2): it atomically replaces the stored value
/// and returns the previous one. There is deliberately **no read method**.
///
/// # Implementation
///
/// The value lives in a `Box` whose raw pointer is stored in an `AtomicPtr`.
/// `swap` boxes the new value, atomically exchanges pointers, and takes
/// ownership of the displaced box. Since the displaced pointer can never be
/// observed by any other thread after the exchange (the only accessor is
/// `swap`, which removes it), the swapper owns it exclusively — no epochs,
/// no hazard pointers.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use swapcons_objects::atomic::AtomicSwap;
///
/// let obj = Arc::new(AtomicSwap::new(String::from("init")));
/// let prev = obj.swap(String::from("mine"));
/// assert_eq!(prev, "init");
/// ```
pub struct AtomicSwap<T> {
    ptr: AtomicPtr<T>,
    _owned: PhantomData<Box<T>>,
}

impl<T> AtomicSwap<T> {
    /// Create a swap object holding `initial`.
    pub fn new(initial: T) -> Self {
        let raw = Box::into_raw(Box::new(initial));
        // Under the checker, declare the initial payload write so a swap
        // racing with construction (impossible through safe code, since
        // sharing requires the constructor to finish first) would be caught.
        #[cfg(conc_check)]
        swapcons_conc::hooks::data_write(raw as usize);
        AtomicSwap {
            ptr: AtomicPtr::new(raw),
            _owned: PhantomData,
        }
    }

    /// Atomically replace the stored value with `value`, returning the
    /// previous value. Lock-free; a single `AtomicPtr::swap` with `AcqRel`
    /// ordering is the linearization point.
    pub fn swap(&self, value: T) -> T {
        let new = Box::into_raw(Box::new(value));
        // The payload write must be declared *before* the pointer is
        // published: release ordering on the swap is what makes it visible.
        #[cfg(conc_check)]
        swapcons_conc::hooks::data_write(new as usize);
        let old = self.ptr.swap(new, Ordering::AcqRel);
        // The displaced payload is read (moved out) below; the acquire side
        // of the swap is the edge that orders it after its writer. Retire
        // the address: the allocator may reuse it for an unrelated Box.
        #[cfg(conc_check)]
        {
            swapcons_conc::hooks::data_read(old as usize);
            swapcons_conc::hooks::data_retire(old as usize);
        }
        // SAFETY: `old` was produced by `Box::into_raw` (in `new` or a prior
        // `swap`) and has just been atomically removed from the object; no
        // other thread can obtain it again, so we hold unique ownership.
        unsafe { *Box::from_raw(old) }
    }

    /// Consume the object and return its current value.
    pub fn into_inner(self) -> T {
        let raw = self.ptr.swap(ptr::null_mut(), Ordering::AcqRel);
        // Prevent Drop from double-freeing.
        std::mem::forget(self);
        #[cfg(conc_check)]
        {
            swapcons_conc::hooks::data_read(raw as usize);
            swapcons_conc::hooks::data_retire(raw as usize);
        }
        // SAFETY: unique ownership as in `swap`; `raw` is non-null because
        // the pointer is only null transiently inside this method after
        // `mem::forget`.
        unsafe { *Box::from_raw(raw) }
    }
}

impl<T> Drop for AtomicSwap<T> {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        if !raw.is_null() {
            #[cfg(conc_check)]
            swapcons_conc::hooks::data_retire(raw as usize);
            // SAFETY: `&mut self` gives unique access; the pointer was
            // produced by `Box::into_raw`.
            unsafe { drop(Box::from_raw(raw)) }
        }
    }
}

// SAFETY: the object owns its T and `swap` transfers T values across
// threads by value, so `Send` for the wrapper requires exactly `T: Send`.
unsafe impl<T: Send> Send for AtomicSwap<T> {}
// SAFETY: the shared interface never hands out references to the inner T —
// `swap` moves values in and out — so sharing `&AtomicSwap<T>` across
// threads only ever transfers owned T values, which `T: Send` covers;
// `T: Sync` is deliberately not required.
unsafe impl<T: Send> Sync for AtomicSwap<T> {}

impl<T> fmt::Debug for AtomicSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Reading the value would violate the object's interface; show
        // only identity.
        f.debug_struct("AtomicSwap").finish_non_exhaustive()
    }
}

/// A lock-free readable swap object over `u64` with an optional bounded
/// domain (Section 5's objects).
///
/// # Example
///
/// ```
/// use swapcons_objects::atomic::AtomicWordSwap;
/// use swapcons_objects::Domain;
///
/// let obj = AtomicWordSwap::new(0, Domain::BINARY);
/// assert_eq!(obj.swap(1), 0);
/// assert_eq!(obj.read(), 1);
/// ```
///
/// # Panics
///
/// [`AtomicWordSwap::swap`] panics if the value is outside the configured
/// domain; this is a programming error in the calling protocol, equivalent
/// to a type error in the paper's model.
#[derive(Debug)]
pub struct AtomicWordSwap {
    value: AtomicU64,
    domain: Domain,
}

impl AtomicWordSwap {
    /// Create a readable swap object holding `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is outside `domain`.
    pub fn new(initial: u64, domain: Domain) -> Self {
        assert!(
            domain.contains(initial),
            "initial value {initial} outside {domain}"
        );
        AtomicWordSwap {
            value: AtomicU64::new(initial),
            domain,
        }
    }

    /// The object's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Atomically replace the value, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn swap(&self, value: u64) -> u64 {
        assert!(
            self.domain.contains(value),
            "swapped value {value} outside {}",
            self.domain
        );
        self.value.swap(value, Ordering::AcqRel)
    }

    /// Read the current value without modifying it.
    pub fn read(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A linearizable multi-reader multi-writer register for arbitrary
/// `T: Clone`.
///
/// Individual `read`/`write` calls are atomic (guarded by a
/// `std::sync::RwLock`), which is exactly the atomic-register semantics of
/// the asynchronous shared-memory model. This is *not* lock-free; the
/// threaded baselines that use it (racing counters) are baselines for space
/// accounting and schedule-level behavior, not for lock-freedom.
///
/// # Poisoning
///
/// The register **never propagates lock poisoning**: a panic while a guard
/// is held marks the std lock poisoned, but the stored `T` is always a
/// fully-formed value — `write` replaces it with a single `*guard = v`
/// assignment, whose new value is in place before the old one is dropped —
/// so both `read` and `write` recover the guard and proceed. This pins the
/// model-level semantics: a crashed process leaves the register holding a
/// legitimate previously-written value, and other processes keep going
/// (crash-stop, not crash-contaminate). The conc shim's `RwLock` encodes
/// the same choice by never poisoning at all.
#[derive(Debug, Default)]
pub struct AtomicRegister<T> {
    value: RwLock<T>,
}

impl<T: Clone> AtomicRegister<T> {
    /// Create a register holding `initial`.
    pub fn new(initial: T) -> Self {
        AtomicRegister {
            value: RwLock::new(initial),
        }
    }

    /// Return the current value.
    pub fn read(&self) -> T {
        // A poisoned lock only means a writer panicked mid-`=`; the stored T
        // was never left partially written, so recover the guard.
        self.value.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Set the value.
    pub fn write(&self, v: T) {
        *self.value.write().unwrap_or_else(|e| e.into_inner()) = v;
    }
}

/// A word-sized register on `AtomicU64` (lock-free), for baselines whose
/// register values fit in a machine word.
#[derive(Debug, Default)]
pub struct AtomicWordRegister {
    value: AtomicU64,
}

impl AtomicWordRegister {
    /// Create a register holding `initial`.
    pub fn new(initial: u64) -> Self {
        AtomicWordRegister {
            value: AtomicU64::new(initial),
        }
    }

    /// Return the current value.
    pub fn read(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Set the value.
    pub fn write(&self, v: u64) {
        self.value.store(v, Ordering::Release);
    }
}

/// A test-and-set object on `AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicTas {
    set: AtomicBool,
}

impl AtomicTas {
    /// Create an unset test-and-set object.
    pub fn new() -> Self {
        AtomicTas::default()
    }

    /// Set the object; returns `true` iff this call won.
    pub fn test_and_set(&self) -> bool {
        !self.set.swap(true, Ordering::AcqRel)
    }

    /// Read without modifying.
    pub fn read(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

// The unit tests drive the objects on free-running std threads, which only
// works when the `conc` aliases resolve to the real std types; under
// `--cfg conc_check` the shims require a model context, and the objects are
// exercised by the dedicated exhaustive suites instead.
#[cfg(all(test, not(conc_check)))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn atomic_swap_sequential_exchange() {
        let s = AtomicSwap::new(0u64);
        assert_eq!(s.swap(1), 0);
        assert_eq!(s.swap(2), 1);
        assert_eq!(s.into_inner(), 2);
    }

    #[test]
    fn atomic_swap_with_heap_values() {
        let s = AtomicSwap::new(vec![0u8; 16]);
        let prev = s.swap(vec![1u8; 32]);
        assert_eq!(prev, vec![0u8; 16]);
        assert_eq!(s.into_inner(), vec![1u8; 32]);
    }

    #[test]
    fn atomic_swap_drop_frees_current_value() {
        // Drop coverage: constructing and dropping without into_inner must
        // not leak or double-free (validated under the default allocator by
        // simply exercising the path; miri-style checks happen in CI setups).
        let s = AtomicSwap::new(String::from("x"));
        let _ = s.swap(String::from("y"));
        drop(s);
    }

    /// Exchange totality: with T threads each swapping K tokens through one
    /// object, every token (plus the initial one) is returned exactly once,
    /// and the final resident value accounts for the last missing token.
    #[test]
    fn atomic_swap_concurrent_exchange_totality() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 1000;
        let obj = Arc::new(AtomicSwap::new(u64::MAX)); // initial token
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let obj = Arc::clone(&obj);
            handles.push(std::thread::spawn(move || {
                let mut received = Vec::with_capacity(PER_THREAD as usize);
                for i in 0..PER_THREAD {
                    let token = t * PER_THREAD + i;
                    received.push(obj.swap(token));
                }
                received
            }));
        }
        let mut seen: Vec<u64> = Vec::new();
        for h in handles {
            seen.extend(h.join().unwrap());
        }
        let final_value = match Arc::try_unwrap(obj) {
            Ok(s) => s.into_inner(),
            Err(_) => panic!("all threads joined; Arc must be unique"),
        };
        seen.push(final_value);
        // seen now holds: the initial token + every injected token, each
        // exactly once.
        let unique: HashSet<u64> = seen.iter().copied().collect();
        assert_eq!(unique.len(), seen.len(), "a token was duplicated");
        assert_eq!(seen.len() as u64, THREADS * PER_THREAD + 1);
        assert!(unique.contains(&u64::MAX), "initial token lost");
    }

    #[test]
    fn word_swap_read_and_swap() {
        let w = AtomicWordSwap::new(0, Domain::Bounded(4));
        assert_eq!(w.read(), 0);
        assert_eq!(w.swap(3), 0);
        assert_eq!(w.read(), 3);
        assert_eq!(w.domain(), Domain::Bounded(4));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn word_swap_rejects_out_of_domain() {
        let w = AtomicWordSwap::new(0, Domain::BINARY);
        w.swap(2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn word_swap_rejects_bad_initial() {
        let _ = AtomicWordSwap::new(5, Domain::BINARY);
    }

    #[test]
    fn register_read_write() {
        let r = AtomicRegister::new(vec![1, 2, 3]);
        assert_eq!(r.read(), vec![1, 2, 3]);
        r.write(vec![4]);
        assert_eq!(r.read(), vec![4]);
    }

    #[test]
    fn register_recovers_from_poisoned_lock() {
        // A panic while the write guard is held poisons the std RwLock.
        // The register's pinned semantics: subsequent reads and writes
        // recover the guard and observe a fully-formed value (crash-stop,
        // not crash-contaminate).
        struct PanicOnDrop(bool);
        impl Drop for PanicOnDrop {
            fn drop(&mut self) {
                if self.0 && !std::thread::panicking() {
                    panic!("drop bomb");
                }
            }
        }

        let r = Arc::new(AtomicRegister::new(7u64));
        let poisoner = Arc::clone(&r);
        let result = std::panic::catch_unwind(move || {
            // Panic *while holding the guard*: the drop bomb detonates
            // inside `write`'s assignment, after the new value is stored.
            let bomb = PanicOnDrop(true);
            poisoner.write(9);
            drop(bomb);
        });
        assert!(result.is_err(), "the drop bomb must have fired");

        // The catch_unwind closure panicked after `write` completed, so the
        // lock may or may not be poisoned depending on guard timing; force
        // definite poisoning with a panic strictly inside the guard scope.
        let poisoner = Arc::clone(&r);
        let t = std::thread::spawn(move || {
            let _guard = poisoner.value.write();
            panic!("poison while holding the write guard");
        });
        assert!(t.join().is_err());

        // Pinned behavior: both operations recover and behave normally.
        assert_eq!(r.read(), 9, "read must see the last completed write");
        r.write(11);
        assert_eq!(r.read(), 11, "write must succeed after poisoning");
    }

    #[test]
    fn word_register_read_write() {
        let r = AtomicWordRegister::new(7);
        assert_eq!(r.read(), 7);
        r.write(9);
        assert_eq!(r.read(), 9);
    }

    #[test]
    fn tas_only_one_winner_concurrently() {
        let t = Arc::new(AtomicTas::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || t.test_and_set()));
        }
        let wins: usize = handles
            .into_iter()
            .filter(|_| true)
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(wins, 1, "exactly one thread must win the TAS");
        assert!(t.read());
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<AtomicSwap<Vec<u64>>>();
        assert_send_sync::<AtomicWordSwap>();
        assert_send_sync::<AtomicRegister<Vec<u64>>>();
        assert_send_sync::<AtomicWordRegister>();
        assert_send_sync::<AtomicTas>();
    }
}
