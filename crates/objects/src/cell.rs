//! Deterministic single-threaded object cells.
//!
//! These are the object implementations used by the simulator in
//! `swapcons-sim`: plain sequential state with the exact operation semantics
//! of Section 2 of the paper. Each cell enforces its capability statically —
//! a [`SwapCell`] simply has no read method — and [`AnyCell`] provides the
//! dynamically-checked variant the simulator uses, pairing a value with an
//! [`ObjectSchema`].

use std::fmt;

use crate::op::{HistorylessOp, Response};
use crate::schema::{ObjectSchema, SchemaError};

/// A swap object: supports only [`SwapCell::swap`]. No read.
///
/// # Example
///
/// ```
/// use swapcons_objects::cell::SwapCell;
///
/// let mut cell = SwapCell::new("init");
/// assert_eq!(cell.swap("a"), "init");
/// assert_eq!(cell.swap("b"), "a");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SwapCell<V> {
    value: V,
}

impl<V> SwapCell<V> {
    /// Create a swap cell holding `initial`.
    pub fn new(initial: V) -> Self {
        SwapCell { value: initial }
    }

    /// Atomically replace the value with `v`, returning the previous value.
    pub fn swap(&mut self, v: V) -> V {
        std::mem::replace(&mut self.value, v)
    }

    /// Consume the cell, yielding its current value. This models the
    /// *system* (not a process) inspecting memory, e.g. for assertions in
    /// tests; processes interact only through `swap`.
    pub fn into_inner(self) -> V {
        self.value
    }
}

/// A readable swap object: supports [`ReadableSwapCell::swap`],
/// [`ReadableSwapCell::read`], and [`ReadableSwapCell::apply`] for generic
/// [`HistorylessOp`]s.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ReadableSwapCell<V> {
    value: V,
}

impl<V: Clone> ReadableSwapCell<V> {
    /// Create a readable swap cell holding `initial`.
    pub fn new(initial: V) -> Self {
        ReadableSwapCell { value: initial }
    }

    /// Atomically replace the value with `v`, returning the previous value.
    pub fn swap(&mut self, v: V) -> V {
        std::mem::replace(&mut self.value, v)
    }

    /// Return the current value.
    pub fn read(&self) -> V {
        self.value.clone()
    }

    /// Apply any historyless operation with the semantics of Section 2.
    pub fn apply(&mut self, op: &HistorylessOp<V>) -> Response<V> {
        let response = op.response(&self.value);
        if let Some(next) = op.next_value(&self.value) {
            self.value = next;
        }
        response
    }
}

/// A register: supports [`RegisterCell::read`] and [`RegisterCell::write`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RegisterCell<V> {
    value: V,
}

impl<V: Clone> RegisterCell<V> {
    /// Create a register holding `initial`.
    pub fn new(initial: V) -> Self {
        RegisterCell { value: initial }
    }

    /// Return the current value.
    pub fn read(&self) -> V {
        self.value.clone()
    }

    /// Set the value to `v`. The response carries no information.
    pub fn write(&mut self, v: V) {
        self.value = v;
    }
}

/// A test-and-set object: a binary object whose only nontrivial operation
/// sets it to `true` and returns the previous value.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct TasCell {
    set: bool,
}

impl TasCell {
    /// Create an unset test-and-set cell.
    pub fn new() -> Self {
        TasCell::default()
    }

    /// Set the object, returning `true` iff this call won (the object was
    /// previously unset).
    pub fn test_and_set(&mut self) -> bool {
        !std::mem::replace(&mut self.set, true)
    }

    /// Read the current state without modifying it.
    pub fn read(&self) -> bool {
        self.set
    }

    /// Reset to the unset state (a *system* operation used between test
    /// runs, not available to processes).
    pub fn reset(&mut self) {
        self.set = false;
    }
}

/// A dynamically-checked cell: a `u64` value paired with an [`ObjectSchema`]
/// that every operation is validated against. This is the cell type the
/// simulator instantiates for integer-valued protocols, so that an algorithm
/// claiming to use only swap objects is physically unable to read them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AnyCell {
    schema: ObjectSchema,
    value: u64,
}

impl AnyCell {
    /// Create a cell with the given schema and initial value.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::ValueOutOfDomain`] if `initial` violates the
    /// schema's domain.
    pub fn new(schema: ObjectSchema, initial: u64) -> Result<Self, SchemaError> {
        schema.check_value(initial)?;
        Ok(AnyCell {
            schema,
            value: initial,
        })
    }

    /// The cell's schema.
    pub fn schema(&self) -> ObjectSchema {
        self.schema
    }

    /// The current value, visible to the *system* only (assertions, state
    /// hashing); processes must go through [`AnyCell::apply`].
    pub fn peek(&self) -> u64 {
        self.value
    }

    /// Overwrite the value without schema checks. System-level operation used
    /// to reset state between runs.
    pub fn poke(&mut self, value: u64) {
        self.value = value;
    }

    /// Apply a historyless operation, enforcing the schema.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::OpNotPermitted`] if the operation kind is not
    /// supported by this object, or [`SchemaError::ValueOutOfDomain`] if a
    /// nontrivial operation carries an out-of-domain value.
    pub fn apply(&mut self, op: &HistorylessOp<u64>) -> Result<Response<u64>, SchemaError> {
        self.schema.check_op_kind(op.kind())?;
        if let Some(v) = op.payload() {
            self.schema.check_value(*v)?;
        }
        let response = op.response(&self.value);
        if let Some(next) = op.next_value(&self.value) {
            self.value = next;
        }
        Ok(response)
    }
}

impl fmt::Display for AnyCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.schema.kind(), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::schema::{Domain, ObjectKind};

    #[test]
    fn swap_cell_exchanges_values() {
        let mut c = SwapCell::new(0u64);
        assert_eq!(c.swap(1), 0);
        assert_eq!(c.swap(2), 1);
        assert_eq!(c.into_inner(), 2);
    }

    #[test]
    fn readable_swap_cell_read_does_not_modify() {
        let mut c = ReadableSwapCell::new(5u64);
        assert_eq!(c.read(), 5);
        assert_eq!(c.read(), 5);
        assert_eq!(c.swap(6), 5);
        assert_eq!(c.read(), 6);
    }

    #[test]
    fn readable_swap_cell_apply_matches_direct_methods() {
        let mut a = ReadableSwapCell::new(1u64);
        let mut b = ReadableSwapCell::new(1u64);
        assert_eq!(a.apply(&HistorylessOp::Swap(9)), Response::Value(b.swap(9)));
        assert_eq!(a.apply(&HistorylessOp::Read), Response::Value(b.read()));
        assert_eq!(a.apply(&HistorylessOp::Write(3)), Response::Ack);
        b.swap(3);
        assert_eq!(a.read(), b.read());
    }

    #[test]
    fn register_cell_semantics() {
        let mut r = RegisterCell::new(0u64);
        r.write(10);
        assert_eq!(r.read(), 10);
        r.write(20);
        assert_eq!(r.read(), 20);
    }

    #[test]
    fn tas_cell_first_caller_wins() {
        let mut t = TasCell::new();
        assert!(!t.read());
        assert!(t.test_and_set());
        assert!(!t.test_and_set());
        assert!(t.read());
        t.reset();
        assert!(t.test_and_set());
    }

    #[test]
    fn any_cell_enforces_swap_capability() {
        let mut c = AnyCell::new(ObjectSchema::swap(), 0).unwrap();
        assert_eq!(c.apply(&HistorylessOp::Swap(4)), Ok(Response::Value(0)));
        let err = c.apply(&HistorylessOp::Read).unwrap_err();
        assert_eq!(
            err,
            SchemaError::OpNotPermitted {
                op: OpKind::Read,
                kind: ObjectKind::Swap
            }
        );
        // The failed read must not have perturbed the value.
        assert_eq!(c.peek(), 4);
    }

    #[test]
    fn any_cell_enforces_domain() {
        let mut c = AnyCell::new(ObjectSchema::readable_binary_swap(), 0).unwrap();
        assert!(c.apply(&HistorylessOp::Swap(1)).is_ok());
        let err = c.apply(&HistorylessOp::Swap(2)).unwrap_err();
        assert!(matches!(
            err,
            SchemaError::ValueOutOfDomain { value: 2, .. }
        ));
        assert_eq!(c.peek(), 1, "failed op must leave the value unchanged");
    }

    #[test]
    fn any_cell_rejects_bad_initial_value() {
        assert!(AnyCell::new(ObjectSchema::readable_binary_swap(), 7).is_err());
        assert!(AnyCell::new(ObjectSchema::readable_swap(Domain::Bounded(8)), 7).is_ok());
    }

    #[test]
    fn any_cell_register_roundtrip() {
        let mut c = AnyCell::new(ObjectSchema::register(), 0).unwrap();
        assert_eq!(c.apply(&HistorylessOp::Write(42)), Ok(Response::Ack));
        assert_eq!(c.apply(&HistorylessOp::Read), Ok(Response::Value(42)));
        assert!(c.apply(&HistorylessOp::Swap(1)).is_err());
    }

    #[test]
    fn any_cell_display() {
        let c = AnyCell::new(ObjectSchema::swap(), 3).unwrap();
        assert_eq!(c.to_string(), "swap=3");
    }
}
