//! Derived objects: high-level objects implemented from base primitives.
//!
//! The paper's space bounds are all relative to which *base* objects a
//! protocol consumes. This module makes the base/derived distinction a
//! first-class citizen: an [`ObjectProgram`] is a per-process
//! sub-state-machine that compiles one high-level operation into a bounded
//! sequence of base-object steps. The simulator layer
//! (`swapcons_sim::derived::LayeredProtocol`) flattens a protocol over
//! derived objects onto the base-object set, so the engine, checker, and
//! canonicalization layers see only base objects — and the space accounting
//! prices the construction honestly (the base set, not the derived facade).
//!
//! The flagship program is [`AspnesOneBitSwap`], Aspnes's construction of a
//! linearizable wait-free **one-bit swap object** from a **single max
//! register** and an **array of test-and-set bits** (*A one-bit swap object
//! using test-and-sets and a max register*; see PAPERS.md). Each swap
//! operation takes at most **three** base-object steps:
//!
//! 1. `MaxRead` the alternation counter `m`. The derived object's value
//!    after `t` alternations is `(init + t) mod 2`. If the value being
//!    swapped in equals the current value, the operation is *invisible* —
//!    it returns immediately (one step), linearized at the read.
//! 2. Otherwise `TestAndSet` the bit `T[t+1]` to claim alternation `t+1`.
//!    Every contender for `T[t+1]` read `m = t` and carries the *same*
//!    value (the complement of the current one), so the loser may linearize
//!    immediately after the winner: the winner displaces the old value, the
//!    loser displaces the value both of them carried.
//! 3. `MaxWrite(t+1)` into `m`. Winners *and* losers publish — a loser
//!    that returned without helping would let a later fast-path read
//!    observe the pre-alternation value after the alternation completed,
//!    violating real-time order.
//!
//! Alternations are claimed in order with no gaps: to contend for `T[t+2]`
//! a process must have read `m >= t+1`, which requires `T[t+1]` to have
//! been won and published. The TAS array is sized by the alternation
//! budget (at most one alternation per nontrivial high-level operation).
//!
//! These invariants are *checked*, not trusted: the simulator layer
//! model-checks linearizability of the derived swap against the atomic
//! swap spec via the `chain_consistent` discipline
//! (`swapcons_objects::linearize`) over every interleaving of small
//! scripts, and runs consensus-from-swap on both stacks with verdict
//! parity.

use std::fmt;
use std::hash::Hash;

use crate::op::{HistorylessOp, ObjectOp, Response};
use crate::schema::{Domain, ObjectSchema};

/// The outcome of advancing an [`ObjectProgram`] by one base-object step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramStep<Pc, R> {
    /// The program needs more base-object steps; resume from this counter.
    Continue(Pc),
    /// The high-level operation completed with this response.
    Return(R),
}

/// A per-process sub-state-machine implementing one derived object from a
/// set of base objects.
///
/// A program is *deterministic* and *bounded*: `compile` maps a high-level
/// operation to a start program counter, `poised` names the base operation
/// the counter is poised to apply, and `observe` consumes the base response,
/// either continuing or returning the high-level response. Base values are
/// integer domain points (`u64`) so that derived constructions compose with
/// the simulator's schema checking unchanged.
pub trait ObjectProgram {
    /// The program-counter type: where a process stands mid-operation.
    type Pc: Clone + Eq + Hash + fmt::Debug + Send + Sync;

    /// The schema of the *derived* object this program implements.
    fn object_schema(&self) -> ObjectSchema;

    /// Number of base objects backing one derived object.
    fn num_base_objects(&self) -> usize;

    /// Schema of base object `idx` (`0..num_base_objects()`).
    fn base_schema(&self, idx: usize) -> ObjectSchema;

    /// Initial value of base object `idx`.
    fn initial_base_value(&self, idx: usize) -> u64;

    /// Compile a high-level operation into a start program counter.
    ///
    /// # Panics
    ///
    /// Panics when the operation is not permitted by
    /// [`object_schema`](ObjectProgram::object_schema) — the simulator
    /// validates high-level operations against the derived schema before
    /// compiling them.
    fn compile(&self, op: &ObjectOp<u64>) -> Self::Pc;

    /// The base object (by local index) and base operation the program is
    /// poised to apply at `pc`.
    fn poised(&self, pc: &Self::Pc) -> (usize, ObjectOp<u64>);

    /// Consume the response to the poised base operation.
    fn observe(&self, pc: Self::Pc, resp: Response<u64>) -> ProgramStep<Self::Pc, Response<u64>>;

    /// An upper bound on base-object steps per high-level operation — the
    /// wait-freedom certificate of the construction.
    fn max_steps_per_op(&self) -> usize;

    /// Run one high-level operation to completion against base values held
    /// in `base` (the sequential reference semantics), returning the
    /// high-level response and the number of base steps taken.
    ///
    /// This is the atomic (uninterleaved) execution; the simulator's layered
    /// protocol interleaves the same program across processes.
    fn run_op_sequential(&self, base: &mut [u64], op: &ObjectOp<u64>) -> (Response<u64>, usize) {
        let bound = self.max_steps_per_op();
        let mut pc = self.compile(op);
        let mut steps = 0usize;
        loop {
            let (idx, base_op) = self.poised(&pc);
            let resp = apply_to_point(&base_op, &mut base[idx]);
            steps += 1;
            match self.observe(pc, resp) {
                ProgramStep::Continue(next) => {
                    assert!(
                        steps < bound,
                        "program exceeded its declared step bound {bound}"
                    );
                    pc = next;
                }
                ProgramStep::Return(r) => return (r, steps),
            }
        }
    }
}

/// Apply an operation to an integer-valued object slot — the reference
/// semantics of every [`ObjectOp`] kind over domain points. The simulator's
/// step paths implement the same semantics generically over protocol value
/// types; this concrete form is what derived-object programs and their
/// tests run against.
pub fn apply_to_point(op: &ObjectOp<u64>, slot: &mut u64) -> Response<u64> {
    match op {
        ObjectOp::Historyless(HistorylessOp::Read) => Response::to_read(*slot),
        ObjectOp::Historyless(HistorylessOp::Write(v)) => {
            *slot = *v;
            Response::to_write()
        }
        ObjectOp::Historyless(HistorylessOp::Swap(v)) => {
            let prev = std::mem::replace(slot, *v);
            Response::to_swap(prev)
        }
        ObjectOp::TestAndSet(v) => {
            let won = *slot == 0;
            if won {
                *slot = *v;
            }
            Response::to_test_and_set(won)
        }
        ObjectOp::MaxWrite(v) => {
            if *v > *slot {
                *slot = *v;
            }
            Response::to_max_write()
        }
        ObjectOp::MaxRead => Response::to_max_read(*slot),
    }
}

/// Aspnes's one-bit swap object from a single max register and an array of
/// test-and-set bits. See the module docs for the construction.
///
/// Base object layout: index `0` is the max register `m` (the alternation
/// counter, domain `{0, …, capacity}`); index `j` for `j in 1..=capacity`
/// is the test-and-set bit `T[j]` claiming alternation `j`.
///
/// `capacity` is the alternation budget: an upper bound on the number of
/// *nontrivial* high-level operations ever applied to the derived object
/// (each alternation is claimed by at most one of them). Exceeding it is a
/// deterministic panic, never silent wraparound.
///
/// # Example
///
/// ```
/// use swapcons_objects::{AspnesOneBitSwap, ObjectOp, ObjectProgram, Response};
///
/// let program = AspnesOneBitSwap::new(2, 0);
/// let mut base = program.initial_base_values();
/// // Swapping in the complement alternates the bit in three base steps…
/// assert_eq!(
///     program.run_op_sequential(&mut base, &ObjectOp::swap(1)),
///     (Response::to_swap(0), 3),
/// );
/// // …and swapping in the current value collapses to a single read.
/// assert_eq!(
///     program.run_op_sequential(&mut base, &ObjectOp::swap(1)),
///     (Response::to_swap(1), 1),
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AspnesOneBitSwap {
    capacity: usize,
    init: u64,
}

/// Program counter of [`AspnesOneBitSwap`]. The embedded values are the
/// operand bit `v`, the alternation count `t` read from the max register,
/// and whether the high-level operation was a `Write` (response is an
/// acknowledgement) rather than a `Swap`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AspnesPc {
    /// Step 1 of a swap/write: `MaxRead` the alternation counter.
    ReadAlternations {
        /// The bit being swapped in.
        v: u64,
        /// Whether to acknowledge instead of returning the displaced bit.
        ack: bool,
    },
    /// Step 2: claim alternation `t + 1` with `TestAndSet` on `T[t+1]`.
    Claim {
        /// The bit being swapped in.
        v: u64,
        /// The alternation count read in step 1.
        t: u64,
        /// Whether to acknowledge instead of returning the displaced bit.
        ack: bool,
    },
    /// Step 3: publish the alternation with `MaxWrite(t + 1)`, then return.
    Publish {
        /// The displaced bit to return.
        ret: u64,
        /// The alternation index being published.
        t1: u64,
        /// Whether to acknowledge instead of returning the displaced bit.
        ack: bool,
    },
    /// The single step of a read: `MaxRead` the counter, return its parity.
    ReadMax,
}

impl AspnesOneBitSwap {
    /// A one-bit swap program with the given alternation budget and initial
    /// bit (`0` or `1`).
    pub fn new(capacity: usize, init: u64) -> Self {
        assert!(init <= 1, "a one-bit swap holds 0 or 1, got {init}");
        AspnesOneBitSwap { capacity, init }
    }

    /// The alternation budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The derived object's initial bit.
    pub fn init(&self) -> u64 {
        self.init
    }

    /// The derived object's value after `t` alternations.
    fn value_after(&self, t: u64) -> u64 {
        (self.init + t) % 2
    }

    /// Initial values of all base objects, in layout order.
    pub fn initial_base_values(&self) -> Vec<u64> {
        (0..self.num_base_objects())
            .map(|i| self.initial_base_value(i))
            .collect()
    }
}

impl ObjectProgram for AspnesOneBitSwap {
    type Pc = AspnesPc;

    fn object_schema(&self) -> ObjectSchema {
        ObjectSchema::readable_binary_swap()
    }

    fn num_base_objects(&self) -> usize {
        1 + self.capacity
    }

    fn base_schema(&self, idx: usize) -> ObjectSchema {
        assert!(idx < self.num_base_objects(), "base index {idx} out of range");
        if idx == 0 {
            ObjectSchema::max_register(Domain::Bounded(self.capacity as u64 + 1))
        } else {
            ObjectSchema::test_and_set()
        }
    }

    fn initial_base_value(&self, idx: usize) -> u64 {
        assert!(idx < self.num_base_objects(), "base index {idx} out of range");
        0
    }

    fn compile(&self, op: &ObjectOp<u64>) -> AspnesPc {
        match op {
            ObjectOp::Historyless(HistorylessOp::Read) => AspnesPc::ReadMax,
            ObjectOp::Historyless(HistorylessOp::Swap(v)) => {
                assert!(*v <= 1, "one-bit swap operand must be 0 or 1, got {v}");
                AspnesPc::ReadAlternations { v: *v, ack: false }
            }
            ObjectOp::Historyless(HistorylessOp::Write(v)) => {
                assert!(*v <= 1, "one-bit swap operand must be 0 or 1, got {v}");
                AspnesPc::ReadAlternations { v: *v, ack: true }
            }
            other => panic!("one-bit swap does not support {other:?}"),
        }
    }

    fn poised(&self, pc: &AspnesPc) -> (usize, ObjectOp<u64>) {
        match pc {
            AspnesPc::ReadAlternations { .. } | AspnesPc::ReadMax => (0, ObjectOp::MaxRead),
            AspnesPc::Claim { t, .. } => {
                let j = t + 1;
                assert!(
                    j <= self.capacity as u64,
                    "alternation budget exceeded: claiming alternation {j} \
                     with capacity {} — size the TAS array by the number of \
                     nontrivial operations",
                    self.capacity
                );
                (j as usize, ObjectOp::TestAndSet(1))
            }
            AspnesPc::Publish { t1, .. } => (0, ObjectOp::MaxWrite(*t1)),
        }
    }

    fn observe(&self, pc: AspnesPc, resp: Response<u64>) -> ProgramStep<AspnesPc, Response<u64>> {
        match pc {
            AspnesPc::ReadAlternations { v, ack } => {
                let t = resp.expect_value("max-read returns the alternation count");
                if v == self.value_after(t) {
                    // Invisible swap: the operand equals the current bit, so
                    // the operation linearizes at the read and changes
                    // nothing.
                    ProgramStep::Return(if ack {
                        Response::to_write()
                    } else {
                        Response::to_swap(v)
                    })
                } else {
                    ProgramStep::Continue(AspnesPc::Claim { v, t, ack })
                }
            }
            AspnesPc::Claim { v, t, ack } => {
                let won = resp.expect_won("test-and-set returns a verdict");
                // Winner: displaces the pre-alternation bit. Loser: every
                // contender for T[t+1] carried the same operand v, so it
                // linearizes right after the winner and displaces v.
                let ret = if won { self.value_after(t) } else { v };
                ProgramStep::Continue(AspnesPc::Publish { ret, t1: t + 1, ack })
            }
            AspnesPc::Publish { ret, ack, .. } => {
                debug_assert_eq!(resp, Response::Ack);
                ProgramStep::Return(if ack {
                    Response::to_write()
                } else {
                    Response::to_swap(ret)
                })
            }
            AspnesPc::ReadMax => {
                let t = resp.expect_value("max-read returns the alternation count");
                ProgramStep::Return(Response::to_read(self.value_after(t)))
            }
        }
    }

    fn max_steps_per_op(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ReadableSwapCell;

    /// Sequentially, the derived swap must be indistinguishable from an
    /// atomic readable binary swap cell: same responses, op by op.
    fn check_sequential_agreement(init: u64, script: &[ObjectOp<u64>]) {
        let program = AspnesOneBitSwap::new(script.len(), init);
        let mut base = program.initial_base_values();
        let mut cell = ReadableSwapCell::new(init);
        for (i, op) in script.iter().enumerate() {
            let (derived, steps) = program.run_op_sequential(&mut base, op);
            let atomic = match op.as_historyless() {
                Some(h) => cell.apply(h),
                None => panic!("script must be historyless"),
            };
            assert_eq!(derived, atomic, "op {i} ({op:?}) diverged");
            assert!(steps <= program.max_steps_per_op());
        }
    }

    #[test]
    fn sequential_agreement_with_atomic_cell() {
        use ObjectOp as O;
        for init in [0, 1] {
            check_sequential_agreement(
                init,
                &[
                    O::swap(1),
                    O::swap(1),
                    O::read(),
                    O::swap(0),
                    O::read(),
                    O::swap(0),
                    O::swap(1),
                    O::write(0),
                    O::read(),
                    O::swap(0),
                ],
            );
        }
    }

    #[test]
    fn sequential_agreement_exhaustive_short_scripts() {
        // Every script of length 3 over {swap 0, swap 1, read}, both inits.
        let alphabet = [ObjectOp::swap(0), ObjectOp::swap(1), ObjectOp::read()];
        for init in [0u64, 1] {
            for a in &alphabet {
                for b in &alphabet {
                    for c in &alphabet {
                        check_sequential_agreement(
                            init,
                            &[a.clone(), b.clone(), c.clone()],
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn worst_case_step_count_is_exactly_three() {
        // Pinned regression: an alternating swap costs exactly 3 base steps
        // (read, claim, publish); an invisible swap costs exactly 1; a read
        // costs exactly 1. This is the construction's headline bound.
        let program = AspnesOneBitSwap::new(4, 0);
        let mut base = program.initial_base_values();
        let (_, steps) = program.run_op_sequential(&mut base, &ObjectOp::swap(1));
        assert_eq!(steps, 3, "alternating swap");
        let (_, steps) = program.run_op_sequential(&mut base, &ObjectOp::swap(1));
        assert_eq!(steps, 1, "invisible swap");
        let (_, steps) = program.run_op_sequential(&mut base, &ObjectOp::read());
        assert_eq!(steps, 1, "read");
        let (_, steps) = program.run_op_sequential(&mut base, &ObjectOp::swap(0));
        assert_eq!(steps, 3, "alternating swap back");
        assert_eq!(program.max_steps_per_op(), 3);
    }

    #[test]
    fn base_layout_prices_the_construction() {
        let program = AspnesOneBitSwap::new(3, 0);
        assert_eq!(program.num_base_objects(), 4);
        let m = program.base_schema(0);
        assert_eq!(m.kind(), crate::ObjectKind::MaxRegister);
        assert_eq!(m.domain(), Domain::Bounded(4));
        assert!(!m.kind().is_historyless());
        for j in 1..=3 {
            let t = program.base_schema(j);
            assert_eq!(t, ObjectSchema::test_and_set());
            assert!(t.kind().is_historyless());
            assert_eq!(program.initial_base_value(j), 0);
        }
        assert_eq!(program.object_schema(), ObjectSchema::readable_binary_swap());
        assert_eq!(program.initial_base_values(), vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "alternation budget exceeded")]
    fn exceeding_the_alternation_budget_panics() {
        let program = AspnesOneBitSwap::new(1, 0);
        let mut base = program.initial_base_values();
        let _ = program.run_op_sequential(&mut base, &ObjectOp::swap(1));
        // Budget spent: the next alternation must claim T[2], which does
        // not exist.
        let _ = program.run_op_sequential(&mut base, &ObjectOp::swap(0));
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn compiling_a_foreign_op_panics() {
        let _ = AspnesOneBitSwap::new(1, 0).compile(&ObjectOp::MaxRead);
    }

    #[test]
    fn writes_collapse_like_swaps() {
        let program = AspnesOneBitSwap::new(2, 0);
        let mut base = program.initial_base_values();
        let (r, steps) = program.run_op_sequential(&mut base, &ObjectOp::write(1));
        assert_eq!(r, Response::Ack);
        assert_eq!(steps, 3);
        let (r, steps) = program.run_op_sequential(&mut base, &ObjectOp::write(1));
        assert_eq!(r, Response::Ack);
        assert_eq!(steps, 1);
        let (r, _) = program.run_op_sequential(&mut base, &ObjectOp::read());
        assert_eq!(r, Response::Value(1));
    }

    #[test]
    fn reference_point_semantics() {
        let mut slot = 0u64;
        assert_eq!(
            apply_to_point(&ObjectOp::TestAndSet(1), &mut slot),
            Response::Won(true)
        );
        assert_eq!(slot, 1);
        assert_eq!(
            apply_to_point(&ObjectOp::TestAndSet(1), &mut slot),
            Response::Won(false)
        );
        let mut slot = 3u64;
        assert_eq!(apply_to_point(&ObjectOp::MaxWrite(2), &mut slot), Response::Ack);
        assert_eq!(slot, 3, "max-write below the current value is a no-op");
        assert_eq!(apply_to_point(&ObjectOp::MaxWrite(5), &mut slot), Response::Ack);
        assert_eq!(slot, 5);
        assert_eq!(apply_to_point(&ObjectOp::MaxRead, &mut slot), Response::Value(5));
        assert_eq!(
            apply_to_point(&ObjectOp::swap(9), &mut slot),
            Response::Value(5)
        );
        assert_eq!(slot, 9);
    }
}
