//! Simulation of arbitrary historyless objects by readable swap objects.
//!
//! The paper (Section 1, citing Ellen, Fatourou, Ruppert \[14\]) relies on the
//! fact that **any historyless object can be simulated by a readable swap
//! object with the same domain**, and any historyless object that supports
//! only nontrivial operations can be simulated by a (non-readable) swap
//! object. This is what lets lower bounds proved for (readable) swap objects
//! transfer to the whole historyless class (Corollaries 19 and 23).
//!
//! The construction is direct. A historyless object's value is determined by
//! the last nontrivial operation applied, so each nontrivial operation `op`
//! denotes a constant *target value* `w(op)`, and its response is a function
//! of the value it displaced. Therefore:
//!
//! * a nontrivial `op` is simulated by `Swap(w(op))`, computing the response
//!   from the swapped-out value;
//! * a trivial `op` is simulated by `Read`, computing the response from the
//!   observed value.
//!
//! [`HistorylessSpec`] captures a historyless type abstractly, and
//! [`SimulatedHistoryless`] runs it over a [`ReadableSwapCell`]. Unit tests
//! check the simulation against the directly-implemented cells for registers
//! and test-and-set.

use std::fmt::Debug;

use crate::cell::ReadableSwapCell;

/// Abstract description of a historyless object type.
///
/// Implementors describe, for each operation descriptor:
/// * whether it is trivial,
/// * the constant value it installs if nontrivial ([`HistorylessSpec::target_value`]),
/// * and the response computed from the displaced/observed value.
pub trait HistorylessSpec {
    /// The object's value type.
    type Value: Clone + Debug;
    /// Operation descriptors (operation name + arguments).
    type Op: Clone + Debug;
    /// Responses returned to callers.
    type Resp: Clone + Debug + PartialEq;

    /// Whether `op` can never modify the object's value.
    fn is_trivial(&self, op: &Self::Op) -> bool;

    /// The value the object holds after `op`, for nontrivial `op`.
    ///
    /// Must return `None` exactly when `op` is trivial. The value must not
    /// depend on the object's current state — that is the historyless
    /// property, and [`SimulatedHistoryless`] debug-asserts consistency with
    /// [`HistorylessSpec::is_trivial`].
    fn target_value(&self, op: &Self::Op) -> Option<Self::Value>;

    /// The response to `op` given the value it observed (for trivial ops) or
    /// displaced (for nontrivial ops).
    fn response(&self, op: &Self::Op, observed: &Self::Value) -> Self::Resp;
}

/// A historyless object executed over a single readable swap object, per the
/// \[14\] simulation.
///
/// # Example
///
/// ```
/// use swapcons_objects::historyless::{SimulatedHistoryless, TestAndSetSpec, TasOp};
///
/// let mut tas = SimulatedHistoryless::new(TestAndSetSpec, false);
/// assert_eq!(tas.apply(&TasOp::TestAndSet), true);  // won
/// assert_eq!(tas.apply(&TasOp::TestAndSet), false); // lost
/// assert_eq!(tas.apply(&TasOp::Read), false);       // read sees "set"? see TasOp docs
/// ```
#[derive(Clone, Debug)]
pub struct SimulatedHistoryless<S: HistorylessSpec> {
    spec: S,
    cell: ReadableSwapCell<S::Value>,
}

impl<S: HistorylessSpec> SimulatedHistoryless<S> {
    /// Create the simulation with the given spec and initial value.
    pub fn new(spec: S, initial: S::Value) -> Self {
        SimulatedHistoryless {
            spec,
            cell: ReadableSwapCell::new(initial),
        }
    }

    /// Apply `op`, using exactly one readable-swap operation.
    pub fn apply(&mut self, op: &S::Op) -> S::Resp {
        match self.spec.target_value(op) {
            Some(target) => {
                debug_assert!(!self.spec.is_trivial(op));
                let displaced = self.cell.swap(target);
                self.spec.response(op, &displaced)
            }
            None => {
                debug_assert!(self.spec.is_trivial(op));
                let observed = self.cell.read();
                self.spec.response(op, &observed)
            }
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// System-level peek at the value (for tests/assertions).
    pub fn peek(&self) -> S::Value {
        self.cell.read()
    }
}

/// Operations of a test-and-set object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TasOp {
    /// Nontrivial: set the object; respond `true` iff it was previously
    /// unset (the caller "won").
    TestAndSet,
    /// Trivial: respond with `true` iff the object is still *unset*. (The
    /// polarity matches [`TasOp::TestAndSet`]: `true` means "a test-and-set
    /// now would win".)
    Read,
}

/// [`HistorylessSpec`] for a test-and-set object with value type `bool`
/// (`false` = unset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestAndSetSpec;

impl HistorylessSpec for TestAndSetSpec {
    type Value = bool;
    type Op = TasOp;
    type Resp = bool;

    fn is_trivial(&self, op: &TasOp) -> bool {
        matches!(op, TasOp::Read)
    }

    fn target_value(&self, op: &TasOp) -> Option<bool> {
        match op {
            TasOp::TestAndSet => Some(true),
            TasOp::Read => None,
        }
    }

    fn response(&self, op: &TasOp, observed: &bool) -> bool {
        match op {
            // Won iff previously unset.
            TasOp::TestAndSet => !*observed,
            // "Would a test-and-set win now?"
            TasOp::Read => !*observed,
        }
    }
}

/// Operations of a register with values in `V`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegisterOp<V> {
    /// Trivial: return the current value.
    Read,
    /// Nontrivial: set the value; the response is an uninformative `None`.
    Write(V),
}

/// [`HistorylessSpec`] for a `u64` register. The response type is
/// `Option<u64>`: `Some(v)` for reads, `None` (ack) for writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegisterSpec;

impl HistorylessSpec for RegisterSpec {
    type Value = u64;
    type Op = RegisterOp<u64>;
    type Resp = Option<u64>;

    fn is_trivial(&self, op: &Self::Op) -> bool {
        matches!(op, RegisterOp::Read)
    }

    fn target_value(&self, op: &Self::Op) -> Option<u64> {
        match op {
            RegisterOp::Read => None,
            RegisterOp::Write(v) => Some(*v),
        }
    }

    fn response(&self, op: &Self::Op, observed: &u64) -> Option<u64> {
        match op {
            RegisterOp::Read => Some(*observed),
            RegisterOp::Write(_) => None,
        }
    }
}

/// Operations of a fetch-and-store (swap) object — included to close the
/// loop: the simulation of a swap object by a readable swap object is the
/// identity embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchAndStoreOp<V>(pub V);

/// [`HistorylessSpec`] for a fetch-and-store (swap) object over `u64`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchAndStoreSpec;

impl HistorylessSpec for FetchAndStoreSpec {
    type Value = u64;
    type Op = FetchAndStoreOp<u64>;
    type Resp = u64;

    fn is_trivial(&self, _op: &Self::Op) -> bool {
        false
    }

    fn target_value(&self, op: &Self::Op) -> Option<u64> {
        Some(op.0)
    }

    fn response(&self, _op: &Self::Op, observed: &u64) -> u64 {
        *observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{RegisterCell, SwapCell, TasCell};

    #[test]
    fn simulated_tas_matches_direct_tas() {
        let mut direct = TasCell::new();
        let mut sim = SimulatedHistoryless::new(TestAndSetSpec, false);
        // Interleave reads and test-and-sets; responses must agree.
        assert_eq!(sim.apply(&TasOp::Read), !direct.read());
        assert_eq!(sim.apply(&TasOp::TestAndSet), direct.test_and_set());
        assert_eq!(sim.apply(&TasOp::TestAndSet), direct.test_and_set());
        assert_eq!(sim.apply(&TasOp::Read), !direct.read());
    }

    #[test]
    fn simulated_register_matches_direct_register() {
        let mut direct = RegisterCell::new(0u64);
        let mut sim = SimulatedHistoryless::new(RegisterSpec, 0u64);
        let script = [
            RegisterOp::Read,
            RegisterOp::Write(3),
            RegisterOp::Read,
            RegisterOp::Write(9),
            RegisterOp::Write(11),
            RegisterOp::Read,
        ];
        for op in &script {
            let expected = match op {
                RegisterOp::Read => Some(direct.read()),
                RegisterOp::Write(v) => {
                    direct.write(*v);
                    None
                }
            };
            assert_eq!(sim.apply(op), expected);
        }
    }

    #[test]
    fn simulated_swap_matches_direct_swap() {
        let mut direct = SwapCell::new(0u64);
        let mut sim = SimulatedHistoryless::new(FetchAndStoreSpec, 0u64);
        for v in [5u64, 2, 2, 19, 0] {
            assert_eq!(sim.apply(&FetchAndStoreOp(v)), direct.swap(v));
        }
    }

    #[test]
    fn simulation_uses_same_domain() {
        // The simulation stores the historyless object's value directly, so
        // a binary historyless object yields a binary readable swap object —
        // the domain-preservation property Corollaries 19/23 depend on.
        let mut sim = SimulatedHistoryless::new(TestAndSetSpec, false);
        sim.apply(&TasOp::TestAndSet);
        // Value space is exactly {false, true}.
        assert!(sim.peek());
    }

    #[test]
    fn tas_read_polarity() {
        let mut sim = SimulatedHistoryless::new(TestAndSetSpec, false);
        assert!(sim.apply(&TasOp::Read), "unset: a TAS would win");
        sim.apply(&TasOp::TestAndSet);
        assert!(!sim.apply(&TasOp::Read), "set: a TAS would lose");
    }
}
