//! Historyless shared-object model for the PODC 2022 paper *The Space
//! Complexity of Consensus from Swap*.
//!
//! A **historyless object** has the property that its value depends only on
//! the last *nontrivial* operation applied to it (an operation is trivial if
//! it can never modify the value). The paper's results concern three kinds of
//! historyless objects:
//!
//! * **swap objects** — support only `Swap(v)`, which sets the value to `v`
//!   and returns the previous value;
//! * **readable swap objects** — support `Swap(v)` and `Read`, possibly with
//!   a bounded domain;
//! * **registers** — support `Read` and `Write(v)`.
//!
//! This crate provides:
//!
//! * [`HistorylessOp`] / [`Response`] — the operation/response alphabet shared
//!   by the deterministic simulator (`swapcons-sim`) and every algorithm;
//! * [`ObjectSchema`] / [`ObjectKind`] / [`Domain`] — per-object capability
//!   descriptors, so each algorithm's *claimed* object type (and hence the
//!   space-complexity row of Table 1 it belongs to) is machine-checked;
//! * deterministic single-threaded cells ([`cell::SwapCell`],
//!   [`cell::ReadableSwapCell`], [`cell::RegisterCell`], [`cell::TasCell`])
//!   used by the simulator;
//! * lock-free / linearizable atomic objects for real threads
//!   ([`atomic::AtomicSwap`], [`atomic::AtomicWordSwap`],
//!   [`atomic::AtomicRegister`], [`atomic::AtomicTas`]);
//! * the classical simulation of *any* historyless object by a single
//!   readable swap object with the same domain ([`historyless`] — Ellen,
//!   Fatourou, Ruppert \[14\] in the paper's bibliography).
//!
//! # Example
//!
//! ```
//! use swapcons_objects::{HistorylessOp, Response, cell::ReadableSwapCell};
//!
//! let mut cell = ReadableSwapCell::new(0u64);
//! assert_eq!(cell.apply(&HistorylessOp::Swap(7)), Response::Value(0));
//! assert_eq!(cell.apply(&HistorylessOp::Read), Response::Value(7));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic;
pub mod cell;
pub mod derived;
pub mod historyless;
pub mod linearize;
mod op;
mod schema;

pub use derived::{AspnesOneBitSwap, ObjectProgram, ProgramStep};
pub use op::{HistorylessOp, ObjectOp, OpKind, Response};
pub use schema::{Domain, ObjectKind, ObjectSchema, SchemaError};
