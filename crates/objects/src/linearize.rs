//! Linearizability checking for swap-object histories.
//!
//! A swap object's sequential behavior is a *chain*: each operation returns
//! the value installed by the previous operation (or the initial value).
//! Given a set of completed operations `{(swapped_in, returned)}` collected
//! from concurrent threads — with no ordering information at all — the
//! history is linearizable as a swap object iff the operations can be
//! arranged in one chain starting from the initial value.
//!
//! Viewing each operation as a directed edge `returned → swapped_in`, a
//! valid chain is exactly an **Eulerian path** through every edge starting
//! at the initial value. This gives an `O(ops)` decision procedure
//! ([`chain_consistent`]) — compare to linearizability checking for general
//! objects, which is NP-complete. The stress tests for
//! [`AtomicSwap`](crate::atomic::AtomicSwap) and
//! [`AtomicWordSwap`](crate::atomic::AtomicWordSwap) collect per-thread logs
//! and assert chain consistency, machine-checking the objects' atomicity
//! claims (value conservation and exchange totality are corollaries).
//!
//! Note: this validates *sequential consistency* of the value flow; it is
//! also full linearizability here because a swap object's chain fixes the
//! real-time order of effects — any violation of real-time order by a
//! purported chain would require two operations to observe the same
//! predecessor, which the chain structure forbids.

use std::collections::HashMap;
use std::hash::Hash;

/// One completed swap operation: the value it installed and the value it
/// displaced (its response).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SwapOp<V> {
    /// The operation's argument (value installed).
    pub swapped_in: V,
    /// The operation's response (value displaced).
    pub returned: V,
}

impl<V> SwapOp<V> {
    /// Construct an operation record.
    pub fn new(swapped_in: V, returned: V) -> Self {
        SwapOp {
            swapped_in,
            returned,
        }
    }
}

/// Whether the unordered collection of swap operations is linearizable over
/// a swap object initialized to `initial` — i.e. whether an Eulerian
/// ordering exists: `ops` can be sequenced so the first returns `initial`
/// and each subsequent op returns its predecessor's `swapped_in`.
///
/// Runs in `O(ops)` expected time.
///
/// # Example
///
/// ```
/// use swapcons_objects::linearize::{chain_consistent, SwapOp};
///
/// // init=0: 0 -> 5 -> 2 (orderable), regardless of presentation order.
/// let ops = vec![SwapOp::new(2, 5), SwapOp::new(5, 0)];
/// assert!(chain_consistent(&0, &ops));
///
/// // Two operations both claim to have displaced 0: impossible.
/// let ops = vec![SwapOp::new(1, 0), SwapOp::new(2, 0)];
/// assert!(!chain_consistent(&0, &ops));
/// ```
pub fn chain_consistent<V: Eq + Hash + Clone>(initial: &V, ops: &[SwapOp<V>]) -> bool {
    if ops.is_empty() {
        return true;
    }
    // Node bookkeeping: out-degree = #ops returning v (edges leaving v),
    // in-degree = #ops swapping v in (edges entering v).
    let mut out_deg: HashMap<&V, i64> = HashMap::new();
    let mut in_deg: HashMap<&V, i64> = HashMap::new();
    for op in ops {
        *out_deg.entry(&op.returned).or_insert(0) += 1;
        *in_deg.entry(&op.swapped_in).or_insert(0) += 1;
    }
    // Degree conditions for an Eulerian path that must START at `initial`:
    // out(initial) - in(initial) = 1, one node with in - out = 1 (the end),
    // all others balanced — or all balanced and the path is a circuit
    // returning to `initial`.
    let mut start_surplus = 0i64;
    let mut end_surplus = 0i64;
    let nodes: std::collections::HashSet<&V> =
        out_deg.keys().chain(in_deg.keys()).copied().collect();
    for v in &nodes {
        let diff = out_deg.get(v).copied().unwrap_or(0) - in_deg.get(v).copied().unwrap_or(0);
        match diff {
            0 => {}
            1 => {
                if *v != initial || start_surplus > 0 {
                    return false;
                }
                start_surplus += 1;
            }
            -1 => {
                if end_surplus > 0 {
                    return false;
                }
                end_surplus += 1;
            }
            _ => return false,
        }
    }
    if start_surplus != end_surplus {
        return false;
    }
    if start_surplus == 0 {
        // Circuit case: initial must actually have edges.
        if out_deg.get(initial).copied().unwrap_or(0) == 0 {
            return false;
        }
    }
    // Connectivity: every edge reachable from `initial` following edges
    // forward (standard Eulerian-path condition on the underlying graph;
    // for directed graphs with balanced/one-off degrees, forward
    // reachability from the start suffices).
    let mut adj: HashMap<&V, Vec<&V>> = HashMap::new();
    for op in ops {
        adj.entry(&op.returned).or_default().push(&op.swapped_in);
    }
    let mut seen: std::collections::HashSet<&V> = std::collections::HashSet::new();
    let mut stack = vec![initial];
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        if let Some(next) = adj.get(v) {
            for w in next {
                stack.push(w);
            }
        }
    }
    // Every node with any degree must be reachable.
    nodes.into_iter().all(|v| seen.contains(v))
}

/// Reconstruct an explicit linearization order (indices into `ops`), when
/// one exists. Uses Hierholzer's algorithm; `O(ops)` expected.
///
/// Returns `None` when the history is not chain-consistent.
pub fn reconstruct_chain<V: Eq + Hash + Clone>(
    initial: &V,
    ops: &[SwapOp<V>],
) -> Option<Vec<usize>> {
    if !chain_consistent(initial, ops) {
        return None;
    }
    if ops.is_empty() {
        return Some(vec![]);
    }
    // Hierholzer over edge indices.
    let mut adj: HashMap<&V, Vec<usize>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        adj.entry(&op.returned).or_default().push(i);
    }
    let mut path: Vec<usize> = Vec::with_capacity(ops.len());
    let mut stack: Vec<(&V, Option<usize>)> = vec![(initial, None)];
    while let Some((v, via)) = stack.last().cloned() {
        if let Some(edges) = adj.get_mut(v) {
            if let Some(edge) = edges.pop() {
                stack.push((&ops[edge].swapped_in, Some(edge)));
                continue;
            }
        }
        stack.pop();
        if let Some(edge) = via {
            path.push(edge);
        }
    }
    if path.len() != ops.len() {
        return None;
    }
    path.reverse();
    // Sanity: verify the chain.
    debug_assert!({
        let mut cur = initial.clone();
        path.iter().all(|&i| {
            let ok = ops[i].returned == cur;
            cur = ops[i].swapped_in.clone();
            ok
        })
    });
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u64, r: u64) -> SwapOp<u64> {
        SwapOp::new(i, r)
    }

    #[test]
    fn empty_history_is_consistent() {
        assert!(chain_consistent(&0u64, &[]));
        assert_eq!(reconstruct_chain(&0u64, &[]), Some(vec![]));
    }

    #[test]
    fn single_op_must_return_initial() {
        assert!(chain_consistent(&0, &[op(5, 0)]));
        assert!(!chain_consistent(&0, &[op(5, 1)]));
    }

    #[test]
    fn shuffled_chain_is_recovered() {
        // 0 -> 3 -> 3 -> 1 -> 0 -> 2 (values may repeat).
        let ops = [op(3, 0), op(3, 3), op(1, 3), op(0, 1), op(2, 0)];
        for perm in [
            vec![0usize, 1, 2, 3, 4],
            vec![4, 3, 2, 1, 0],
            vec![2, 0, 4, 1, 3],
        ] {
            let shuffled: Vec<_> = perm.iter().map(|&i| ops[i].clone()).collect();
            assert!(chain_consistent(&0, &shuffled), "perm {perm:?}");
            let order = reconstruct_chain(&0, &shuffled).unwrap();
            // Verify explicitly.
            let mut cur = 0u64;
            for &i in &order {
                assert_eq!(shuffled[i].returned, cur);
                cur = shuffled[i].swapped_in;
            }
        }
    }

    #[test]
    fn duplicate_displacement_rejected() {
        // Two ops claim to have displaced the same unique token.
        assert!(!chain_consistent(&0, &[op(1, 0), op(2, 0)]));
    }

    #[test]
    fn lost_token_rejected() {
        // An op returns a value nobody installed and that is not initial.
        assert!(!chain_consistent(&0, &[op(1, 0), op(2, 99)]));
    }

    #[test]
    fn disconnected_cycle_rejected() {
        // A valid prefix plus a floating 7 -> 7 cycle not connected to it.
        let ops = vec![op(1, 0), op(7, 7)];
        assert!(!chain_consistent(&0, &ops));
    }

    #[test]
    fn circuit_back_to_initial_accepted() {
        // 0 -> 1 -> 0: ends where it started (balanced degrees).
        let ops = vec![op(1, 0), op(0, 1)];
        assert!(chain_consistent(&0, &ops));
        assert!(reconstruct_chain(&0, &ops).is_some());
    }

    // Uses free-running std threads; meaningless under `--cfg conc_check`
    // where AtomicSwap routes through the model-only shims.
    #[cfg(not(conc_check))]
    #[test]
    fn concurrent_atomic_swap_history_is_chain_consistent() {
        use crate::atomic::AtomicSwap;
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const OPS: u64 = 500;
        let obj = Arc::new(AtomicSwap::new(0u64));
        let mut handles = Vec::new();
        for t in 1..=THREADS {
            let obj = Arc::clone(&obj);
            handles.push(std::thread::spawn(move || {
                let mut log = Vec::with_capacity(OPS as usize);
                for i in 0..OPS {
                    let token = t * 1_000_000 + i;
                    let returned = obj.swap(token);
                    log.push(SwapOp::new(token, returned));
                }
                log
            }));
        }
        let mut ops: Vec<SwapOp<u64>> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Close the chain with a final system swap so every token is
        // accounted for.
        let obj = Arc::try_unwrap(obj).unwrap_or_else(|_| panic!("sole owner"));
        let last = obj.into_inner();
        ops.push(SwapOp::new(u64::MAX, last));
        assert!(
            chain_consistent(&0, &ops),
            "atomic swap produced a non-linearizable history"
        );
        assert!(reconstruct_chain(&0, &ops).is_some());
    }
}
