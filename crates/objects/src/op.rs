//! The operation/response alphabet of shared objects.
//!
//! The alphabet is layered: [`HistorylessOp`] is the machine-checked
//! historyless fragment (read/write/swap — exactly the operations the
//! paper's Table 1 space accounting is stated over), and [`ObjectOp`] is
//! the full hierarchy that additionally admits the read-modify-write kinds
//! needed by derived-object constructions (test-and-set, max-register
//! write/read, after Aspnes's one-bit-swap-from-TAS-and-max-register).
//! Every historyless operation embeds into the hierarchy via `From`, and
//! [`ObjectOp::as_historyless`] recovers the fragment, so space-accounting
//! code can statically refuse non-historyless operations.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An operation on a historyless object.
///
/// Following Section 2 of the paper, an operation is *trivial* if it can
/// never modify the value of the object ([`HistorylessOp::Read`]) and
/// *nontrivial* otherwise ([`HistorylessOp::Write`], [`HistorylessOp::Swap`]).
/// A historyless object's value is fully determined by the last nontrivial
/// operation applied to it, which is why both `Write(v)` and `Swap(v)` map the
/// object to value `v` regardless of its prior state.
///
/// The type parameter `V` is the object's value type. Protocols built on
/// integer-valued objects typically use `u64` so that bounded domains
/// ([`crate::Domain::Bounded`]) can be enforced.
///
/// # Example
///
/// ```
/// use swapcons_objects::HistorylessOp;
///
/// assert!(HistorylessOp::<u64>::Read.is_trivial());
/// assert!(!HistorylessOp::Swap(3u64).is_trivial());
/// assert_eq!(HistorylessOp::Write(9u64).next_value(&4), Some(9));
/// assert_eq!(HistorylessOp::<u64>::Read.next_value(&4), None);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HistorylessOp<V> {
    /// Trivial operation: return the current value, leave it unchanged.
    Read,
    /// Nontrivial operation: set the value to the payload. The response is an
    /// acknowledgement carrying no information about the previous value.
    Write(V),
    /// Nontrivial operation: set the value to the payload and return the
    /// previous value atomically.
    Swap(V),
}

impl<V> HistorylessOp<V> {
    /// Returns `true` when the operation can never modify the object.
    pub fn is_trivial(&self) -> bool {
        matches!(self, HistorylessOp::Read)
    }

    /// Returns `true` when the operation always sets the object's value.
    pub fn is_nontrivial(&self) -> bool {
        !self.is_trivial()
    }

    /// The value the object holds after this operation is applied, or `None`
    /// if the operation is trivial (value unchanged).
    pub fn next_value(&self, _current: &V) -> Option<V>
    where
        V: Clone,
    {
        match self {
            HistorylessOp::Read => None,
            HistorylessOp::Write(v) | HistorylessOp::Swap(v) => Some(v.clone()),
        }
    }

    /// The response returned to the caller when the operation is applied to
    /// an object currently holding `current`.
    pub fn response(&self, current: &V) -> Response<V>
    where
        V: Clone,
    {
        match self {
            HistorylessOp::Read | HistorylessOp::Swap(_) => Response::Value(current.clone()),
            HistorylessOp::Write(_) => Response::Ack,
        }
    }

    /// The [`OpKind`] discriminant of this operation, independent of payload.
    pub fn kind(&self) -> OpKind {
        match self {
            HistorylessOp::Read => OpKind::Read,
            HistorylessOp::Write(_) => OpKind::Write,
            HistorylessOp::Swap(_) => OpKind::Swap,
        }
    }

    /// Borrow the payload of a nontrivial operation.
    pub fn payload(&self) -> Option<&V> {
        match self {
            HistorylessOp::Read => None,
            HistorylessOp::Write(v) | HistorylessOp::Swap(v) => Some(v),
        }
    }

    /// Consume the operation, yielding the payload of a nontrivial
    /// operation — the clone-free path for callers that apply the operation
    /// and do not keep it.
    pub fn into_payload(self) -> Option<V> {
        match self {
            HistorylessOp::Read => None,
            HistorylessOp::Write(v) | HistorylessOp::Swap(v) => Some(v),
        }
    }

    /// Map the payload type, preserving the operation kind.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> HistorylessOp<U> {
        match self {
            HistorylessOp::Read => HistorylessOp::Read,
            HistorylessOp::Write(v) => HistorylessOp::Write(f(v)),
            HistorylessOp::Swap(v) => HistorylessOp::Swap(f(v)),
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for HistorylessOp<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistorylessOp::Read => write!(f, "Read"),
            HistorylessOp::Write(v) => write!(f, "Write({v:?})"),
            HistorylessOp::Swap(v) => write!(f, "Swap({v:?})"),
        }
    }
}

/// An operation in the full object hierarchy.
///
/// [`ObjectOp::Historyless`] embeds the historyless fragment unchanged; the
/// remaining variants are the read-modify-write kinds used by derived-object
/// constructions:
///
/// * [`ObjectOp::TestAndSet`] installs its payload iff the object currently
///   holds the domain point `0`, and responds [`Response::Won`] with whether
///   it did — the one-shot test-and-set of Aspnes's construction.
/// * [`ObjectOp::MaxWrite`] installs its payload iff the payload's domain
///   point strictly exceeds the current value's, and responds
///   [`Response::Ack`] — a write to a max register.
/// * [`ObjectOp::MaxRead`] is trivial and returns the current value — a read
///   of a max register.
///
/// Unlike the historyless fragment, `MaxWrite`'s effect *depends on the
/// current value*, which is exactly why a max register falls outside the
/// paper's Table-1 classes and why the sub-enum split is machine-checked:
/// [`ObjectOp::as_historyless`] returns `None` for every RMW kind.
///
/// # Example
///
/// ```
/// use swapcons_objects::{HistorylessOp, ObjectOp, OpKind};
///
/// let op: ObjectOp<u64> = HistorylessOp::Swap(3).into();
/// assert_eq!(op.kind(), OpKind::Swap);
/// assert!(op.as_historyless().is_some());
/// assert!(ObjectOp::MaxWrite(5u64).as_historyless().is_none());
/// assert!(ObjectOp::<u64>::MaxRead.is_trivial());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectOp<V> {
    /// An operation from the historyless fragment (read / write / swap).
    Historyless(HistorylessOp<V>),
    /// Install the payload iff the current value sits at domain point `0`;
    /// respond with whether the installation happened ("won").
    TestAndSet(V),
    /// Install the payload iff its domain point strictly exceeds the current
    /// value's; respond with an uninformative acknowledgement.
    MaxWrite(V),
    /// Trivial operation: return the current value of a max register.
    MaxRead,
}

impl<V> From<HistorylessOp<V>> for ObjectOp<V> {
    fn from(op: HistorylessOp<V>) -> Self {
        ObjectOp::Historyless(op)
    }
}

impl<V> ObjectOp<V> {
    /// Shorthand for a historyless read.
    pub fn read() -> Self {
        ObjectOp::Historyless(HistorylessOp::Read)
    }

    /// Shorthand for a historyless write.
    pub fn write(v: V) -> Self {
        ObjectOp::Historyless(HistorylessOp::Write(v))
    }

    /// Shorthand for a historyless swap.
    pub fn swap(v: V) -> Self {
        ObjectOp::Historyless(HistorylessOp::Swap(v))
    }

    /// The historyless fragment of this operation, if it belongs to it.
    ///
    /// This is the machine-checked boundary of Table-1 space accounting:
    /// every RMW kind returns `None` here, so accounting code that insists
    /// on `as_historyless().is_some()` can never silently count a derived
    /// base object's max register as historyless.
    pub fn as_historyless(&self) -> Option<&HistorylessOp<V>> {
        match self {
            ObjectOp::Historyless(op) => Some(op),
            _ => None,
        }
    }

    /// Consume the operation, yielding the historyless fragment if any.
    pub fn into_historyless(self) -> Option<HistorylessOp<V>> {
        match self {
            ObjectOp::Historyless(op) => Some(op),
            _ => None,
        }
    }

    /// Returns `true` when the operation can never modify the object.
    pub fn is_trivial(&self) -> bool {
        self.kind().is_trivial()
    }

    /// Returns `true` when the operation may modify the object.
    pub fn is_nontrivial(&self) -> bool {
        !self.is_trivial()
    }

    /// The [`OpKind`] discriminant of this operation, independent of payload.
    pub fn kind(&self) -> OpKind {
        match self {
            ObjectOp::Historyless(op) => op.kind(),
            ObjectOp::TestAndSet(_) => OpKind::TestAndSet,
            ObjectOp::MaxWrite(_) => OpKind::MaxWrite,
            ObjectOp::MaxRead => OpKind::MaxRead,
        }
    }

    /// Borrow the payload the operation carries, if any.
    pub fn payload(&self) -> Option<&V> {
        match self {
            ObjectOp::Historyless(op) => op.payload(),
            ObjectOp::TestAndSet(v) | ObjectOp::MaxWrite(v) => Some(v),
            ObjectOp::MaxRead => None,
        }
    }

    /// Consume the operation, yielding its payload if any.
    pub fn into_payload(self) -> Option<V> {
        match self {
            ObjectOp::Historyless(op) => op.into_payload(),
            ObjectOp::TestAndSet(v) | ObjectOp::MaxWrite(v) => Some(v),
            ObjectOp::MaxRead => None,
        }
    }

    /// Map the payload type, preserving the operation kind.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> ObjectOp<U> {
        match self {
            ObjectOp::Historyless(op) => ObjectOp::Historyless(op.map(f)),
            ObjectOp::TestAndSet(v) => ObjectOp::TestAndSet(f(v)),
            ObjectOp::MaxWrite(v) => ObjectOp::MaxWrite(f(v)),
            ObjectOp::MaxRead => ObjectOp::MaxRead,
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for ObjectOp<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectOp::Historyless(op) => op.fmt(f),
            ObjectOp::TestAndSet(v) => write!(f, "TestAndSet({v:?})"),
            ObjectOp::MaxWrite(v) => write!(f, "MaxWrite({v:?})"),
            ObjectOp::MaxRead => write!(f, "MaxRead"),
        }
    }
}

/// The discriminant of an [`ObjectOp`], used for capability checks in
/// [`crate::ObjectSchema::permits_kind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A trivial read.
    Read,
    /// A blind write (nontrivial, uninformative response).
    Write,
    /// An atomic swap (nontrivial, returns the previous value).
    Swap,
    /// A one-shot test-and-set (nontrivial, returns whether it won).
    TestAndSet,
    /// A max-register write (nontrivial, uninformative response).
    MaxWrite,
    /// A max-register read (trivial, returns the current value).
    MaxRead,
}

impl OpKind {
    /// Whether operations of this kind are trivial.
    pub fn is_trivial(self) -> bool {
        matches!(self, OpKind::Read | OpKind::MaxRead)
    }

    /// Whether this kind belongs to the historyless fragment — the
    /// read/write/swap alphabet the paper's Table 1 is stated over. A
    /// `MaxWrite` is the canonical counterexample: the value it leaves
    /// behind depends on the value it found.
    pub fn is_historyless(self) -> bool {
        matches!(self, OpKind::Read | OpKind::Write | OpKind::Swap)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Swap => "swap",
            OpKind::TestAndSet => "test-and-set",
            OpKind::MaxWrite => "max-write",
            OpKind::MaxRead => "max-read",
        };
        f.write_str(s)
    }
}

/// The response to an [`ObjectOp`].
///
/// `Read`, `Swap`, and `MaxRead` return the (previous) value of the object;
/// `Write` and `MaxWrite` return an uninformative acknowledgement; a
/// `TestAndSet` returns only whether it won. Keeping the acknowledgement as a
/// distinct variant (rather than echoing the written value) makes it
/// impossible for a protocol state machine to smuggle information out of a
/// write, which matters for the covering arguments in the paper: a block
/// *write* hides a preceding execution from the writers, while a block *swap*
/// does not (Section 2). Likewise a `TestAndSet` learns one bit, never the
/// displaced value.
///
/// Construct responses with the typed constructors — one per [`OpKind`] —
/// rather than the raw variants, so that a simulator applying an operation
/// of kind `k` visibly produces the response shape contracted for `k`:
/// [`Response::to_write`], [`Response::to_read`], [`Response::to_swap`],
/// [`Response::to_test_and_set`], [`Response::to_max_write`],
/// [`Response::to_max_read`].
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Response<V> {
    /// Acknowledgement of a write or max-write; carries no information.
    Ack,
    /// The value observed by a read/max-read or returned by a swap.
    Value(V),
    /// Whether a test-and-set won (found the object at domain point `0`).
    Won(bool),
}

impl<V> Response<V> {
    /// The response to a [`OpKind::Write`]: an acknowledgement.
    pub fn to_write() -> Self {
        Response::Ack
    }

    /// The response to a [`OpKind::Read`]: the value observed.
    pub fn to_read(observed: V) -> Self {
        Response::Value(observed)
    }

    /// The response to a [`OpKind::Swap`]: the value displaced.
    pub fn to_swap(displaced: V) -> Self {
        Response::Value(displaced)
    }

    /// The response to a [`OpKind::TestAndSet`]: whether it won.
    pub fn to_test_and_set(won: bool) -> Self {
        Response::Won(won)
    }

    /// The response to a [`OpKind::MaxWrite`]: an acknowledgement,
    /// regardless of whether the write raised the register.
    pub fn to_max_write() -> Self {
        Response::Ack
    }

    /// The response to a [`OpKind::MaxRead`]: the current value.
    pub fn to_max_read(current: V) -> Self {
        Response::Value(current)
    }

    /// Borrow the payload of a value-bearing response.
    pub fn value(&self) -> Option<&V> {
        match self {
            Response::Value(v) => Some(v),
            Response::Ack | Response::Won(_) => None,
        }
    }

    /// Consume the response, yielding the payload of a value-bearing
    /// response.
    pub fn into_value(self) -> Option<V> {
        match self {
            Response::Value(v) => Some(v),
            Response::Ack | Response::Won(_) => None,
        }
    }

    /// The verdict of a test-and-set response, if this is one.
    pub fn won(&self) -> Option<bool> {
        match self {
            Response::Won(w) => Some(*w),
            Response::Ack | Response::Value(_) => None,
        }
    }

    /// Consume the response, yielding the payload.
    ///
    /// # Panics
    ///
    /// Panics if the response carries no value. Intended for protocol code
    /// that has just issued a `Read`, `Swap`, or `MaxRead` and is therefore
    /// entitled to a value.
    pub fn expect_value(self, msg: &str) -> V {
        match self {
            Response::Value(v) => v,
            Response::Ack => panic!("expected value response, got Ack: {msg}"),
            Response::Won(_) => panic!("expected value response, got Won: {msg}"),
        }
    }

    /// Consume the response, yielding the test-and-set verdict.
    ///
    /// # Panics
    ///
    /// Panics if the response is not [`Response::Won`]. Intended for
    /// protocol code that has just issued a `TestAndSet`.
    pub fn expect_won(self, msg: &str) -> bool {
        match self {
            Response::Won(w) => w,
            Response::Ack => panic!("expected won response, got Ack: {msg}"),
            Response::Value(_) => panic!("expected won response, got Value: {msg}"),
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for Response<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ack => write!(f, "Ack"),
            Response::Value(v) => write!(f, "Value({v:?})"),
            Response::Won(w) => write!(f, "Won({w})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_is_trivial_and_preserves_value() {
        let op: HistorylessOp<u64> = HistorylessOp::Read;
        assert!(op.is_trivial());
        assert!(!op.is_nontrivial());
        assert_eq!(op.next_value(&42), None);
        assert_eq!(op.response(&42), Response::Value(42));
    }

    #[test]
    fn write_is_nontrivial_with_ack_response() {
        let op = HistorylessOp::Write(7u64);
        assert!(op.is_nontrivial());
        assert_eq!(op.next_value(&42), Some(7));
        assert_eq!(op.response(&42), Response::Ack);
    }

    #[test]
    fn swap_sets_value_and_returns_previous() {
        let op = HistorylessOp::Swap(7u64);
        assert!(op.is_nontrivial());
        assert_eq!(op.next_value(&42), Some(7));
        assert_eq!(op.response(&42), Response::Value(42));
    }

    #[test]
    fn historyless_property_next_value_ignores_current() {
        // The defining property of a historyless object: the value after a
        // nontrivial op does not depend on the value before.
        let op = HistorylessOp::Swap(5u64);
        for current in 0..100u64 {
            assert_eq!(op.next_value(&current), Some(5));
        }
        let op = HistorylessOp::Write(9u64);
        for current in 0..100u64 {
            assert_eq!(op.next_value(&current), Some(9));
        }
    }

    #[test]
    fn kind_discriminants() {
        assert_eq!(HistorylessOp::<u64>::Read.kind(), OpKind::Read);
        assert_eq!(HistorylessOp::Write(0u64).kind(), OpKind::Write);
        assert_eq!(HistorylessOp::Swap(0u64).kind(), OpKind::Swap);
        assert!(OpKind::Read.is_trivial());
        assert!(!OpKind::Write.is_trivial());
        assert!(!OpKind::Swap.is_trivial());
    }

    #[test]
    fn payload_borrowing() {
        assert_eq!(HistorylessOp::<u64>::Read.payload(), None);
        assert_eq!(HistorylessOp::Write(3u64).payload(), Some(&3));
        assert_eq!(HistorylessOp::Swap(4u64).payload(), Some(&4));
    }

    #[test]
    fn map_preserves_kind() {
        let op = HistorylessOp::Swap(3u64).map(|v| v * 2);
        assert_eq!(op, HistorylessOp::Swap(6u64));
        let op: HistorylessOp<u64> = HistorylessOp::Read.map(|v: u64| v * 2);
        assert_eq!(op, HistorylessOp::Read);
    }

    #[test]
    fn response_accessors() {
        let r = Response::Value(11u64);
        assert_eq!(r.value(), Some(&11));
        assert_eq!(r.clone().into_value(), Some(11));
        assert_eq!(r.expect_value("must hold"), 11);
        let a: Response<u64> = Response::Ack;
        assert_eq!(a.value(), None);
        assert_eq!(a.into_value(), None);
    }

    #[test]
    #[should_panic(expected = "expected value response")]
    fn expect_value_on_ack_panics() {
        let a: Response<u64> = Response::Ack;
        let _ = a.expect_value("boom");
    }

    #[test]
    fn debug_formatting_is_compact() {
        assert_eq!(format!("{:?}", HistorylessOp::Swap(2u64)), "Swap(2)");
        assert_eq!(format!("{:?}", Response::<u64>::Ack), "Ack");
        assert_eq!(format!("{}", OpKind::Swap), "swap");
        assert_eq!(format!("{:?}", ObjectOp::Historyless(HistorylessOp::Swap(2u64))), "Swap(2)");
        assert_eq!(format!("{:?}", ObjectOp::MaxWrite(3u64)), "MaxWrite(3)");
        assert_eq!(format!("{:?}", Response::<u64>::Won(true)), "Won(true)");
        assert_eq!(format!("{}", OpKind::MaxWrite), "max-write");
        assert_eq!(format!("{}", OpKind::TestAndSet), "test-and-set");
    }

    #[test]
    fn object_op_embeds_the_historyless_fragment() {
        let op: ObjectOp<u64> = HistorylessOp::Swap(5).into();
        assert_eq!(op.kind(), OpKind::Swap);
        assert_eq!(op.payload(), Some(&5));
        assert!(op.is_nontrivial());
        assert_eq!(op.as_historyless(), Some(&HistorylessOp::Swap(5)));
        assert_eq!(op.into_historyless(), Some(HistorylessOp::Swap(5)));
        assert_eq!(ObjectOp::read(), ObjectOp::from(HistorylessOp::<u64>::Read));
        assert_eq!(ObjectOp::write(1u64), HistorylessOp::Write(1).into());
        assert_eq!(ObjectOp::swap(1u64), HistorylessOp::Swap(1).into());
    }

    #[test]
    fn rmw_kinds_are_outside_the_historyless_fragment() {
        for op in [
            ObjectOp::TestAndSet(1u64),
            ObjectOp::MaxWrite(4),
            ObjectOp::MaxRead,
        ] {
            assert!(op.as_historyless().is_none(), "{op:?}");
            assert!(!op.kind().is_historyless(), "{op:?}");
        }
        assert!(OpKind::Read.is_historyless());
        assert!(OpKind::Write.is_historyless());
        assert!(OpKind::Swap.is_historyless());
    }

    #[test]
    fn rmw_triviality_and_payloads() {
        assert!(ObjectOp::<u64>::MaxRead.is_trivial());
        assert!(ObjectOp::TestAndSet(1u64).is_nontrivial());
        assert!(ObjectOp::MaxWrite(1u64).is_nontrivial());
        assert_eq!(ObjectOp::TestAndSet(1u64).payload(), Some(&1));
        assert_eq!(ObjectOp::MaxWrite(7u64).into_payload(), Some(7));
        assert_eq!(ObjectOp::<u64>::MaxRead.payload(), None);
        assert_eq!(ObjectOp::MaxWrite(3u64).map(|v| v + 1), ObjectOp::MaxWrite(4));
        assert_eq!(
            ObjectOp::TestAndSet(1u64).map(|v| v),
            ObjectOp::TestAndSet(1)
        );
    }

    #[test]
    fn typed_response_constructors_match_their_kinds() {
        assert_eq!(Response::<u64>::to_write(), Response::Ack);
        assert_eq!(Response::to_read(3u64), Response::Value(3));
        assert_eq!(Response::to_swap(4u64), Response::Value(4));
        assert_eq!(Response::<u64>::to_test_and_set(true), Response::Won(true));
        assert_eq!(Response::<u64>::to_max_write(), Response::Ack);
        assert_eq!(Response::to_max_read(9u64), Response::Value(9));
    }

    #[test]
    fn won_accessors() {
        let r: Response<u64> = Response::Won(true);
        assert_eq!(r.won(), Some(true));
        assert_eq!(r.value(), None);
        assert_eq!(r.clone().into_value(), None);
        assert!(r.expect_won("tas"));
        assert_eq!(Response::Value(1u64).won(), None);
    }

    #[test]
    #[should_panic(expected = "expected won response")]
    fn expect_won_on_value_panics() {
        let _ = Response::Value(1u64).expect_won("boom");
    }

    #[test]
    #[should_panic(expected = "expected value response, got Won")]
    fn expect_value_on_won_panics() {
        let _ = Response::<u64>::Won(false).expect_value("boom");
    }
}
