//! The operation/response alphabet of historyless objects.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An operation on a historyless object.
///
/// Following Section 2 of the paper, an operation is *trivial* if it can
/// never modify the value of the object ([`HistorylessOp::Read`]) and
/// *nontrivial* otherwise ([`HistorylessOp::Write`], [`HistorylessOp::Swap`]).
/// A historyless object's value is fully determined by the last nontrivial
/// operation applied to it, which is why both `Write(v)` and `Swap(v)` map the
/// object to value `v` regardless of its prior state.
///
/// The type parameter `V` is the object's value type. Protocols built on
/// integer-valued objects typically use `u64` so that bounded domains
/// ([`crate::Domain::Bounded`]) can be enforced.
///
/// # Example
///
/// ```
/// use swapcons_objects::HistorylessOp;
///
/// assert!(HistorylessOp::<u64>::Read.is_trivial());
/// assert!(!HistorylessOp::Swap(3u64).is_trivial());
/// assert_eq!(HistorylessOp::Write(9u64).next_value(&4), Some(9));
/// assert_eq!(HistorylessOp::<u64>::Read.next_value(&4), None);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HistorylessOp<V> {
    /// Trivial operation: return the current value, leave it unchanged.
    Read,
    /// Nontrivial operation: set the value to the payload. The response is an
    /// acknowledgement carrying no information about the previous value.
    Write(V),
    /// Nontrivial operation: set the value to the payload and return the
    /// previous value atomically.
    Swap(V),
}

impl<V> HistorylessOp<V> {
    /// Returns `true` when the operation can never modify the object.
    pub fn is_trivial(&self) -> bool {
        matches!(self, HistorylessOp::Read)
    }

    /// Returns `true` when the operation always sets the object's value.
    pub fn is_nontrivial(&self) -> bool {
        !self.is_trivial()
    }

    /// The value the object holds after this operation is applied, or `None`
    /// if the operation is trivial (value unchanged).
    pub fn next_value(&self, _current: &V) -> Option<V>
    where
        V: Clone,
    {
        match self {
            HistorylessOp::Read => None,
            HistorylessOp::Write(v) | HistorylessOp::Swap(v) => Some(v.clone()),
        }
    }

    /// The response returned to the caller when the operation is applied to
    /// an object currently holding `current`.
    pub fn response(&self, current: &V) -> Response<V>
    where
        V: Clone,
    {
        match self {
            HistorylessOp::Read | HistorylessOp::Swap(_) => Response::Value(current.clone()),
            HistorylessOp::Write(_) => Response::Ack,
        }
    }

    /// The [`OpKind`] discriminant of this operation, independent of payload.
    pub fn kind(&self) -> OpKind {
        match self {
            HistorylessOp::Read => OpKind::Read,
            HistorylessOp::Write(_) => OpKind::Write,
            HistorylessOp::Swap(_) => OpKind::Swap,
        }
    }

    /// Borrow the payload of a nontrivial operation.
    pub fn payload(&self) -> Option<&V> {
        match self {
            HistorylessOp::Read => None,
            HistorylessOp::Write(v) | HistorylessOp::Swap(v) => Some(v),
        }
    }

    /// Consume the operation, yielding the payload of a nontrivial
    /// operation — the clone-free path for callers that apply the operation
    /// and do not keep it.
    pub fn into_payload(self) -> Option<V> {
        match self {
            HistorylessOp::Read => None,
            HistorylessOp::Write(v) | HistorylessOp::Swap(v) => Some(v),
        }
    }

    /// Map the payload type, preserving the operation kind.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> HistorylessOp<U> {
        match self {
            HistorylessOp::Read => HistorylessOp::Read,
            HistorylessOp::Write(v) => HistorylessOp::Write(f(v)),
            HistorylessOp::Swap(v) => HistorylessOp::Swap(f(v)),
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for HistorylessOp<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistorylessOp::Read => write!(f, "Read"),
            HistorylessOp::Write(v) => write!(f, "Write({v:?})"),
            HistorylessOp::Swap(v) => write!(f, "Swap({v:?})"),
        }
    }
}

/// The discriminant of a [`HistorylessOp`], used for capability checks in
/// [`crate::ObjectSchema::permits_kind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A trivial read.
    Read,
    /// A blind write (nontrivial, uninformative response).
    Write,
    /// An atomic swap (nontrivial, returns the previous value).
    Swap,
}

impl OpKind {
    /// Whether operations of this kind are trivial.
    pub fn is_trivial(self) -> bool {
        matches!(self, OpKind::Read)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Swap => "swap",
        };
        f.write_str(s)
    }
}

/// The response to a [`HistorylessOp`].
///
/// `Read` and `Swap` return the (previous) value of the object; `Write`
/// returns an uninformative acknowledgement. Keeping the acknowledgement as a
/// distinct variant (rather than echoing the written value) makes it
/// impossible for a protocol state machine to smuggle information out of a
/// write, which matters for the covering arguments in the paper: a block
/// *write* hides a preceding execution from the writers, while a block *swap*
/// does not (Section 2).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Response<V> {
    /// Acknowledgement of a write; carries no information.
    Ack,
    /// The value observed by a read or returned by a swap.
    Value(V),
}

impl<V> Response<V> {
    /// Borrow the payload of a value-bearing response.
    pub fn value(&self) -> Option<&V> {
        match self {
            Response::Ack => None,
            Response::Value(v) => Some(v),
        }
    }

    /// Consume the response, yielding the payload of a value-bearing
    /// response.
    pub fn into_value(self) -> Option<V> {
        match self {
            Response::Ack => None,
            Response::Value(v) => Some(v),
        }
    }

    /// Consume the response, yielding the payload.
    ///
    /// # Panics
    ///
    /// Panics if the response is [`Response::Ack`]. Intended for protocol
    /// code that has just issued a `Read` or `Swap` and is therefore entitled
    /// to a value.
    pub fn expect_value(self, msg: &str) -> V {
        match self {
            Response::Ack => panic!("expected value response: {msg}"),
            Response::Value(v) => v,
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for Response<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ack => write!(f, "Ack"),
            Response::Value(v) => write!(f, "Value({v:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_is_trivial_and_preserves_value() {
        let op: HistorylessOp<u64> = HistorylessOp::Read;
        assert!(op.is_trivial());
        assert!(!op.is_nontrivial());
        assert_eq!(op.next_value(&42), None);
        assert_eq!(op.response(&42), Response::Value(42));
    }

    #[test]
    fn write_is_nontrivial_with_ack_response() {
        let op = HistorylessOp::Write(7u64);
        assert!(op.is_nontrivial());
        assert_eq!(op.next_value(&42), Some(7));
        assert_eq!(op.response(&42), Response::Ack);
    }

    #[test]
    fn swap_sets_value_and_returns_previous() {
        let op = HistorylessOp::Swap(7u64);
        assert!(op.is_nontrivial());
        assert_eq!(op.next_value(&42), Some(7));
        assert_eq!(op.response(&42), Response::Value(42));
    }

    #[test]
    fn historyless_property_next_value_ignores_current() {
        // The defining property of a historyless object: the value after a
        // nontrivial op does not depend on the value before.
        let op = HistorylessOp::Swap(5u64);
        for current in 0..100u64 {
            assert_eq!(op.next_value(&current), Some(5));
        }
        let op = HistorylessOp::Write(9u64);
        for current in 0..100u64 {
            assert_eq!(op.next_value(&current), Some(9));
        }
    }

    #[test]
    fn kind_discriminants() {
        assert_eq!(HistorylessOp::<u64>::Read.kind(), OpKind::Read);
        assert_eq!(HistorylessOp::Write(0u64).kind(), OpKind::Write);
        assert_eq!(HistorylessOp::Swap(0u64).kind(), OpKind::Swap);
        assert!(OpKind::Read.is_trivial());
        assert!(!OpKind::Write.is_trivial());
        assert!(!OpKind::Swap.is_trivial());
    }

    #[test]
    fn payload_borrowing() {
        assert_eq!(HistorylessOp::<u64>::Read.payload(), None);
        assert_eq!(HistorylessOp::Write(3u64).payload(), Some(&3));
        assert_eq!(HistorylessOp::Swap(4u64).payload(), Some(&4));
    }

    #[test]
    fn map_preserves_kind() {
        let op = HistorylessOp::Swap(3u64).map(|v| v * 2);
        assert_eq!(op, HistorylessOp::Swap(6u64));
        let op: HistorylessOp<u64> = HistorylessOp::Read.map(|v: u64| v * 2);
        assert_eq!(op, HistorylessOp::Read);
    }

    #[test]
    fn response_accessors() {
        let r = Response::Value(11u64);
        assert_eq!(r.value(), Some(&11));
        assert_eq!(r.clone().into_value(), Some(11));
        assert_eq!(r.expect_value("must hold"), 11);
        let a: Response<u64> = Response::Ack;
        assert_eq!(a.value(), None);
        assert_eq!(a.into_value(), None);
    }

    #[test]
    #[should_panic(expected = "expected value response")]
    fn expect_value_on_ack_panics() {
        let a: Response<u64> = Response::Ack;
        let _ = a.expect_value("boom");
    }

    #[test]
    fn debug_formatting_is_compact() {
        assert_eq!(format!("{:?}", HistorylessOp::Swap(2u64)), "Swap(2)");
        assert_eq!(format!("{:?}", Response::<u64>::Ack), "Ack");
        assert_eq!(format!("{}", OpKind::Swap), "swap");
    }
}
