//! Per-object capability descriptors.
//!
//! Every space-complexity claim in the paper is relative to an object *type*:
//! `n-1` **swap objects** for consensus (Theorem 10 / Algorithm 1), `n-2`
//! **readable binary swap objects** (Theorem 18), `(n-2)/(3b+1)` readable
//! swap objects with **domain size `b`** (Theorem 22), `n` **registers**
//! (Ellen–Gelashvili–Zhu). An implementation that quietly read a swap object
//! or wrote an out-of-domain value would invalidate the row of Table 1 it
//! claims to witness. [`ObjectSchema`] makes those capabilities explicit and
//! machine-checkable: the simulator rejects any step whose operation is not
//! permitted by the schema of the object it targets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::op::OpKind;

/// The kind of historyless object, determining which operations it supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Supports `Read` and `Write` (trivial + nontrivial).
    Register,
    /// Supports only `Swap` — *not* `Read`. This is the object type of
    /// Algorithm 1 and Theorem 10; Section 3 of the paper emphasizes that a
    /// swap object does not support the `Read` operation.
    Swap,
    /// Supports `Read` and `Swap` (and `Write`, which is `Swap` with the
    /// response discarded).
    ReadableSwap,
    /// A test-and-set object: a binary object supporting the nontrivial
    /// operations `Swap(1)` (legacy test-and-set-by-swap) and the one-shot
    /// `TestAndSet`, plus `Read` in the readable variant used here. Modeled
    /// as a domain-2 readable swap object restricted to swapping in `1`.
    TestAndSet,
    /// A max register: holds the largest value written so far. Supports only
    /// `MaxRead` and `MaxWrite`. **Not historyless** — the value a
    /// `MaxWrite` leaves behind depends on the value it found — so this kind
    /// never participates in Table-1 space accounting
    /// ([`ObjectKind::is_historyless`] is the machine-checked boundary).
    MaxRegister,
}

impl ObjectKind {
    /// Whether an operation of kind `op` may be applied to objects of this
    /// kind.
    pub fn permits(self, op: OpKind) -> bool {
        match self {
            ObjectKind::Register => matches!(op, OpKind::Read | OpKind::Write),
            ObjectKind::Swap => matches!(op, OpKind::Swap),
            ObjectKind::ReadableSwap => {
                matches!(op, OpKind::Read | OpKind::Write | OpKind::Swap)
            }
            ObjectKind::TestAndSet => {
                matches!(op, OpKind::Read | OpKind::Swap | OpKind::TestAndSet)
            }
            ObjectKind::MaxRegister => matches!(op, OpKind::MaxRead | OpKind::MaxWrite),
        }
    }

    /// Whether this object kind supports any trivial operation. Lower bounds
    /// for objects that support only nontrivial operations (Theorem 10) rely
    /// on this distinction: overwriting is the only way to learn.
    pub fn supports_trivial(self) -> bool {
        match self {
            ObjectKind::Swap => false,
            ObjectKind::Register
            | ObjectKind::ReadableSwap
            | ObjectKind::TestAndSet
            | ObjectKind::MaxRegister => true,
        }
    }

    /// Whether this object kind is historyless (its value is determined by
    /// the last nontrivial operation alone). Every kind the paper's Table 1
    /// counts is; a max register is not. Space-accounting code gates on this
    /// so derived-object base sets are priced honestly.
    pub fn is_historyless(self) -> bool {
        match self {
            ObjectKind::Register
            | ObjectKind::Swap
            | ObjectKind::ReadableSwap
            | ObjectKind::TestAndSet => true,
            ObjectKind::MaxRegister => false,
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Register => "register",
            ObjectKind::Swap => "swap",
            ObjectKind::ReadableSwap => "readable-swap",
            ObjectKind::TestAndSet => "test-and-set",
            ObjectKind::MaxRegister => "max-register",
        };
        f.write_str(s)
    }
}

/// The value domain of an object.
///
/// Theorem 22's lower bound is parameterized by the domain size `b`; Table 1
/// distinguishes readable swap objects with domain size 2, domain size `b`,
/// and unbounded domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Values range over `{0, …, size-1}` (for integer-valued objects).
    Bounded(u64),
    /// No restriction on values.
    Unbounded,
}

impl Domain {
    /// Domain of a binary object.
    pub const BINARY: Domain = Domain::Bounded(2);

    /// Whether `value` is a member of the domain.
    pub fn contains(self, value: u64) -> bool {
        match self {
            Domain::Bounded(b) => value < b,
            Domain::Unbounded => true,
        }
    }

    /// The size of the domain, or `None` if unbounded.
    pub fn size(self) -> Option<u64> {
        match self {
            Domain::Bounded(b) => Some(b),
            Domain::Unbounded => None,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Bounded(b) => write!(f, "domain {b}"),
            Domain::Unbounded => write!(f, "unbounded domain"),
        }
    }
}

/// Capability descriptor for one shared object: its kind and value domain.
///
/// # Example
///
/// ```
/// use swapcons_objects::{Domain, ObjectKind, ObjectSchema, OpKind};
///
/// let schema = ObjectSchema::readable_swap(Domain::BINARY);
/// assert!(schema.permits_kind(OpKind::Read));
/// assert!(schema.permits_kind(OpKind::Swap));
/// assert!(schema.check_value(1).is_ok());
/// assert!(schema.check_value(2).is_err());
///
/// let swap_only = ObjectSchema::swap();
/// assert!(!swap_only.permits_kind(OpKind::Read));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectSchema {
    kind: ObjectKind,
    domain: Domain,
}

impl ObjectSchema {
    /// A register with unbounded domain.
    pub fn register() -> Self {
        ObjectSchema {
            kind: ObjectKind::Register,
            domain: Domain::Unbounded,
        }
    }

    /// A binary register (domain `{0,1}`).
    pub fn binary_register() -> Self {
        ObjectSchema {
            kind: ObjectKind::Register,
            domain: Domain::BINARY,
        }
    }

    /// A swap object (no `Read`) with unbounded domain — the object type of
    /// Algorithm 1 and Theorem 10.
    pub fn swap() -> Self {
        ObjectSchema {
            kind: ObjectKind::Swap,
            domain: Domain::Unbounded,
        }
    }

    /// A readable swap object with the given domain.
    pub fn readable_swap(domain: Domain) -> Self {
        ObjectSchema {
            kind: ObjectKind::ReadableSwap,
            domain,
        }
    }

    /// A readable binary swap object (Section 5.1, Theorem 18).
    pub fn readable_binary_swap() -> Self {
        ObjectSchema::readable_swap(Domain::BINARY)
    }

    /// A test-and-set object.
    pub fn test_and_set() -> Self {
        ObjectSchema {
            kind: ObjectKind::TestAndSet,
            domain: Domain::BINARY,
        }
    }

    /// A max register over the given domain. Aspnes's one-bit swap uses a
    /// single bounded max register to count alternations; unbounded max
    /// registers are admitted for completeness.
    pub fn max_register(domain: Domain) -> Self {
        ObjectSchema {
            kind: ObjectKind::MaxRegister,
            domain,
        }
    }

    /// The object kind.
    pub fn kind(&self) -> ObjectKind {
        self.kind
    }

    /// The value domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Whether operations of kind `op` are permitted on this object.
    pub fn permits_kind(&self, op: OpKind) -> bool {
        self.kind.permits(op)
    }

    /// Validate that an integer value lies within this object's domain.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::ValueOutOfDomain`] when the value is outside
    /// the configured domain.
    pub fn check_value(&self, value: u64) -> Result<(), SchemaError> {
        if self.domain.contains(value) {
            Ok(())
        } else {
            Err(SchemaError::ValueOutOfDomain {
                value,
                domain: self.domain,
            })
        }
    }

    /// Validate a value by its *domain point* — the integer a simulator
    /// value denotes, or `None` for composite values that embed into no
    /// integer domain. Bounded domains require an in-range point; unbounded
    /// domains admit everything. This is the one rule both the simulator's
    /// step validation and the canonicalization layer's relabeling checks
    /// enforce (a renamed value must still inhabit its destination object's
    /// domain).
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::ValueOutOfDomain`] when the point is outside a
    /// bounded domain, or when a composite value (`point == None`) is
    /// offered to a bounded-domain object (reported with the sentinel value
    /// `u64::MAX`).
    pub fn check_domain_point(&self, point: Option<u64>) -> Result<(), SchemaError> {
        match (self.domain, point) {
            (Domain::Unbounded, _) => Ok(()),
            (Domain::Bounded(_), Some(x)) => self.check_value(x),
            (domain @ Domain::Bounded(_), None) => Err(SchemaError::ValueOutOfDomain {
                value: u64::MAX,
                domain,
            }),
        }
    }

    /// Validate that an operation kind is permitted.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::OpNotPermitted`] when the object kind does not
    /// support the operation.
    pub fn check_op_kind(&self, op: OpKind) -> Result<(), SchemaError> {
        if self.permits_kind(op) {
            Ok(())
        } else {
            Err(SchemaError::OpNotPermitted {
                op,
                kind: self.kind,
            })
        }
    }
}

/// Error produced when an operation violates an [`ObjectSchema`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// The operation kind is not supported by the object kind (for example a
    /// `Read` on a swap object).
    OpNotPermitted {
        /// The offending operation kind.
        op: OpKind,
        /// The object kind that rejected it.
        kind: ObjectKind,
    },
    /// The value written or swapped in is outside the object's domain.
    ValueOutOfDomain {
        /// The offending value.
        value: u64,
        /// The domain that rejected it.
        domain: Domain,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::OpNotPermitted { op, kind } => {
                write!(f, "operation {op} is not permitted on a {kind} object")
            }
            SchemaError::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} lies outside the object's {domain}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_objects_do_not_support_read() {
        let s = ObjectSchema::swap();
        assert!(!s.permits_kind(OpKind::Read));
        assert!(s.permits_kind(OpKind::Swap));
        assert!(!s.permits_kind(OpKind::Write));
        assert!(!s.kind().supports_trivial());
    }

    #[test]
    fn registers_do_not_support_swap() {
        let s = ObjectSchema::register();
        assert!(s.permits_kind(OpKind::Read));
        assert!(s.permits_kind(OpKind::Write));
        assert!(!s.permits_kind(OpKind::Swap));
        assert!(s.kind().supports_trivial());
    }

    #[test]
    fn readable_swap_supports_everything() {
        let s = ObjectSchema::readable_swap(Domain::Unbounded);
        assert!(s.permits_kind(OpKind::Read));
        assert!(s.permits_kind(OpKind::Write));
        assert!(s.permits_kind(OpKind::Swap));
    }

    #[test]
    fn binary_domain_rejects_large_values() {
        let s = ObjectSchema::readable_binary_swap();
        assert_eq!(s.check_value(0), Ok(()));
        assert_eq!(s.check_value(1), Ok(()));
        assert!(matches!(
            s.check_value(2),
            Err(SchemaError::ValueOutOfDomain { value: 2, .. })
        ));
    }

    #[test]
    fn unbounded_domain_accepts_everything() {
        let s = ObjectSchema::swap();
        assert!(s.check_value(u64::MAX).is_ok());
        assert_eq!(s.domain().size(), None);
        assert_eq!(Domain::Bounded(5).size(), Some(5));
    }

    #[test]
    fn domain_points_checked_per_schema() {
        let binary = ObjectSchema::readable_binary_swap();
        assert!(binary.check_domain_point(Some(1)).is_ok());
        assert!(matches!(
            binary.check_domain_point(Some(2)),
            Err(SchemaError::ValueOutOfDomain { value: 2, .. })
        ));
        // Composite values (no point) cannot inhabit bounded domains…
        assert!(binary.check_domain_point(None).is_err());
        // …but unbounded domains admit anything.
        let swap = ObjectSchema::swap();
        assert!(swap.check_domain_point(None).is_ok());
        assert!(swap.check_domain_point(Some(u64::MAX)).is_ok());
    }

    #[test]
    fn check_op_kind_reports_errors() {
        let s = ObjectSchema::swap();
        let err = s.check_op_kind(OpKind::Read).unwrap_err();
        assert_eq!(
            err,
            SchemaError::OpNotPermitted {
                op: OpKind::Read,
                kind: ObjectKind::Swap
            }
        );
        assert!(err.to_string().contains("not permitted"));
    }

    #[test]
    fn test_and_set_is_binary_and_readable() {
        let s = ObjectSchema::test_and_set();
        assert!(s.permits_kind(OpKind::Read));
        assert!(s.permits_kind(OpKind::Swap));
        assert!(!s.permits_kind(OpKind::Write));
        assert!(s.permits_kind(OpKind::TestAndSet));
        assert!(!s.permits_kind(OpKind::MaxRead));
        assert_eq!(s.domain(), Domain::BINARY);
    }

    #[test]
    fn max_register_permits_only_max_ops() {
        let s = ObjectSchema::max_register(Domain::Bounded(5));
        assert!(s.permits_kind(OpKind::MaxRead));
        assert!(s.permits_kind(OpKind::MaxWrite));
        assert!(!s.permits_kind(OpKind::Read));
        assert!(!s.permits_kind(OpKind::Write));
        assert!(!s.permits_kind(OpKind::Swap));
        assert!(!s.permits_kind(OpKind::TestAndSet));
        assert!(s.kind().supports_trivial());
        assert_eq!(s.domain(), Domain::Bounded(5));
        assert_eq!(s.kind().to_string(), "max-register");
    }

    #[test]
    fn historyless_boundary_excludes_exactly_the_max_register() {
        for kind in [
            ObjectKind::Register,
            ObjectKind::Swap,
            ObjectKind::ReadableSwap,
            ObjectKind::TestAndSet,
        ] {
            assert!(kind.is_historyless(), "{kind}");
        }
        assert!(!ObjectKind::MaxRegister.is_historyless());
    }

    #[test]
    fn rmw_kinds_are_rejected_on_historyless_objects() {
        for schema in [
            ObjectSchema::register(),
            ObjectSchema::swap(),
            ObjectSchema::readable_swap(Domain::Unbounded),
        ] {
            assert!(!schema.permits_kind(OpKind::MaxWrite), "{schema:?}");
            assert!(!schema.permits_kind(OpKind::MaxRead), "{schema:?}");
            assert!(!schema.permits_kind(OpKind::TestAndSet), "{schema:?}");
        }
    }

    #[test]
    fn display_formatting() {
        assert_eq!(ObjectKind::Swap.to_string(), "swap");
        assert_eq!(Domain::BINARY.to_string(), "domain 2");
        assert_eq!(Domain::Unbounded.to_string(), "unbounded domain");
        let err = SchemaError::ValueOutOfDomain {
            value: 9,
            domain: Domain::BINARY,
        };
        assert_eq!(
            err.to_string(),
            "value 9 lies outside the object's domain 2"
        );
    }
}
