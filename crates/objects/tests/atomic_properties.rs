//! Property-based tests for the objects crate: historyless semantics,
//! schema enforcement, and the atomic objects under concurrency.

// Free-running std threads drive these tests; under `--cfg conc_check` the
// atomic objects route through the model-only conc shims, so this target is
// compiled out (the exhaustive conc suites cover the same layer there).
#![cfg(not(conc_check))]

use proptest::prelude::*;
use swapcons_objects::atomic::{AtomicSwap, AtomicWordSwap};
use swapcons_objects::cell::{AnyCell, ReadableSwapCell, SwapCell};
use swapcons_objects::historyless::{
    FetchAndStoreOp, FetchAndStoreSpec, SimulatedHistoryless, TasOp, TestAndSetSpec,
};
use swapcons_objects::{Domain, HistorylessOp, ObjectSchema, Response};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The historyless property: after any op sequence, the value equals
    /// the payload of the last nontrivial op (or the initial value).
    #[test]
    fn value_is_last_nontrivial_op(
        initial in 0u64..100,
        ops in proptest::collection::vec(
            prop_oneof![
                Just(HistorylessOp::Read),
                (0u64..100).prop_map(HistorylessOp::Write),
                (0u64..100).prop_map(HistorylessOp::Swap),
            ],
            0..40,
        )
    ) {
        let mut cell = ReadableSwapCell::new(initial);
        let mut expected = initial;
        for op in &ops {
            cell.apply(op);
            if let Some(v) = op.payload() {
                expected = *v;
            }
        }
        prop_assert_eq!(cell.read(), expected);
    }

    /// Swap responses chain: each swap returns the previous swap's payload.
    #[test]
    fn swap_responses_chain(initial in 0u64..100, payloads in proptest::collection::vec(0u64..100, 1..40)) {
        let mut cell = SwapCell::new(initial);
        let mut prev = initial;
        for &p in &payloads {
            prop_assert_eq!(cell.swap(p), prev);
            prev = p;
        }
    }

    /// AnyCell under a swap schema behaves exactly like SwapCell, and
    /// rejects reads without corrupting state.
    #[test]
    fn any_cell_swap_equivalence(ops in proptest::collection::vec(0u64..50, 1..30)) {
        let mut reference = SwapCell::new(0u64);
        let mut checked = AnyCell::new(ObjectSchema::swap(), 0).unwrap();
        for &v in &ops {
            let expected = reference.swap(v);
            let got = checked.apply(&HistorylessOp::Swap(v)).unwrap();
            prop_assert_eq!(got, Response::Value(expected));
            prop_assert!(checked.apply(&HistorylessOp::Read).is_err());
            prop_assert_eq!(checked.peek(), v);
        }
    }

    /// Bounded domains are enforced for every op kind.
    #[test]
    fn bounded_domain_enforced(b in 1u64..16, v in 0u64..32) {
        let mut cell = AnyCell::new(ObjectSchema::readable_swap(Domain::Bounded(b)), 0).unwrap();
        let result = cell.apply(&HistorylessOp::Swap(v));
        prop_assert_eq!(result.is_ok(), v < b);
        let result = cell.apply(&HistorylessOp::Write(v));
        prop_assert_eq!(result.is_ok(), v < b);
    }

    /// The [14] simulation: a simulated swap object is indistinguishable
    /// from a direct one under any op sequence.
    #[test]
    fn simulation_equivalence_fetch_and_store(ops in proptest::collection::vec(0u64..50, 0..40)) {
        let mut direct = SwapCell::new(7u64);
        let mut simulated = SimulatedHistoryless::new(FetchAndStoreSpec, 7u64);
        for &v in &ops {
            prop_assert_eq!(simulated.apply(&FetchAndStoreOp(v)), direct.swap(v));
        }
    }

    /// The simulated TAS: exactly the first TestAndSet wins, regardless of
    /// interleaved reads.
    #[test]
    fn simulated_tas_single_winner(reads_before in 0usize..5, attempts in 1usize..6) {
        let mut tas = SimulatedHistoryless::new(TestAndSetSpec, false);
        for _ in 0..reads_before {
            prop_assert!(tas.apply(&TasOp::Read), "unset reads report winnable");
        }
        let mut wins = 0;
        for _ in 0..attempts {
            if tas.apply(&TasOp::TestAndSet) {
                wins += 1;
            }
        }
        prop_assert_eq!(wins, 1);
    }
}

/// Concurrency property (not proptest-driven — real threads): the word swap
/// object linearizes: the multiset {initial} ∪ {swapped-in values} equals
/// {returned values} ∪ {final value}.
#[test]
fn word_swap_conservation_under_threads() {
    use std::sync::Arc;
    const THREADS: u64 = 6;
    const OPS: u64 = 2000;
    let obj = Arc::new(AtomicWordSwap::new(0, Domain::Unbounded));
    let mut handles = Vec::new();
    for t in 1..=THREADS {
        let obj = Arc::clone(&obj);
        handles.push(std::thread::spawn(move || {
            let mut returned = Vec::with_capacity(OPS as usize);
            for i in 0..OPS {
                returned.push(obj.swap(t * 1_000_000 + i));
            }
            returned
        }));
    }
    let mut returned: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    returned.push(obj.read());
    returned.sort_unstable();
    let mut injected: Vec<u64> = (1..=THREADS)
        .flat_map(|t| (0..OPS).map(move |i| t * 1_000_000 + i))
        .collect();
    injected.push(0);
    injected.sort_unstable();
    assert_eq!(
        returned, injected,
        "value conservation through atomic swaps"
    );
}

/// AtomicSwap with droppable values: no leaks/double frees across heavy
/// churn (exercised under the default allocator).
#[test]
fn atomic_swap_string_churn() {
    use std::sync::Arc;
    let obj = Arc::new(AtomicSwap::new(String::from("init")));
    let mut handles = Vec::new();
    for t in 0..4 {
        let obj = Arc::clone(&obj);
        handles.push(std::thread::spawn(move || {
            for i in 0..2000 {
                let _old = obj.swap(format!("t{t}-{i}"));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let last = match Arc::try_unwrap(obj) {
        Ok(o) => o.into_inner(),
        Err(_) => unreachable!("all threads joined"),
    };
    assert!(last == "init" || last.contains('-'));
}
