//! Symmetry declarations and canonicalization — quotient-space search.
//!
//! The paper's arguments are stated *up to renaming* of processes and input
//! values (valency, the Lemma 9/14b coverings, the Section 5 adversaries all
//! survive consistent relabeling), yet a naive explorer enumerates every
//! permuted twin of every configuration. This module lets a protocol declare
//! its symmetry group ([`Symmetry`], via [`crate::Protocol::symmetry`]) and
//! gives the exploration engines an orbit-keyed visited set so they search
//! **one representative per orbit** instead of the whole orbit.
//!
//! # The group of a run
//!
//! A [`Renaming`] is a simultaneous permutation `π` of process ids, `σ` of
//! task input values, and `τ` of object slots. It acts on a configuration by
//! moving process `i`'s status to slot `π(i)` and object `o`'s value to slot
//! `τ(o)` (rewriting embedded ids and values via the protocol's
//! [`rename_state`]/[`rename_value`]/[`rename_object`] hooks) and rewriting
//! decisions `v ↦ σ(v)`. For the action to map a *fixed run* —
//! `ModelChecker::check(protocol, inputs)` explores from one concrete input
//! vector — onto itself, the renaming must stabilize the input assignment:
//! `σ(inputs[i]) = inputs[π(i)]` for every `i`. [`Canonicalizer::for_inputs`]
//! enumerates exactly these renamings: `π` ranges over the protocol's
//! declared interchangeable process classes *composed with the process
//! motion of any process-coupled object-class permutation*, `σ` is *derived*
//! from `π` and the inputs (identity for protocols without value symmetry),
//! and `τ` is the object permutation the declaration couples to them — a
//! value-coupled class ([`ObjectClasses::value_coupled`]) moves its blocks
//! wherever `σ` sends their value labels (`BinaryRacing`'s two tracks swap
//! exactly when `σ` swaps the two track values), while a process-coupled
//! class ([`ObjectClasses::process_coupled`]) is enumerated directly and
//! drags its owner process classes along (`PairsKSet`'s pair swap moves the
//! pair's swap object *and* both partners together). Protocols whose object
//! permutation is a function of `π` alone (single-writer registers moving
//! with their writer, as in `TasConsensus`) keep expressing it through a
//! [`rename_object`] override instead of a declaration.
//!
//! # Soundness
//!
//! Dedup-by-orbit is sound for the properties the engines check because all
//! of them are renaming-invariant: agreement counts distinct decisions (a
//! bijection `σ` preserves the count), validity compares decisions against
//! the input *multiset* (stabilized by construction), and solo termination
//! is step-for-step equivariant. Crucially the searches keep exploring
//! **real** configurations (the first-discovered representative of each
//! orbit) — witness schedules remain genuine, replayable schedules — and
//! membership is *exact*: [`CanonicalVisitedSet`] keys on the orbit-minimal
//! image key (found by a pruned stabilizer-chain search, not a full group
//! scan) but falls back to full orbit comparison on every bucket hit,
//! mirroring [`VisitedSet`]'s discipline, so soundness never rests on hash
//! quality.
//!
//! The hooks come with an equivariance contract (see [`crate::Protocol`]);
//! [`assert_equivariant`] brute-force checks it on random executions and is
//! called from every protocol's test suite.
//!
//! [`rename_state`]: crate::Protocol::rename_state
//! [`rename_value`]: crate::Protocol::rename_value
//! [`rename_object`]: crate::Protocol::rename_object
//! [`VisitedSet`]: crate::search::VisitedSet

use std::sync::Arc;

use crate::config::Configuration;
use crate::ids::{ObjectId, ProcessId};
use crate::protocol::{Protocol, SimValue};
use crate::search::{PrehashedMap, VisitedSet};
use crate::ProcStatus;

/// Largest renaming group [`Canonicalizer::for_inputs`] will enumerate
/// (7! — far beyond the instance sizes the explorers handle).
///
/// The order is computed on the **composed product**: the factorials of the
/// process classes multiplied by the factorials of every process-coupled
/// object class's block count. (Value-coupled object permutations are
/// *derived* from `σ`, never independently enumerated, so they contribute no
/// factor.) A declaration exceeding the cap degrades **gracefully**: the
/// enumeration keeps a maximal genuine *subgroup* within the budget —
/// factors claim budget largest-first, each contributing the symmetric
/// group on the longest prefix of its members that still fits — instead of
/// dropping symmetry entirely. Any subgroup yields sound (merely coarser)
/// orbit dedup, and the degrade is reported ([`Canonicalizer::degraded`],
/// surfaced as `CheckReport::symmetry_degraded`) rather than silent.
pub const MAX_GROUP_ORDER: usize = 5040;

/// A declaration of interchangeable **object blocks** and the coupling that
/// ties their permutation `τ` to the rest of a renaming.
///
/// Blocks map **slot-for-slot**: if block `j` goes to block `τ(j)`, the
/// `s`-th object of block `j` lands in the `s`-th slot of block `τ(j)` (all
/// blocks of one class must therefore have the same length, and every pair
/// of corresponding objects the same schema — [`assert_equivariant`] checks
/// the latter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectClasses {
    /// The interchangeable blocks, each a list of object ids in slot order.
    blocks: Vec<Vec<ObjectId>>,
    coupling: ObjectCoupling,
}

/// How an [`ObjectClasses`] permutation is induced or enumerated.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ObjectCoupling {
    /// `τ` is forced by the value renaming: block `j` carries the data of
    /// input value `labels[j]`, so it moves to the block labeled
    /// `σ(labels[j])`. Renamings whose `σ` does not map the label set onto
    /// itself are discarded (they are not symmetries).
    Values { labels: Vec<u64> },
    /// `τ` is enumerated directly and drags processes with it: `π` maps
    /// `owners[j]` slot-for-slot onto `owners[τ(j)]` (within-class
    /// permutations from [`Symmetry::process_classes`] compose on top).
    Processes { owners: Vec<Vec<ProcessId>> },
}

impl ObjectClasses {
    /// Blocks whose permutation is induced by the value renaming: block `j`
    /// holds the data of input value `labels[j]` (the two tracks of
    /// `BinaryRacing`, labeled by the preference value each track races
    /// for), so a renaming moves block `j` onto the block labeled
    /// `σ(labels[j])` — and is discarded entirely if `σ` moves a label off
    /// the label set. Only meaningful together with
    /// [`Symmetry::with_interchangeable_values`]; with `σ = id` the blocks
    /// never move.
    ///
    /// # Panics
    ///
    /// Panics if the shape is malformed: fewer labels than blocks, duplicate
    /// labels, overlapping or unequal-length blocks.
    pub fn value_coupled(blocks: Vec<Vec<ObjectId>>, labels: Vec<u64>) -> Self {
        assert_eq!(blocks.len(), labels.len(), "one label per block");
        let mut seen = std::collections::BTreeSet::new();
        assert!(
            labels.iter().all(|&l| seen.insert(l)),
            "block labels must be distinct"
        );
        let class = ObjectClasses {
            blocks,
            coupling: ObjectCoupling::Values { labels },
        };
        class.assert_block_shape();
        class
    }

    /// Blocks permuted freely (enumerated), each dragging its **owner
    /// process class** with it: moving block `j` to block `τ(j)` maps
    /// `owners[j]` slot-for-slot onto `owners[τ(j)]` (`PairsKSet`: pair
    /// `j`'s swap object owns the pair `{2j, 2j+1}`). Each owner list must
    /// either coincide with a declared process class or be disjoint from
    /// all of them, and all owner lists of one object class must be of the
    /// same kind — [`Canonicalizer::for_inputs`] degrades to trivial
    /// otherwise, because mixing the two would break the group structure of
    /// the composed renamings.
    ///
    /// # Panics
    ///
    /// Panics if the shape is malformed: owner count ≠ block count, unequal
    /// owner lengths, overlapping owners, or overlapping/unequal blocks.
    pub fn process_coupled(blocks: Vec<Vec<ObjectId>>, owners: Vec<Vec<ProcessId>>) -> Self {
        assert_eq!(blocks.len(), owners.len(), "one owner list per block");
        assert!(
            owners.windows(2).all(|w| w[0].len() == w[1].len()),
            "owner lists must have equal lengths (they map slot-for-slot)"
        );
        let mut seen = std::collections::BTreeSet::new();
        for owner in &owners {
            for &p in owner {
                assert!(seen.insert(p), "owner lists must be disjoint: {p}");
            }
        }
        let class = ObjectClasses {
            blocks,
            coupling: ObjectCoupling::Processes { owners },
        };
        class.assert_block_shape();
        class
    }

    fn assert_block_shape(&self) {
        assert!(
            self.blocks.windows(2).all(|w| w[0].len() == w[1].len()),
            "blocks of one class must have equal lengths (they map slot-for-slot)"
        );
        let mut seen = std::collections::BTreeSet::new();
        for block in &self.blocks {
            for &o in block {
                assert!(seen.insert(o), "blocks must be disjoint: {o}");
            }
        }
    }

    /// Whether this class can never move an object (fewer than two blocks).
    fn is_trivial(&self) -> bool {
        self.blocks.len() < 2
    }

    /// One past the largest object id any block mentions.
    fn max_object_bound(&self) -> usize {
        self.blocks
            .iter()
            .flatten()
            .map(|o| o.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// A protocol's declared symmetry group.
///
/// Three components, compounded by [`Canonicalizer::for_inputs`]:
///
/// * **process classes** — disjoint sets of interchangeable process ids.
///   Processes in the same class may be permuted arbitrarily (given a
///   consistent input relabeling); processes in no class are fixed.
/// * **interchangeable values** — whether the protocol is oblivious to the
///   identity of task input values (it moves and compares them but never
///   orders, indexes by, or arithmetically combines them), so any
///   permutation of `{0, …, m-1}` maps executions to executions.
/// * **interchangeable object classes** ([`ObjectClasses`]) — blocks of
///   objects whose permutation `τ` is coupled to the rest of the renaming:
///   induced by `σ` (value-coupled) or enumerated together with the owner
///   process classes it drags along (process-coupled).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symmetry {
    classes: Vec<Vec<ProcessId>>,
    values_interchangeable: bool,
    object_classes: Vec<ObjectClasses>,
}

impl Symmetry {
    /// No declared symmetry: canonicalization is the identity and reduction
    /// is a no-op. The safe default for any protocol.
    pub fn none() -> Self {
        Symmetry {
            classes: Vec::new(),
            values_interchangeable: false,
            object_classes: Vec::new(),
        }
    }

    /// All `n` processes are interchangeable (protocols whose code never
    /// special-cases a process id's *role*; ids embedded in states or object
    /// values are fine — the rename hooks rewrite them).
    pub fn full_process(n: usize) -> Self {
        Symmetry {
            classes: vec![ProcessId::all(n).collect()],
            values_interchangeable: false,
            object_classes: Vec::new(),
        }
    }

    /// Interchangeability restricted to the given disjoint classes
    /// (e.g. the pairing construction: partners within a pair are
    /// interchangeable, pairs are not).
    ///
    /// # Panics
    ///
    /// Panics if the classes overlap.
    pub fn process_classes(classes: Vec<Vec<ProcessId>>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for class in &classes {
            for &p in class {
                assert!(seen.insert(p), "process classes must be disjoint: {p}");
            }
        }
        Symmetry {
            classes,
            values_interchangeable: false,
            object_classes: Vec::new(),
        }
    }

    /// Additionally declare the input-value domain fully interchangeable.
    #[must_use]
    pub fn with_interchangeable_values(mut self) -> Self {
        self.values_interchangeable = true;
        self
    }

    /// Additionally declare a class of interchangeable object blocks (may be
    /// called repeatedly; the classes' blocks must be mutually disjoint,
    /// checked at enumeration time).
    #[must_use]
    pub fn with_object_classes(mut self, class: ObjectClasses) -> Self {
        self.object_classes.push(class);
        self
    }

    /// The declared process classes.
    pub fn classes(&self) -> &[Vec<ProcessId>] {
        &self.classes
    }

    /// Whether input values are declared interchangeable.
    pub fn values_interchangeable(&self) -> bool {
        self.values_interchangeable
    }

    /// The declared interchangeable object classes.
    pub fn object_classes(&self) -> &[ObjectClasses] {
        &self.object_classes
    }

    /// Whether the declaration admits no nontrivial renaming at all.
    /// (A value-coupled object class is counted through
    /// `values_interchangeable`: with `σ` pinned to the identity its blocks
    /// can never move.)
    pub fn is_trivial(&self) -> bool {
        !self.values_interchangeable
            && self.classes.iter().all(|c| c.len() < 2)
            && self
                .object_classes
                .iter()
                .all(|c| c.is_trivial() || matches!(c.coupling, ObjectCoupling::Values { .. }))
    }
}

/// A simultaneous renaming `(π, σ, τ)` of process ids, input values, and
/// object slots.
///
/// Obtained from [`Canonicalizer::for_inputs`]; protocols receive it in
/// their rename hooks and apply [`Renaming::pid`] to every embedded process
/// id, [`Renaming::value`] to every embedded *task input value*, and
/// [`Renaming::object`] to every embedded object id (and to nothing else —
/// lap counts, rounds, scan positions, flags are untouched).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Renaming {
    /// `pid_map[i]` is the image of `ProcessId(i)`.
    pid_map: Vec<ProcessId>,
    /// `value_map[v]` is the image of input value `v` (length = task `m`).
    value_map: Vec<u64>,
    /// `obj_map[o]` is the image of `ObjectId(o)`; objects past the end are
    /// fixed (an empty map is the identity — the common case for protocols
    /// without declared object classes). Protocols whose object permutation
    /// is a function of `π` alone override
    /// [`rename_object`](crate::Protocol::rename_object) and never consult
    /// this.
    obj_map: Vec<ObjectId>,
}

impl Renaming {
    /// The identity renaming for `n` processes and `m` values.
    pub fn identity(n: usize, m: u64) -> Self {
        Renaming {
            pid_map: ProcessId::all(n).collect(),
            value_map: (0..m).collect(),
            obj_map: Vec::new(),
        }
    }

    /// Image of a process id.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for the renaming's instance.
    pub fn pid(&self, p: ProcessId) -> ProcessId {
        self.pid_map[p.index()]
    }

    /// Image of a task input value. Values outside `{0, …, m-1}` are fixed
    /// (they cannot be input values, so no renaming touches them).
    pub fn value(&self, v: u64) -> u64 {
        self.value_map.get(v as usize).copied().unwrap_or(v)
    }

    /// Image of an object slot under the renaming's declared object
    /// permutation `τ`. This is what the default
    /// [`rename_object`](crate::Protocol::rename_object) returns; protocols
    /// whose object roles follow `π` (single-writer registers) override the
    /// hook and compute the image from [`Renaming::pid`] instead.
    pub fn object(&self, o: ObjectId) -> ObjectId {
        self.obj_map.get(o.index()).copied().unwrap_or(o)
    }

    /// Whether all three components are the identity.
    pub fn is_identity(&self) -> bool {
        self.is_value_identity()
            && self.is_object_identity()
            && self.pid_map.iter().enumerate().all(|(i, p)| p.index() == i)
    }

    /// Whether the declared object component is the identity (`τ = id`).
    /// Says nothing about `rename_object` overrides, which derive their
    /// permutation from `π`.
    pub fn is_object_identity(&self) -> bool {
        self.obj_map
            .iter()
            .enumerate()
            .all(|(o, &d)| d.index() == o)
    }

    /// Whether the value component is the identity (`σ = id`) — under such
    /// a renaming decided-value witnesses transfer verbatim between
    /// orbit-equal configurations. (The valency oracle no longer requires
    /// this: its stabilizer subgroup admits `σ ≠ id` renamings fixing the
    /// queried configuration and closes the witness set under them
    /// afterwards.)
    pub fn is_value_identity(&self) -> bool {
        self.value_map
            .iter()
            .enumerate()
            .all(|(v, &w)| v as u64 == w)
    }

    /// Whether `π` maps the given process set into itself (hence, being a
    /// bijection, onto itself) — required for group-restricted searches.
    pub fn stabilizes(&self, group: &[ProcessId]) -> bool {
        group.iter().all(|&p| group.contains(&self.pid(p)))
    }
}

/// Apply a renaming to a configuration, producing the renamed twin.
///
/// Process `i`'s status moves to slot `π(i)`: running states are rewritten
/// by [`Protocol::rename_state`], decisions by `σ`. Object `o`'s value moves
/// to slot [`Protocol::rename_object`]`(o)`, rewritten by
/// [`Protocol::rename_value`]. The input vector is unchanged — renamings
/// from [`Canonicalizer::for_inputs`] stabilize it by construction (debug
/// asserted).
///
/// # Panics
///
/// Panics if the protocol's `rename_object` is not a permutation (two
/// objects mapped to the same slot) — a broken symmetry declaration.
pub fn apply_renaming<P: Protocol>(
    protocol: &P,
    g: &Renaming,
    config: &Configuration<P>,
) -> Configuration<P> {
    let n = config.num_processes();
    let b = config.num_objects();
    let mut objects: Vec<Option<P::Value>> = (0..b).map(|_| None).collect();
    for i in 0..b {
        let src = ObjectId(i);
        let dst = protocol.rename_object(src, g);
        let renamed = protocol.rename_value(src, config.value(src), g);
        // Schema discipline: a relabeled value must still inhabit the
        // *destination* object's declared domain (renaming never launders an
        // out-of-domain value into a bounded object).
        debug_assert!(
            protocol
                .schema(dst)
                .check_domain_point(renamed.domain_point())
                .is_ok(),
            "rename_value pushed {src} out of the domain of {dst}"
        );
        let slot = &mut objects[dst.index()];
        assert!(
            slot.is_none(),
            "rename_object is not a permutation: {dst} hit twice"
        );
        *slot = Some(renamed);
    }
    let mut procs: Vec<Option<ProcStatus<P::State>>> = (0..n).map(|_| None).collect();
    for i in 0..n {
        let src = ProcessId(i);
        let dst = g.pid(src);
        let renamed = match config.status(src) {
            ProcStatus::Running(s) => ProcStatus::Running(protocol.rename_state(s, g)),
            ProcStatus::Decided(v) => ProcStatus::Decided(g.value(*v)),
            // A crash carries no state: the renamed process is crashed at
            // π(i), so renamings respect crashed-process sets.
            ProcStatus::Crashed => ProcStatus::Crashed,
        };
        let slot = &mut procs[dst.index()];
        assert!(slot.is_none(), "pid renaming is not a permutation: {dst}");
        *slot = Some(renamed);
    }
    debug_assert!(
        config
            .inputs()
            .iter()
            .enumerate()
            .all(|(i, &v)| g.value(v) == config.inputs()[g.pid(ProcessId(i)).index()]),
        "renaming does not stabilize the run's input assignment"
    );
    Configuration::from_parts(
        objects
            .into_iter()
            .map(|o| o.expect("permutation"))
            .collect(),
        procs.into_iter().map(|p| p.expect("permutation")).collect(),
        Arc::clone(config.inputs_handle()),
    )
}

/// The renaming group of one run: every `(π, σ)` compatible with the
/// protocol's declared [`Symmetry`] *and* the run's concrete input vector.
///
/// Plain data (no configuration state): build once per `check`/`query` and
/// hand to a [`CanonicalVisitedSet`].
#[derive(Clone, Debug, Default)]
pub struct Canonicalizer {
    /// The non-identity group elements (the identity is implicit).
    renamings: Vec<Renaming>,
    /// Whether the enumerated group is a proper subgroup of the *declared*
    /// one — the declaration exceeded [`MAX_GROUP_ORDER`] (prefix subgroups
    /// were kept) or was inconsistent with the instance (degraded to
    /// trivial). Reduction stays sound either way, but a degraded run
    /// explores more orbits than the declaration promised, so the engines
    /// surface the flag in their reports.
    degraded: bool,
}

impl Canonicalizer {
    /// A trivial canonicalizer (identity group): reduction is a no-op.
    pub fn trivial() -> Self {
        Canonicalizer::default()
    }

    /// Enumerate the renaming group of a run of `protocol` from `inputs`.
    ///
    /// For every permutation `π` drawn from the declared process classes
    /// (composed with the owner motion of every process-coupled object
    /// class), the value map `σ` is forced by `σ(inputs[i]) = inputs[π(i)]`:
    /// protocols without value symmetry require `σ = id` (so `π` must
    /// preserve inputs exactly); value-symmetric protocols accept any `π`
    /// for which the forced map is well-defined and injective, extended by
    /// the identity off the appearing values. The object permutation `τ` is
    /// then the composition of the enumerated process-coupled block moves
    /// with the moves `σ` induces on the value-coupled classes; a `σ` that
    /// moves a value-coupled label off its label set invalidates the whole
    /// renaming (it is not a symmetry).
    ///
    /// Class structures whose **composed** group would exceed
    /// [`MAX_GROUP_ORDER`] degrade gracefully to a maximal subgroup within
    /// the cap (see [`MAX_GROUP_ORDER`]); a declaration inconsistent with
    /// the instance degrades to the trivial group. Both are always sound —
    /// any subgroup gives exact, merely coarser, orbit dedup — and both set
    /// [`Canonicalizer::degraded`] so reports can surface the lost
    /// reduction instead of silently running wider than declared.
    pub fn for_inputs<P: Protocol>(protocol: &P, inputs: &[u64]) -> Self {
        let sym = protocol.symmetry();
        let task = protocol.task();
        if sym.is_trivial() || inputs.len() != task.n {
            return Canonicalizer::trivial();
        }
        if sym
            .classes()
            .iter()
            .any(|c| c.iter().any(|p| p.index() >= task.n))
            || !object_classes_valid(&sym, task.n, protocol.num_objects())
        {
            // An inconsistent declaration cannot be partially honored: no
            // subset of its renamings is known to be a symmetry. Degrade to
            // trivial, but flag it — a declared-but-lost group must show up
            // in `CheckReport`, not vanish.
            return Canonicalizer {
                renamings: Vec::new(),
                degraded: true,
            };
        }
        let SkeletonSet {
            skeletons,
            degraded,
        } = enumerate_skeletons(&sym, task.n);
        let mut renamings = Vec::new();
        for skeleton in skeletons {
            let Some(value_map) = derive_value_map(
                inputs,
                &skeleton.pid_map,
                sym.values_interchangeable(),
                task.m,
            ) else {
                continue;
            };
            let mut obj_map = skeleton.obj_map;
            if compose_value_coupled_moves(&sym, &value_map, &mut obj_map).is_none() {
                continue; // σ moves a label off its label set: not a symmetry
            }
            let g = Renaming {
                pid_map: skeleton.pid_map,
                value_map,
                obj_map,
            };
            if !g.is_identity() {
                // The identity is implicit.
                renamings.push(g);
            }
        }
        Canonicalizer {
            renamings,
            degraded,
        }
    }

    /// Order of the group, including the identity.
    pub fn group_order(&self) -> usize {
        self.renamings.len() + 1
    }

    /// Whether the enumerated group is a proper subgroup of the declared
    /// one (cap exceeded, or declaration inconsistent with the instance).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether only the identity survived (no reduction possible).
    pub fn is_trivial(&self) -> bool {
        self.renamings.is_empty()
    }

    /// The non-identity group elements.
    pub fn renamings(&self) -> &[Renaming] {
        &self.renamings
    }

    /// Keep only the renamings satisfying `keep`. The caller's predicate
    /// must carve out a **subgroup** (closed under composition and
    /// inverse) for the result to remain sound as a dedup group — e.g. the
    /// valency oracle retains the stabilizer of its query: renamings that
    /// fix the queried configuration exactly and map the queried process
    /// group onto itself.
    pub fn retain(&mut self, keep: impl FnMut(&Renaming) -> bool) {
        self.renamings.retain(keep);
    }
}

/// All permutations of `0..k` (k! of them), as index vectors.
fn index_permutations(k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    let mut used = vec![false; k];
    fn recurse(k: usize, used: &mut [bool], current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in 0..k {
            if !used[i] {
                used[i] = true;
                current.push(i);
                recurse(k, used, current, out);
                current.pop();
                used[i] = false;
            }
        }
    }
    recurse(k, &mut used, &mut current, &mut out);
    out
}

/// Validate the object-class declarations against the instance: blocks
/// mutually disjoint across classes and within the object range, owner pids
/// within the process range, and every process-coupled owner list either
/// **exactly** a declared process class or **disjoint from all** declared
/// classes — uniformly so across one object class (all owner lists of one
/// kind, never a mix). Both restrictions exist because the enumerated
/// renamings must form a group: block moves must map within-class
/// permutations onto within-class permutations, which holds precisely when
/// a move permutes whole declared classes among themselves (every owner a
/// class) or touches no class at all (every owner class-free). A mixed
/// class would conjugate a within-class permutation onto a permutation of
/// class-free processes, which the enumeration never generates — the
/// resulting set would not be closed under composition. Owner lists of
/// *different* object classes must not overlap either — two classes
/// dragging the same process would compose into process motions outside
/// the enumerated set the same way.
fn object_classes_valid(sym: &Symmetry, n: usize, num_objects: usize) -> bool {
    let mut seen = vec![false; num_objects];
    let mut owned = vec![false; n];
    for class in sym.object_classes() {
        for &o in class.blocks.iter().flatten() {
            if o.index() >= num_objects || std::mem::replace(&mut seen[o.index()], true) {
                return false;
            }
        }
        let ObjectCoupling::Processes { owners } = &class.coupling else {
            continue;
        };
        // `true` = this class's owners are declared classes, `false` =
        // they avoid all declared classes; fixed by the first owner list.
        let mut class_kind: Option<bool> = None;
        for owner in owners {
            if owner.iter().any(|p| p.index() >= n) {
                return false;
            }
            if owner
                .iter()
                .any(|p| std::mem::replace(&mut owned[p.index()], true))
            {
                return false;
            }
            let owner_set: std::collections::BTreeSet<ProcessId> = owner.iter().copied().collect();
            let matches_a_class = sym
                .classes()
                .iter()
                .any(|c| c.len() == owner.len() && c.iter().all(|p| owner_set.contains(p)));
            let disjoint_from_all = sym
                .classes()
                .iter()
                .all(|c| c.iter().all(|p| !owner_set.contains(p)));
            let kind = if matches_a_class {
                true
            } else if disjoint_from_all {
                false
            } else {
                return false;
            };
            if *class_kind.get_or_insert(kind) != kind {
                return false;
            }
        }
    }
    true
}

/// One enumerated pre-`σ` component of a renaming: a pid map composed from
/// the within-class permutations and the process-coupled block moves, plus
/// the object motion of the latter. (Value-coupled object motion is derived
/// from `σ` afterwards.)
struct Skeleton {
    pid_map: Vec<ProcessId>,
    obj_map: Vec<ObjectId>,
}

/// The enumerable skeletons of a declaration, after fitting under the cap.
struct SkeletonSet {
    skeletons: Vec<Skeleton>,
    /// Whether the cap trimmed any factor: the enumerated set generates a
    /// proper subgroup of the declared group.
    degraded: bool,
}

/// How many leading elements of each enumerated factor (process classes in
/// declaration order, then process-coupled object classes) survive the
/// [`MAX_GROUP_ORDER`] budget. Factors claim budget from largest to
/// smallest (stable on declaration order for ties); each keeps the
/// symmetric group on the longest prefix of its members whose factorial
/// still fits the running product. Prefix symmetric groups on disjoint
/// supports multiply into a genuine subgroup of the declared group, so the
/// trimmed enumeration stays a sound dedup group — unlike an arbitrary
/// truncation of the element list, which would not be closed under
/// composition.
fn fit_factors_under_cap(factor_sizes: &[usize]) -> (Vec<usize>, bool) {
    let mut by_size: Vec<usize> = (0..factor_sizes.len()).collect();
    by_size.sort_by_key(|&i| (std::cmp::Reverse(factor_sizes[i]), i));
    let mut kept = vec![0usize; factor_sizes.len()];
    let mut order: usize = 1;
    let mut degraded = false;
    for i in by_size {
        let len = factor_sizes[i];
        let mut keep = len.min(1);
        while keep < len {
            match order.checked_mul(keep + 1) {
                Some(next) if next <= MAX_GROUP_ORDER => {
                    order = next;
                    keep += 1;
                }
                _ => break,
            }
        }
        kept[i] = keep;
        degraded |= keep < len;
    }
    (kept, degraded)
}

/// All skeletons drawn from the declaration: the product over process
/// classes of the symmetric group on each class, composed with the product
/// over process-coupled object classes of the block permutations (each
/// dragging its owner lists slot-for-slot). Declarations whose composed
/// product exceeds [`MAX_GROUP_ORDER`] are trimmed to the maximal prefix
/// subgroup fitting the cap ([`fit_factors_under_cap`]) and flagged.
fn enumerate_skeletons(sym: &Symmetry, n: usize) -> SkeletonSet {
    let factor_sizes: Vec<usize> = sym
        .classes()
        .iter()
        .map(Vec::len)
        .chain(
            sym.object_classes()
                .iter()
                .filter(|c| matches!(c.coupling, ObjectCoupling::Processes { .. }))
                .map(|c| c.blocks.len()),
        )
        .collect();
    let (kept, degraded) = fit_factors_under_cap(&factor_sizes);
    // Objects past every declared block are fixed by all skeletons; sizing
    // the maps to the declared bound keeps undeclared protocols at the
    // empty (identity) object map.
    let object_bound = sym
        .object_classes()
        .iter()
        .map(ObjectClasses::max_object_bound)
        .max()
        .unwrap_or(0);
    let mut maps = vec![Skeleton {
        pid_map: ProcessId::all(n).collect(),
        obj_map: ObjectId::all(object_bound).collect(),
    }];
    let mut factor = 0;
    for class in sym.classes() {
        let k = kept[factor].min(class.len());
        factor += 1;
        if k < 2 {
            continue;
        }
        // Only the first `k` members of the class permute; the rest stay
        // fixed (the prefix subgroup the cap left affordable).
        let perms = index_permutations(k);
        let mut next = Vec::with_capacity(maps.len() * perms.len());
        for skeleton in &maps {
            for perm in &perms {
                let mut composed = skeleton.pid_map.clone();
                for (i, &j) in perm.iter().enumerate() {
                    composed[class[i].index()] = skeleton.pid_map[class[j].index()];
                }
                next.push(Skeleton {
                    pid_map: composed,
                    obj_map: skeleton.obj_map.clone(),
                });
            }
        }
        maps = next;
    }
    for class in sym.object_classes() {
        let ObjectCoupling::Processes { owners } = &class.coupling else {
            continue;
        };
        let k = kept[factor].min(class.blocks.len());
        factor += 1;
        if k < 2 {
            continue;
        }
        let perms = index_permutations(k);
        let mut next = Vec::with_capacity(maps.len() * perms.len());
        for skeleton in &maps {
            for perm in &perms {
                let mut pid_map = skeleton.pid_map.clone();
                let mut obj_map = skeleton.obj_map.clone();
                for (j, &tj) in perm.iter().enumerate() {
                    for (s, &p) in owners[j].iter().enumerate() {
                        pid_map[p.index()] = skeleton.pid_map[owners[tj][s].index()];
                    }
                    for (s, &o) in class.blocks[j].iter().enumerate() {
                        obj_map[o.index()] = skeleton.obj_map[class.blocks[tj][s].index()];
                    }
                }
                next.push(Skeleton { pid_map, obj_map });
            }
        }
        maps = next;
    }
    SkeletonSet {
        skeletons: maps,
        degraded,
    }
}

/// Compose into `obj_map` the block moves `σ` induces on the value-coupled
/// classes: block `j` (labeled `labels[j]`) moves to the block labeled
/// `σ(labels[j])`. `None` if `σ` sends a label off its label set — such a
/// renaming is not a symmetry and must be discarded whole.
fn compose_value_coupled_moves(
    sym: &Symmetry,
    value_map: &[u64],
    obj_map: &mut [ObjectId],
) -> Option<()> {
    for class in sym.object_classes() {
        let ObjectCoupling::Values { labels } = &class.coupling else {
            continue;
        };
        for (j, &label) in labels.iter().enumerate() {
            let image = value_map.get(label as usize).copied().unwrap_or(label);
            let tj = labels.iter().position(|&l| l == image)?;
            // Value- and process-coupled blocks are disjoint (validated), so
            // this never overwrites a process-coupled move.
            for (s, &o) in class.blocks[j].iter().enumerate() {
                obj_map[o.index()] = class.blocks[tj][s];
            }
        }
    }
    Some(())
}

/// The value map forced by `σ(inputs[i]) = inputs[π(i)]`, or `None` if `π`
/// is incompatible with the input assignment.
fn derive_value_map(
    inputs: &[u64],
    pid_map: &[ProcessId],
    values_interchangeable: bool,
    m: u64,
) -> Option<Vec<u64>> {
    if !values_interchangeable {
        // σ must be the identity: π has to preserve inputs exactly.
        return inputs
            .iter()
            .enumerate()
            .all(|(i, &v)| inputs[pid_map[i].index()] == v)
            .then(|| (0..m).collect());
    }
    let mut partial: Vec<Option<u64>> = vec![None; m as usize];
    for (i, &a) in inputs.iter().enumerate() {
        let b = inputs[pid_map[i].index()];
        match partial[a as usize] {
            None => partial[a as usize] = Some(b),
            Some(x) if x == b => {}
            Some(_) => return None, // inconsistent: no σ exists for this π
        }
    }
    // Injectivity on the appearing values (images are appearing values, so
    // the identity extension below stays a permutation of {0, …, m-1}).
    let mut hit = vec![false; m as usize];
    for image in partial.iter().flatten() {
        if std::mem::replace(&mut hit[*image as usize], true) {
            return None;
        }
    }
    Some(
        partial
            .iter()
            .enumerate()
            .map(|(v, w)| w.unwrap_or(v as u64))
            .collect(),
    )
}

/// The canonical representative of an input vector's orbit under the
/// declared symmetry: the lexicographic minimum over class (and
/// process-coupled block) permutations of the permuted vector, additionally
/// value-normalized by first occurrence when values are interchangeable and
/// the implied `σ` keeps every value-coupled label set intact.
/// `check_all_inputs` under reduction visits exactly the vectors that are
/// their own canonical form — sound because every candidate is the image of
/// `inputs` under a genuine protocol symmetry and the identity is always a
/// candidate, so every orbit contains a self-canonical vector.
pub fn canonical_input_vector(sym: &Symmetry, inputs: &[u64]) -> Vec<u64> {
    let n = inputs.len();
    // The same (possibly cap-trimmed) subgroup `for_inputs` enumerates:
    // grid skipping and per-run dedup must agree on the group, or a skipped
    // vector's representative might not be explored.
    let skeletons = enumerate_skeletons(sym, n).skeletons;
    let mut best: Option<Vec<u64>> = None;
    let consider = |candidate: Vec<u64>, best: &mut Option<Vec<u64>>| {
        if best.as_ref().is_none_or(|b| candidate < *b) {
            *best = Some(candidate);
        }
    };
    for skeleton in &skeletons {
        let mut candidate = vec![0u64; n];
        for (i, &v) in inputs.iter().enumerate() {
            candidate[skeleton.pid_map[i].index()] = v;
        }
        if sym.values_interchangeable() {
            let mut normalized = candidate.clone();
            let value_map = normalize_first_occurrence(&mut normalized);
            if value_map_respects_labels(sym, &value_map) {
                consider(normalized, &mut best);
            }
        }
        // σ = id is always a compatible value component (and normalization,
        // when permitted, never beats the un-normalized candidate upward —
        // first-occurrence values are pointwise ≤ the originals).
        consider(candidate, &mut best);
    }
    best.expect("the identity permutation always yields a candidate")
}

/// Whether `inputs` is the canonical representative of its orbit.
pub fn inputs_are_canonical(sym: &Symmetry, inputs: &[u64]) -> bool {
    canonical_input_vector(sym, inputs) == inputs
}

/// Rename values to `0, 1, 2, …` in order of first appearance, returning
/// the applied `(from, to)` pairs.
fn normalize_first_occurrence(v: &mut [u64]) -> Vec<(u64, u64)> {
    let mut map: Vec<(u64, u64)> = Vec::new();
    for x in v.iter_mut() {
        let renamed = match map.iter().find(|(from, _)| from == x) {
            Some(&(_, to)) => to,
            None => {
                let to = map.len() as u64;
                map.push((*x, to));
                to
            }
        };
        *x = renamed;
    }
    map
}

/// Whether a partial value map extends to a permutation stabilizing every
/// value-coupled label set: each mapped pair must stay on the same side of
/// each label set (membership preserved ⟹ the unmapped remainders of each
/// set have equal sizes, so a stabilizing extension exists).
fn value_map_respects_labels(sym: &Symmetry, value_map: &[(u64, u64)]) -> bool {
    sym.object_classes()
        .iter()
        .all(|class| match &class.coupling {
            ObjectCoupling::Values { labels } => value_map
                .iter()
                .all(|(from, to)| labels.contains(from) == labels.contains(to)),
            ObjectCoupling::Processes { .. } => true,
        })
}

/// Per-renaming lookup tables for the incremental orbit-fingerprint path:
/// the *inverse* process and object permutations, so an image's fingerprint
/// can be computed by walking destination slots in order — no renamed
/// configuration is ever materialized on the hot path.
#[derive(Clone, Debug)]
struct RenamingTables {
    /// `inv_pid[d]` is the source process whose status lands in slot `d`.
    inv_pid: Vec<usize>,
    /// `inv_obj[d]` is the source object whose value lands in slot `d`.
    inv_obj: Vec<usize>,
}

/// A visited set over symmetry *orbits* with an exact-fallback discipline.
///
/// Keys are the orbit-minimal image key — the lexicographically smallest
/// per-slot hash sequence any group element can give the configuration (an
/// orbit invariant), folded to a `u64`; every bucket hit falls back to full
/// orbit comparison, so — exactly as with [`VisitedSet`] — exactness never
/// depends on hash quality. Stored representatives are cheap copy-on-write
/// clones of the *real* configurations the search visited.
///
/// # The pruned minimal-image search
///
/// The key is computed without materializing the orbit and without
/// visiting most of the group. Per-renaming inverse permutation tables
/// (built once, on first probe) let each image be read off slot by slot in
/// destination order; the search walks destination slots as the base of a
/// stabilizer chain, carrying the set of candidates that still achieve the
/// minimal slot-hash prefix. At each slot every live candidate hashes only
/// that slot of its image; candidates above the minimum are pruned (their
/// whole branch of the backtrack tree dies — the prefix-cutoff rule), and
/// the survivors are exactly the coset of the minimal-prefix stabilizer.
/// Generic configurations collapse to a single candidate after one or two
/// slots, so the cost is ~|G| single-slot hashes plus a geometric tail —
/// versus |G| *full* image fingerprints for the pre-chain scan (kept as
/// [`CanonicalVisitedSet::orbit_key_unpruned`], the parity baseline).
/// Renamed twins are materialized only inside the exact fallback of a
/// *bucket hit* (a duplicate probe or a genuine collision), one renaming at
/// a time with early exit.
pub struct CanonicalVisitedSet<P: Protocol> {
    renamings: Vec<Renaming>,
    /// Whether the group is a cap- or validity-degraded subgroup of the
    /// declaration (see [`Canonicalizer::degraded`]).
    degraded: bool,
    /// Inverse-permutation tables, one per renaming; built lazily on the
    /// first probe (the object permutation needs the protocol, which `new`
    /// does not see). `OnceLock` keeps probes `&self` and the set shareable
    /// across threads once the sharded frontier lands (ROADMAP).
    tables: std::sync::OnceLock<Vec<RenamingTables>>,
    buckets: PrehashedMap<Vec<Configuration<P>>>,
    len: usize,
    mask: u64,
    compaction: bool,
    fallback_comparisons: usize,
}

/// Candidate id of the implicit identity renaming in the minimal-image
/// search; indices into `renamings` are the other candidates.
const IDENTITY_CANDIDATE: u32 = u32::MAX;

std::thread_local! {
    /// Scratch candidate buffers for the minimal-image search (live set and
    /// next-level set). Thread-local rather than per-set because the
    /// sharded path ([`crate::shard`]) computes keys through one *shared*
    /// keyer from many workers at once — probes are `&self` and must not
    /// contend on common scratch.
    static MIN_IMAGE_SCRATCH: std::cell::RefCell<(Vec<u32>, Vec<u32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

impl<P: Protocol> CanonicalVisitedSet<P> {
    /// An empty set deduplicating modulo `canon`'s group.
    pub fn new(canon: Canonicalizer) -> Self {
        CanonicalVisitedSet {
            renamings: canon.renamings,
            degraded: canon.degraded,
            tables: std::sync::OnceLock::new(),
            buckets: PrehashedMap::default(),
            len: 0,
            mask: u64::MAX,
            compaction: false,
            fallback_comparisons: 0,
        }
    }

    /// Pre-size for roughly `expected` orbits.
    #[must_use]
    pub fn with_capacity(mut self, expected: usize) -> Self {
        self.buckets.reserve(expected);
        self
    }

    /// Mask fingerprints before use — the collision-forcing diagnostic hook,
    /// mirroring [`VisitedSet::with_fingerprint_mask`].
    #[must_use]
    pub fn with_fingerprint_mask(mut self, mask: u64) -> Self {
        self.mask = mask;
        self
    }

    /// Switch to fingerprint-only membership. **Unsound**: orbit-fingerprint
    /// collisions silently merge distinct states, so any verdict becomes
    /// probabilistic. Opt-in only; reported via `CheckReport`.
    #[must_use]
    pub fn unsound_hash_compaction(mut self) -> Self {
        self.compaction = true;
        self
    }

    /// Order of the dedup group (1 = no reduction).
    pub fn group_order(&self) -> usize {
        self.renamings.len() + 1
    }

    /// Whether the group is a degraded subgroup of the protocol's declared
    /// symmetry (see [`Canonicalizer::degraded`]).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The inverse-permutation tables, built on first use. The object
    /// permutation (and hence the tables) depends only on the protocol and
    /// the group, both fixed for the lifetime of a set.
    fn tables(&self, protocol: &P, config: &Configuration<P>) -> &[RenamingTables] {
        self.tables.get_or_init(|| {
            let n = config.num_processes();
            let b = config.num_objects();
            self.renamings
                .iter()
                .map(|g| {
                    let mut inv_pid = vec![usize::MAX; n];
                    for i in 0..n {
                        inv_pid[g.pid(ProcessId(i)).index()] = i;
                    }
                    let mut inv_obj = vec![usize::MAX; b];
                    for i in 0..b {
                        inv_obj[protocol.rename_object(ObjectId(i), g).index()] = i;
                    }
                    debug_assert!(
                        inv_pid
                            .iter()
                            .chain(inv_obj.iter())
                            .all(|&i| i != usize::MAX),
                        "renaming is not a permutation"
                    );
                    RenamingTables { inv_pid, inv_obj }
                })
                .collect()
        })
    }

    /// Hash of the value landing in **object** slot `dst` of the image
    /// `cand · config` (the configuration's own slot for the identity
    /// candidate) — read through the inverse tables, no image materialized.
    fn object_slot_hash(
        protocol: &P,
        config: &Configuration<P>,
        renamings: &[Renaming],
        tables: &[RenamingTables],
        cand: u32,
        dst: usize,
    ) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = fxhash::FxHasher::default();
        if cand == IDENTITY_CANDIDATE {
            config.value(ObjectId(dst)).hash(&mut h);
        } else {
            let g = &renamings[cand as usize];
            let src = ObjectId(tables[cand as usize].inv_obj[dst]);
            protocol
                .rename_value(src, config.value(src), g)
                .hash(&mut h);
        }
        h.finish()
    }

    /// Hash of the status landing in **process** slot `dst` of the image
    /// `cand · config`.
    fn process_slot_hash(
        protocol: &P,
        config: &Configuration<P>,
        renamings: &[Renaming],
        tables: &[RenamingTables],
        cand: u32,
        dst: usize,
    ) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = fxhash::FxHasher::default();
        if cand == IDENTITY_CANDIDATE {
            config.status(ProcessId(dst)).hash(&mut h);
        } else {
            let g = &renamings[cand as usize];
            let src = ProcessId(tables[cand as usize].inv_pid[dst]);
            match config.status(src) {
                ProcStatus::Running(s) => {
                    ProcStatus::Running(protocol.rename_state(s, g)).hash(&mut h)
                }
                ProcStatus::Decided(v) => ProcStatus::<P::State>::Decided(g.value(*v)).hash(&mut h),
                ProcStatus::Crashed => ProcStatus::<P::State>::Crashed.hash(&mut h),
            }
        }
        h.finish()
    }

    /// One refinement level of the minimal-image search: hash the current
    /// slot for every live candidate, keep exactly the minimum achievers
    /// (the coset of the minimal-prefix stabilizer), and return the
    /// minimum. Candidates above the minimum are pruned here — the
    /// prefix-cutoff rule — and never evaluated on later slots. A single
    /// survivor short-circuits: the rest of the key is forced.
    fn refine(
        live: &mut Vec<u32>,
        next: &mut Vec<u32>,
        mut slot_hash: impl FnMut(u32) -> u64,
    ) -> u64 {
        if live.len() == 1 {
            return slot_hash(live[0]);
        }
        let mut min = u64::MAX;
        next.clear();
        for &cand in live.iter() {
            let hv = slot_hash(cand);
            if hv < min {
                min = hv;
                next.clear();
                next.push(cand);
            } else if hv == min {
                next.push(cand);
            }
        }
        std::mem::swap(live, next);
        min
    }

    /// The orbit's bucket key: the fold of the lexicographically minimal
    /// per-slot hash sequence over the orbit (identity included), masked —
    /// an orbit invariant, computed by the pruned stabilizer-chain search
    /// (see the type-level docs) with no image materialized.
    fn orbit_key(&self, protocol: &P, config: &Configuration<P>) -> u64 {
        use std::hash::Hasher;
        let tables = self.tables(protocol, config);
        let renamings = &self.renamings;
        let b = config.num_objects();
        let n = config.num_processes();
        MIN_IMAGE_SCRATCH.with(|scratch| {
            let (live, next) = &mut *scratch.borrow_mut();
            live.clear();
            live.push(IDENTITY_CANDIDATE);
            live.extend(0..renamings.len() as u32);
            // Base order: **process slots first**, then object slots.
            // Process states carry the per-pid payload (lap counters, local
            // views) and split the candidate set within a slot or two;
            // object slots are often σ-invariant across the whole group
            // (e.g. any unanimous-input run, where σ = id), so leading with
            // them would pay |G| hashes per slot without pruning anything.
            let mut h = fxhash::FxHasher::default();
            h.write_usize(n);
            for dst in 0..n {
                let min = Self::refine(live, next, |cand| {
                    Self::process_slot_hash(protocol, config, renamings, tables, cand, dst)
                });
                h.write_u64(min);
            }
            h.write_usize(b);
            for dst in 0..b {
                let min = Self::refine(live, next, |cand| {
                    Self::object_slot_hash(protocol, config, renamings, tables, cand, dst)
                });
                h.write_u64(min);
            }
            h.finish() & self.mask
        })
    }

    /// Full-|G| reference for the pruned search: every candidate's complete
    /// slot-hash sequence, lexicographic minimum, folded exactly as
    /// [`CanonicalVisitedSet::orbit_key`] folds it. This is the pre-chain
    /// scan's O(|G| · (b + n)) cost profile, kept **test-only** as the
    /// parity baseline for `tests/canon_soundness.rs` — never on a hot
    /// path.
    #[doc(hidden)]
    pub fn orbit_key_unpruned(&self, protocol: &P, config: &Configuration<P>) -> u64 {
        use std::hash::Hasher;
        let tables = self.tables(protocol, config);
        let renamings = &self.renamings;
        let b = config.num_objects();
        let n = config.num_processes();
        let sequence = |cand: u32| -> Vec<u64> {
            (0..n)
                .map(|dst| Self::process_slot_hash(protocol, config, renamings, tables, cand, dst))
                .chain((0..b).map(|dst| {
                    Self::object_slot_hash(protocol, config, renamings, tables, cand, dst)
                }))
                .collect()
        };
        let mut best = sequence(IDENTITY_CANDIDATE);
        for cand in 0..renamings.len() as u32 {
            let candidate = sequence(cand);
            if candidate < best {
                best = candidate;
            }
        }
        let mut h = fxhash::FxHasher::default();
        h.write_usize(n);
        for &slot in &best[..n] {
            h.write_u64(slot);
        }
        h.write_usize(b);
        for &slot in &best[n..] {
            h.write_u64(slot);
        }
        h.finish() & self.mask
    }

    /// The pruned orbit key — exposed for the brute-force parity suite
    /// (`tests/canon_soundness.rs`) only; engines go through
    /// [`CanonicalVisitedSet::insert`]/[`CanonicalVisitedSet::contains`].
    #[doc(hidden)]
    pub fn orbit_key_pruned(&self, protocol: &P, config: &Configuration<P>) -> u64 {
        self.orbit_key(protocol, config)
    }

    /// Whether `g · config == stored`, compared slot by slot through the
    /// inverse tables with early exit on the first mismatch — no image
    /// materialized. Process slots go first for the same reason the chain
    /// search walks them first: they carry the per-pid payload and reject a
    /// wrong renaming within a slot or two, while object slots are often
    /// identical across the whole group.
    fn renamed_eq(
        protocol: &P,
        config: &Configuration<P>,
        stored: &Configuration<P>,
        g: &Renaming,
        t: &RenamingTables,
    ) -> bool {
        let n = config.num_processes();
        let b = config.num_objects();
        for dst in 0..n {
            let src = ProcessId(t.inv_pid[dst]);
            let eq = match (config.status(src), stored.status(ProcessId(dst))) {
                (ProcStatus::Running(s), ProcStatus::Running(d)) => {
                    &protocol.rename_state(s, g) == d
                }
                (ProcStatus::Decided(v), ProcStatus::Decided(d)) => g.value(*v) == *d,
                (ProcStatus::Crashed, ProcStatus::Crashed) => true,
                _ => false,
            };
            if !eq {
                return false;
            }
        }
        for dst in 0..b {
            let src = ObjectId(t.inv_obj[dst]);
            if protocol.rename_value(src, config.value(src), g) != *stored.value(ObjectId(dst)) {
                return false;
            }
        }
        true
    }

    /// Whether any member of `config`'s orbit equals a stored
    /// representative in `bucket` — the exact fallback, reached on every
    /// bucket hit, i.e. on every duplicate successor, which makes it as hot
    /// as the key computation itself. Each candidate renaming is tested by
    /// [`Self::renamed_eq`]'s slot-wise early-exit comparison instead of
    /// materializing the image: a wrong renaming costs about one rename
    /// call, not a full configuration clone.
    fn orbit_hits_bucket(
        &self,
        protocol: &P,
        bucket: &[Configuration<P>],
        config: &Configuration<P>,
    ) -> bool {
        if bucket.iter().any(|stored| stored == config) {
            return true;
        }
        let tables = self.tables(protocol, config);
        self.renamings.iter().zip(tables).any(|(g, t)| {
            bucket
                .iter()
                .any(|stored| Self::renamed_eq(protocol, config, stored, g, t))
        })
    }

    /// The orbit's (masked) bucket key — exposed crate-internally so the
    /// striped sharded set ([`crate::shard`]) can compute orbit keys through
    /// **one** shared instance (whose lazily built `OnceLock` inverse tables
    /// are then shared read-only across workers) and route each insert to a
    /// stripe. Orbit keys are orbit invariants, so every member of an orbit
    /// lands in the same stripe.
    pub(crate) fn key_of(&self, protocol: &P, config: &Configuration<P>) -> u64 {
        self.orbit_key(protocol, config)
    }

    /// An empty set over the same group, mask, and compaction policy — the
    /// stripe factory for [`crate::shard`]. The stripe keeps its own copy of
    /// the renamings for the exact orbit fallback on bucket hits (which
    /// builds the stripe's own inverse tables on first use); keys are still
    /// only ever computed through the shared keyer.
    pub(crate) fn stripe_clone(&self) -> Self {
        CanonicalVisitedSet {
            renamings: self.renamings.clone(),
            degraded: self.degraded,
            tables: std::sync::OnceLock::new(),
            buckets: PrehashedMap::default(),
            len: 0,
            mask: self.mask,
            compaction: self.compaction,
            fallback_comparisons: 0,
        }
    }

    /// Insert `config`'s orbit, returning `true` if no member of the orbit
    /// was already present.
    pub fn insert(&mut self, protocol: &P, config: &Configuration<P>) -> bool {
        let key = self.orbit_key(protocol, config);
        self.insert_prekeyed(key, protocol, config)
    }

    /// [`CanonicalVisitedSet::insert`] with the orbit key already computed
    /// (the sharded set computes keys through its shared keyer, outside the
    /// stripe lock).
    pub(crate) fn insert_prekeyed(
        &mut self,
        key: u64,
        protocol: &P,
        config: &Configuration<P>,
    ) -> bool {
        use std::collections::hash_map::Entry;
        match self.buckets.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert(if self.compaction {
                    Vec::new()
                } else {
                    vec![config.clone()]
                });
                self.len += 1;
                true
            }
            Entry::Occupied(mut slot) => {
                if self.compaction {
                    return false;
                }
                // Detach the bucket so the fallback can borrow `self`
                // immutably; bucket hits are rare enough that the move is
                // free in practice (the vector's storage moves, not its
                // elements).
                let mut bucket = std::mem::take(slot.get_mut());
                self.fallback_comparisons += bucket.len();
                let fresh = if self.orbit_hits_bucket(protocol, &bucket, config) {
                    false
                } else {
                    bucket.push(config.clone());
                    self.len += 1;
                    true
                };
                *self.buckets.get_mut(&key).expect("bucket exists") = bucket;
                fresh
            }
        }
    }

    /// Whether some member of `config`'s orbit is present. (A rare-path
    /// probe — the engines call it only once a budget is exhausted — so it
    /// does not contribute to [`Self::fallback_comparisons`], which counts
    /// insert probes.)
    pub fn contains(&self, protocol: &P, config: &Configuration<P>) -> bool {
        self.contains_prekeyed(self.orbit_key(protocol, config), protocol, config)
    }

    /// [`CanonicalVisitedSet::contains`] with the orbit key already
    /// computed.
    pub(crate) fn contains_prekeyed(
        &self,
        key: u64,
        protocol: &P,
        config: &Configuration<P>,
    ) -> bool {
        match self.buckets.get(&key) {
            None => false,
            Some(bucket) => self.compaction || self.orbit_hits_bucket(protocol, bucket, config),
        }
    }

    /// Number of distinct orbits inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact-equality comparisons performed by the fallback path.
    pub fn fallback_comparisons(&self) -> usize {
        self.fallback_comparisons
    }
}

impl<P: Protocol> std::fmt::Debug for CanonicalVisitedSet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CanonicalVisitedSet")
            .field("len", &self.len)
            .field("group_order", &self.group_order())
            .field("compaction", &self.compaction)
            .field("fallback_comparisons", &self.fallback_comparisons)
            .finish()
    }
}

/// The dedup front-end shared by the exploration engines: exact, reduced,
/// or (opt-in, unsound) fingerprint-compacted — one insert/contains surface
/// so `ModelChecker` and `ValencyOracle` stay mode-agnostic.
pub enum DedupSet<P: Protocol> {
    /// Plain exact visited set (the default).
    Exact(VisitedSet<P>),
    /// Orbit-keyed set: one representative explored per symmetry orbit.
    Reduced(CanonicalVisitedSet<P>),
}

impl<P: Protocol> DedupSet<P> {
    /// An exact set pre-sized for `expected` configurations.
    pub fn exact(expected: usize) -> Self {
        DedupSet::Exact(VisitedSet::with_capacity(expected))
    }

    /// A reduced set for `canon`'s group; degrades to exact when the group
    /// is trivial (so the orbit machinery costs nothing when it buys
    /// nothing). A trivial-but-**degraded** group (an inconsistent
    /// declaration) stays `Reduced` so the flag survives into reports —
    /// with zero renamings the orbit machinery is plain exact dedup.
    pub fn reduced(canon: Canonicalizer, expected: usize) -> Self {
        if canon.is_trivial() && !canon.degraded() {
            DedupSet::exact(expected)
        } else {
            DedupSet::Reduced(CanonicalVisitedSet::new(canon).with_capacity(expected))
        }
    }

    /// Switch to fingerprint-only membership (unsound; see
    /// [`CanonicalVisitedSet::unsound_hash_compaction`]).
    #[must_use]
    pub fn unsound_hash_compaction(self) -> Self {
        match self {
            DedupSet::Exact(set) => DedupSet::Exact(set.unsound_hash_compaction()),
            DedupSet::Reduced(set) => DedupSet::Reduced(set.unsound_hash_compaction()),
        }
    }

    /// Insert, returning `true` if the configuration (or its orbit) is new.
    pub fn insert(&mut self, protocol: &P, config: &Configuration<P>) -> bool {
        match self {
            DedupSet::Exact(set) => set.insert(config),
            DedupSet::Reduced(set) => set.insert(protocol, config),
        }
    }

    /// Membership test.
    pub fn contains(&self, protocol: &P, config: &Configuration<P>) -> bool {
        match self {
            DedupSet::Exact(set) => set.contains(config),
            DedupSet::Reduced(set) => set.contains(protocol, config),
        }
    }

    /// Distinct configurations (orbits) inserted.
    pub fn len(&self) -> usize {
        match self {
            DedupSet::Exact(set) => set.len(),
            DedupSet::Reduced(set) => set.len(),
        }
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Order of the dedup group (1 for the exact modes).
    pub fn group_order(&self) -> usize {
        match self {
            DedupSet::Exact(_) => 1,
            DedupSet::Reduced(set) => set.group_order(),
        }
    }

    /// Whether the dedup group is a degraded subgroup of the protocol's
    /// declared symmetry (see [`Canonicalizer::degraded`]; always `false`
    /// for exact sets).
    pub fn degraded(&self) -> bool {
        match self {
            DedupSet::Exact(_) => false,
            DedupSet::Reduced(set) => set.degraded(),
        }
    }

    /// Exact-equality comparisons performed by the fallback paths.
    pub fn fallback_comparisons(&self) -> usize {
        match self {
            DedupSet::Exact(set) => set.fallback_comparisons(),
            DedupSet::Reduced(set) => set.fallback_comparisons(),
        }
    }

    /// The configuration's (orbit) bucket key — the routing key of the
    /// striped sharded set ([`crate::shard`]). Crate-internal.
    pub(crate) fn key_of(&self, protocol: &P, config: &Configuration<P>) -> u64 {
        match self {
            DedupSet::Exact(set) => set.key_of(config),
            DedupSet::Reduced(set) => set.key_of(protocol, config),
        }
    }

    /// An empty set with the same mode, group, mask, and compaction policy —
    /// the stripe factory for [`crate::shard`]. Crate-internal.
    pub(crate) fn stripe_clone(&self) -> Self {
        match self {
            DedupSet::Exact(set) => DedupSet::Exact(set.stripe_clone()),
            DedupSet::Reduced(set) => DedupSet::Reduced(set.stripe_clone()),
        }
    }

    /// Insert with the routing key already computed. Crate-internal.
    pub(crate) fn insert_prekeyed(
        &mut self,
        key: u64,
        protocol: &P,
        config: &Configuration<P>,
    ) -> bool {
        match self {
            DedupSet::Exact(set) => set.insert_prekeyed(key, config),
            DedupSet::Reduced(set) => set.insert_prekeyed(key, protocol, config),
        }
    }

    /// Membership with the routing key already computed. Crate-internal.
    pub(crate) fn contains_prekeyed(
        &self,
        key: u64,
        protocol: &P,
        config: &Configuration<P>,
    ) -> bool {
        match self {
            DedupSet::Exact(set) => set.contains_prekeyed(key, config),
            DedupSet::Reduced(set) => set.contains_prekeyed(key, protocol, config),
        }
    }
}

impl<P: Protocol> std::fmt::Debug for DedupSet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DedupSet::Exact(set) => f.debug_tuple("Exact").field(set).finish(),
            DedupSet::Reduced(set) => f.debug_tuple("Reduced").field(set).finish(),
        }
    }
}

/// Brute-force check of a protocol's symmetry declaration: for every
/// renaming in the run group of `inputs`, verify that the renaming fixes the
/// initial configuration and commutes with every step along seeded-random
/// executions (`g · step(C, p) = step(g·C, π(p))`). Panics with a diagnostic
/// on the first violation — call it from protocol test suites whenever a
/// symmetry declaration or a rename hook changes.
///
/// # Panics
///
/// Panics if the declaration is not equivariant (or `inputs` are invalid).
pub fn assert_equivariant<P: Protocol>(protocol: &P, inputs: &[u64], steps: usize, seeds: u64) {
    use rand::{Rng, SeedableRng};
    let canon = Canonicalizer::for_inputs(protocol, inputs);
    let initial = Configuration::initial(protocol, inputs).expect("valid inputs");
    let num_objects = protocol.num_objects();
    for g in canon.renamings() {
        // The object component (declared τ or a rename_object override) must
        // be a schema-preserving permutation — a renamed configuration must
        // make every operation legal on its new slot.
        let mut hit = vec![false; num_objects];
        for o in (0..num_objects).map(ObjectId) {
            let dst = protocol.rename_object(o, g);
            assert!(
                dst.index() < num_objects && !std::mem::replace(&mut hit[dst.index()], true),
                "renaming {g:?}: rename_object is not a permutation at {o}"
            );
            assert!(
                protocol.schema(o) == protocol.schema(dst),
                "renaming {g:?} moves {o} onto {dst}, whose schema differs"
            );
        }
        assert!(
            apply_renaming(protocol, g, &initial) == initial,
            "renaming {g:?} does not fix the initial configuration for inputs {inputs:?}"
        );
    }
    let mut running = Vec::new();
    for seed in 0..seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut config = initial.clone();
        for step in 0..steps {
            config.running_into(&mut running);
            if running.is_empty() {
                break;
            }
            let p = running[rng.gen_range(0..running.len())];
            // Occasionally crash instead of stepping (keeping at least one
            // process running): renamings must also commute with crash
            // transitions — `g · crash(C, p) = crash(g·C, π(p))` — so the
            // symmetry-reduced search respects crashed-process sets.
            let crash = running.len() > 1 && rng.gen_range(0..4) == 0;
            for g in canon.renamings() {
                let mut renamed_then_stepped = apply_renaming(protocol, g, &config);
                // Poised operations must commute kind-for-kind: the renamed
                // process is poised on the renamed object with an operation
                // of the same kind (and the same triviality — this is what
                // extends the contract to the read-modify-write kinds:
                // renaming may rewrite a swap's payload, but it must never
                // turn a test-and-set into a max-write or a max-read into
                // anything nontrivial).
                {
                    let (obj, op) = protocol.poised(config.state(p).expect("p is running"));
                    let (robj, rop) = protocol.poised(
                        renamed_then_stepped
                            .state(g.pid(p))
                            .expect("renamed p is running"),
                    );
                    assert!(
                        robj == protocol.rename_object(obj, g),
                        "renaming {g:?}: process {p} poised on {obj} is renamed \
                         to a process poised on {robj}"
                    );
                    assert!(
                        rop.kind() == op.kind(),
                        "renaming {g:?}: process {p} poised to {:?} is renamed \
                         to a process poised to {:?}",
                        op.kind(),
                        rop.kind()
                    );
                }
                let mut original = config.clone();
                if crash {
                    renamed_then_stepped
                        .crash(g.pid(p))
                        .expect("renamed crash must be legal");
                    original.crash(p).expect("crash must be legal");
                } else {
                    renamed_then_stepped
                        .step_quiet(protocol, g.pid(p))
                        .expect("renamed step must be legal");
                    original
                        .step_quiet(protocol, p)
                        .expect("step must be legal");
                }
                let stepped_then_renamed = apply_renaming(protocol, g, &original);
                assert!(
                    renamed_then_stepped == stepped_then_renamed,
                    "equivariance violated at seed {seed}, step {step}, \
                     process {p}, crash {crash}, renaming {g:?}"
                );
            }
            if crash {
                config.crash(p).expect("crash must be legal");
            } else {
                config.step_quiet(protocol, p).expect("step must be legal");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TwoProcessSwapConsensus;

    fn init(inputs: &[u64]) -> Configuration<TwoProcessSwapConsensus> {
        Configuration::initial(&TwoProcessSwapConsensus, inputs).unwrap()
    }

    #[test]
    fn symmetry_constructors() {
        assert!(Symmetry::none().is_trivial());
        let full = Symmetry::full_process(3);
        assert!(!full.is_trivial());
        assert_eq!(full.classes().len(), 1);
        assert!(Symmetry::process_classes(vec![vec![ProcessId(0)]]).is_trivial());
        assert!(Symmetry::process_classes(vec![])
            .with_interchangeable_values()
            .values_interchangeable());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_classes_rejected() {
        let _ = Symmetry::process_classes(vec![
            vec![ProcessId(0), ProcessId(1)],
            vec![ProcessId(1), ProcessId(2)],
        ]);
    }

    #[test]
    #[should_panic(expected = "blocks must be disjoint")]
    fn overlapping_blocks_rejected() {
        let _ = ObjectClasses::value_coupled(
            vec![
                vec![ObjectId(0), ObjectId(1)],
                vec![ObjectId(1), ObjectId(2)],
            ],
            vec![0, 1],
        );
    }

    #[test]
    #[should_panic(expected = "one label per block")]
    fn label_count_mismatch_rejected() {
        let _ = ObjectClasses::value_coupled(vec![vec![ObjectId(0)], vec![ObjectId(1)]], vec![0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_blocks_rejected() {
        let _ = ObjectClasses::process_coupled(
            vec![vec![ObjectId(0), ObjectId(1)], vec![ObjectId(2)]],
            vec![vec![], vec![]],
        );
    }

    #[test]
    fn object_symmetry_flips_triviality() {
        // A process-coupled class with two blocks admits a renaming even
        // with no process classes and no value symmetry; a value-coupled
        // class alone does not (σ is pinned to the identity).
        let blocks = || vec![vec![ObjectId(0)], vec![ObjectId(1)]];
        let free = Symmetry::none().with_object_classes(ObjectClasses::process_coupled(
            blocks(),
            vec![vec![], vec![]],
        ));
        assert!(!free.is_trivial());
        let value_coupled_only = Symmetry::none()
            .with_object_classes(ObjectClasses::value_coupled(blocks(), vec![0, 1]));
        assert!(value_coupled_only.is_trivial());
        assert!(!value_coupled_only
            .clone()
            .with_interchangeable_values()
            .is_trivial());
    }

    #[test]
    fn renaming_object_component_defaults_to_identity() {
        let id = Renaming::identity(2, 4);
        assert!(id.is_object_identity());
        assert_eq!(id.object(ObjectId(7)), ObjectId(7), "out of range = fixed");
    }

    #[test]
    fn composed_group_order_degrades_gracefully() {
        // 8 freely interchangeable blocks would be 8! = 40320 > 5040: the
        // cap keeps the prefix subgroup S₇ on the first seven blocks and
        // flags the degrade instead of dropping symmetry whole.
        let big: Vec<Vec<ObjectId>> = (0..8).map(|i| vec![ObjectId(i)]).collect();
        let sym = Symmetry::none()
            .with_object_classes(ObjectClasses::process_coupled(big, vec![Vec::new(); 8]));
        let set = enumerate_skeletons(&sym, 2);
        assert!(set.degraded);
        assert_eq!(set.skeletons.len(), 5040);
        // 7 blocks are exactly 5040 — fully enumerated, no degrade.
        let edge: Vec<Vec<ObjectId>> = (0..7).map(|i| vec![ObjectId(i)]).collect();
        let sym = Symmetry::none()
            .with_object_classes(ObjectClasses::process_coupled(edge, vec![Vec::new(); 7]));
        let set = enumerate_skeletons(&sym, 2);
        assert!(!set.degraded);
        assert_eq!(set.skeletons.len(), 5040);
        // Composed factors: 3! × 7! overflows; the larger factor claims the
        // budget first (S₇ fits exactly) and the process class degrades to
        // fixed points.
        let seven: Vec<Vec<ObjectId>> = (0..7).map(|i| vec![ObjectId(i)]).collect();
        let sym = Symmetry::full_process(3)
            .with_object_classes(ObjectClasses::process_coupled(seven, vec![Vec::new(); 7]));
        let set = enumerate_skeletons(&sym, 3);
        assert!(set.degraded);
        assert_eq!(set.skeletons.len(), 5040);
    }

    #[test]
    fn cap_budget_is_claimed_largest_first() {
        // [3, 8]: the 8-element factor claims S₇ (exactly 5040) and leaves
        // nothing for the 3-element one — largest-first beats declaration
        // order, which would settle for 3! × S₆ = 4320.
        let (kept, degraded) = fit_factors_under_cap(&[3, 8]);
        assert_eq!(kept, vec![1, 7]);
        assert!(degraded);
        // [4, 4]: 24 × 24 = 576 fits whole.
        let (kept, degraded) = fit_factors_under_cap(&[4, 4]);
        assert_eq!(kept, vec![4, 4]);
        assert!(!degraded);
        // [4, 4, 4]: 24³ overflows — the third factor keeps the prefix S₃
        // (24 · 24 · 6 = 3456 ≤ 5040, × 4 would burst).
        let (kept, degraded) = fit_factors_under_cap(&[4, 4, 4]);
        assert_eq!(kept, vec![4, 4, 3]);
        assert!(degraded);
        // Degenerate factors pass through untouched.
        let (kept, degraded) = fit_factors_under_cap(&[0, 1, 2]);
        assert_eq!(kept, vec![0, 1, 2]);
        assert!(!degraded);
    }

    #[test]
    fn inconsistent_declarations_degrade_to_flagged_trivial() {
        // An owner list overlapping a declared class without equaling it is
        // not partially honorable: the group degrades to trivial but the
        // canonicalizer reports it, and `DedupSet::reduced` keeps the
        // flagged (exact-behaving) reduced set instead of silently going
        // exact.
        let sym = Symmetry::process_classes(vec![vec![ProcessId(0), ProcessId(1)]])
            .with_object_classes(ObjectClasses::process_coupled(
                vec![vec![ObjectId(0)], vec![ObjectId(1)]],
                vec![vec![ProcessId(0)], vec![ProcessId(2)]],
            ));
        assert!(!object_classes_valid(&sym, 3, 2));
        let degraded_trivial = Canonicalizer {
            renamings: Vec::new(),
            degraded: true,
        };
        let set: DedupSet<TwoProcessSwapConsensus> = DedupSet::reduced(degraded_trivial, 8);
        assert!(matches!(set, DedupSet::Reduced(_)));
        assert_eq!(set.group_order(), 1);
        assert!(set.degraded());
    }

    #[test]
    fn owner_lists_must_match_or_avoid_declared_classes() {
        // owners[0] overlaps the declared class {p0, p1} without equaling
        // it: the composed renamings would not form a group, so the
        // enumeration must degrade to trivial.
        let sym = Symmetry::process_classes(vec![vec![ProcessId(0), ProcessId(1)]])
            .with_object_classes(ObjectClasses::process_coupled(
                vec![vec![ObjectId(0)], vec![ObjectId(1)]],
                vec![vec![ProcessId(0)], vec![ProcessId(2)]],
            ));
        assert!(!object_classes_valid(&sym, 3, 2));
        // Owner lists that are exactly declared classes pass.
        let sym = Symmetry::process_classes(vec![
            vec![ProcessId(0), ProcessId(1)],
            vec![ProcessId(2), ProcessId(3)],
        ])
        .with_object_classes(ObjectClasses::process_coupled(
            vec![vec![ObjectId(0)], vec![ObjectId(1)]],
            vec![
                vec![ProcessId(0), ProcessId(1)],
                vec![ProcessId(2), ProcessId(3)],
            ],
        ));
        assert!(object_classes_valid(&sym, 4, 2));
        // Owner lists disjoint from every class pass too.
        let sym = Symmetry::process_classes(vec![vec![ProcessId(0), ProcessId(1)]])
            .with_object_classes(ObjectClasses::process_coupled(
                vec![vec![ObjectId(0)], vec![ObjectId(1)]],
                vec![vec![ProcessId(2)], vec![ProcessId(3)]],
            ));
        assert!(object_classes_valid(&sym, 4, 2));
        // Mixing the two kinds within one object class is rejected: a block
        // move would conjugate the {p0, p1} within-class swap onto a
        // {p2, p3} permutation the enumeration never generates, so the
        // renamings would not be closed under composition.
        let sym = Symmetry::process_classes(vec![vec![ProcessId(0), ProcessId(1)]])
            .with_object_classes(ObjectClasses::process_coupled(
                vec![vec![ObjectId(0)], vec![ObjectId(1)]],
                vec![
                    vec![ProcessId(0), ProcessId(1)],
                    vec![ProcessId(2), ProcessId(3)],
                ],
            ));
        assert!(!object_classes_valid(&sym, 4, 2));
        // Owner lists of different object classes must not overlap either:
        // two classes dragging p1 would compose into a 3-cycle whose
        // inverse the enumeration never generates.
        let sym = Symmetry::none()
            .with_object_classes(ObjectClasses::process_coupled(
                vec![vec![ObjectId(0)], vec![ObjectId(1)]],
                vec![vec![ProcessId(0)], vec![ProcessId(1)]],
            ))
            .with_object_classes(ObjectClasses::process_coupled(
                vec![vec![ObjectId(2)], vec![ObjectId(3)]],
                vec![vec![ProcessId(1)], vec![ProcessId(2)]],
            ));
        assert!(!object_classes_valid(&sym, 3, 4));
    }

    #[test]
    fn process_coupled_blocks_drag_their_owners() {
        // Pair-style declaration: swapping the blocks must swap the owner
        // classes slot-for-slot, visible in the canonical input vector even
        // without value symmetry.
        let sym = Symmetry::process_classes(vec![
            vec![ProcessId(0), ProcessId(1)],
            vec![ProcessId(2), ProcessId(3)],
        ])
        .with_object_classes(ObjectClasses::process_coupled(
            vec![vec![ObjectId(0)], vec![ObjectId(1)]],
            vec![
                vec![ProcessId(0), ProcessId(1)],
                vec![ProcessId(2), ProcessId(3)],
            ],
        ));
        assert_eq!(
            canonical_input_vector(&sym, &[3, 3, 0, 0]),
            vec![0, 0, 3, 3]
        );
        assert!(inputs_are_canonical(&sym, &[0, 0, 3, 3]));
    }

    #[test]
    fn value_coupled_labels_gate_input_normalization() {
        // Labels {0, 1}: a first-occurrence σ sending 2 ↦ 0 would move a
        // non-label onto a label, which no symmetry admits — [2, 2] must
        // stay canonical instead of collapsing to [0, 0].
        let sym = Symmetry::full_process(2)
            .with_interchangeable_values()
            .with_object_classes(ObjectClasses::value_coupled(
                vec![vec![ObjectId(0)], vec![ObjectId(1)]],
                vec![0, 1],
            ));
        assert!(inputs_are_canonical(&sym, &[2, 2]));
        // Swapping 0 and 1 keeps the label set intact: still collapsible.
        assert_eq!(canonical_input_vector(&sym, &[1, 1]), vec![0, 0]);
        assert_eq!(canonical_input_vector(&sym, &[1, 0]), vec![0, 1]);
        // Without the value-coupled class the same declaration normalizes
        // [2, 2] freely — the gate is the labels, nothing else.
        let free = Symmetry::full_process(2).with_interchangeable_values();
        assert_eq!(canonical_input_vector(&free, &[2, 2]), vec![0, 0]);
    }

    #[test]
    fn identity_renaming_is_identity() {
        let id = Renaming::identity(3, 4);
        assert!(id.is_identity());
        assert!(id.is_value_identity());
        assert_eq!(id.pid(ProcessId(2)), ProcessId(2));
        assert_eq!(id.value(3), 3);
        assert_eq!(id.value(99), 99, "out-of-domain values are fixed");
    }

    #[test]
    fn group_of_unanimous_inputs_is_full_symmetric() {
        // TwoProcessSwapConsensus declares full process + value symmetry;
        // with equal inputs every process transposition is compatible.
        let canon = Canonicalizer::for_inputs(&TwoProcessSwapConsensus, &[5, 5]);
        assert_eq!(canon.group_order(), 2);
        // With distinct inputs the transposition needs the value swap, which
        // value symmetry supplies.
        let canon = Canonicalizer::for_inputs(&TwoProcessSwapConsensus, &[0, 1]);
        assert_eq!(canon.group_order(), 2);
        let g = &canon.renamings()[0];
        assert!(!g.is_value_identity());
        assert_eq!(g.value(0), 1);
        assert_eq!(g.value(1), 0);
        assert_eq!(g.value(7), 7, "non-appearing values are fixed");
    }

    #[test]
    fn orbit_collapse_two_process() {
        // After one step by either process the two results are orbit-equal.
        let canon = Canonicalizer::for_inputs(&TwoProcessSwapConsensus, &[0, 1]);
        let mut a = init(&[0, 1]);
        let mut b = init(&[0, 1]);
        a.step_quiet(&TwoProcessSwapConsensus, ProcessId(0))
            .unwrap();
        b.step_quiet(&TwoProcessSwapConsensus, ProcessId(1))
            .unwrap();
        assert_ne!(a, b, "genuinely different configurations");
        let g = &canon.renamings()[0];
        assert_eq!(apply_renaming(&TwoProcessSwapConsensus, g, &a), b);
        let mut set = CanonicalVisitedSet::new(canon);
        assert!(set.insert(&TwoProcessSwapConsensus, &a));
        assert!(!set.insert(&TwoProcessSwapConsensus, &b), "same orbit");
        assert_eq!(set.len(), 1);
        assert!(set.contains(&TwoProcessSwapConsensus, &b));
    }

    /// Per-slot hashes of a materialized configuration, in the destination
    /// order the incremental path walks (objects, then processes).
    fn materialized_slot_hashes(config: &Configuration<TwoProcessSwapConsensus>) -> Vec<u64> {
        use std::hash::{Hash, Hasher};
        let mut out = Vec::new();
        for o in 0..config.num_objects() {
            let mut h = fxhash::FxHasher::default();
            config.value(ObjectId(o)).hash(&mut h);
            out.push(h.finish());
        }
        for p in 0..config.num_processes() {
            let mut h = fxhash::FxHasher::default();
            config.status(ProcessId(p)).hash(&mut h);
            out.push(h.finish());
        }
        out
    }

    #[test]
    fn orbit_slot_hashes_match_materialized_images() {
        // The incremental per-slot hash path must agree bit for bit with
        // materializing the renamed twin and hashing its slots — otherwise
        // the lex-min slot sequence is not an orbit invariant and the
        // reduced sets would silently stop deduplicating twins. The pruned
        // search must also agree with the unpruned full-|G| reference, and
        // the key must be constant across each orbit.
        use rand::{Rng, SeedableRng};
        let protocol = TwoProcessSwapConsensus;
        for inputs in [[0u64, 1], [5, 5], [3, 9]] {
            let set = CanonicalVisitedSet::new(Canonicalizer::for_inputs(&protocol, &inputs));
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut config = init(&inputs);
            let mut running = Vec::new();
            loop {
                let tables = set.tables(&protocol, &config);
                let b = config.num_objects();
                let n = config.num_processes();
                let incremental = |cand: u32| -> Vec<u64> {
                    (0..b)
                        .map(|d| {
                            CanonicalVisitedSet::object_slot_hash(
                                &protocol,
                                &config,
                                &set.renamings,
                                tables,
                                cand,
                                d,
                            )
                        })
                        .chain((0..n).map(|d| {
                            CanonicalVisitedSet::process_slot_hash(
                                &protocol,
                                &config,
                                &set.renamings,
                                tables,
                                cand,
                                d,
                            )
                        }))
                        .collect()
                };
                assert_eq!(
                    incremental(IDENTITY_CANDIDATE),
                    materialized_slot_hashes(&config),
                    "identity candidate must read the configuration itself"
                );
                for (i, g) in set.renamings.iter().enumerate() {
                    let materialized = apply_renaming(&protocol, g, &config);
                    assert_eq!(
                        incremental(i as u32),
                        materialized_slot_hashes(&materialized),
                        "inputs {inputs:?}, renaming {g:?}"
                    );
                }
                // Pruned chain == unpruned scan, and the key is an orbit
                // invariant: every member of the orbit maps to one bucket.
                assert_eq!(
                    set.orbit_key(&protocol, &config),
                    set.orbit_key_unpruned(&protocol, &config)
                );
                for g in &set.renamings {
                    let image = apply_renaming(&protocol, g, &config);
                    assert_eq!(
                        set.orbit_key(&protocol, &config),
                        set.orbit_key(&protocol, &image)
                    );
                }
                config.running_into(&mut running);
                if running.is_empty() {
                    break;
                }
                let p = running[rng.gen_range(0..running.len())];
                config.step_quiet(&protocol, p).unwrap();
            }
        }
    }

    #[test]
    fn canonical_set_exact_under_forced_collisions() {
        // Mask 0 sends every orbit to one bucket; distinct orbits must still
        // be told apart by the exact orbit-comparison fallback.
        let canon = Canonicalizer::for_inputs(&TwoProcessSwapConsensus, &[0, 1]);
        let mut set = CanonicalVisitedSet::new(canon).with_fingerprint_mask(0);
        let a = init(&[0, 1]);
        let mut b = a.clone();
        b.step_quiet(&TwoProcessSwapConsensus, ProcessId(0))
            .unwrap();
        let mut c = b.clone();
        c.step_quiet(&TwoProcessSwapConsensus, ProcessId(1))
            .unwrap();
        assert!(set.insert(&TwoProcessSwapConsensus, &a));
        assert!(set.insert(&TwoProcessSwapConsensus, &b));
        assert!(set.insert(&TwoProcessSwapConsensus, &c));
        assert_eq!(set.len(), 3);
        assert!(!set.insert(&TwoProcessSwapConsensus, &a));
        assert!(set.fallback_comparisons() > 0);
    }

    #[test]
    fn hash_compaction_is_fingerprint_only() {
        let canon = Canonicalizer::for_inputs(&TwoProcessSwapConsensus, &[0, 1]);
        // Mask 0 + compaction: everything merges into one bucket — the
        // documented unsoundness, verified to actually behave that way.
        let mut set = CanonicalVisitedSet::new(canon)
            .with_fingerprint_mask(0)
            .unsound_hash_compaction();
        let a = init(&[0, 1]);
        let mut b = a.clone();
        b.step_quiet(&TwoProcessSwapConsensus, ProcessId(0))
            .unwrap();
        assert!(set.insert(&TwoProcessSwapConsensus, &a));
        assert!(
            !set.insert(&TwoProcessSwapConsensus, &b),
            "colliding fingerprints silently merge under compaction"
        );
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn canonical_input_vectors() {
        let sym = Symmetry::full_process(3).with_interchangeable_values();
        assert_eq!(canonical_input_vector(&sym, &[2, 2, 0]), vec![0, 0, 1]);
        assert!(inputs_are_canonical(&sym, &[0, 0, 1]));
        assert!(!inputs_are_canonical(&sym, &[1, 0, 0]));
        // Process symmetry only: values keep their identity, order is free.
        let sym = Symmetry::full_process(3);
        assert_eq!(canonical_input_vector(&sym, &[2, 0, 1]), vec![0, 1, 2]);
        // No symmetry: everything is canonical.
        assert!(inputs_are_canonical(&Symmetry::none(), &[3, 1, 2]));
    }

    #[test]
    fn dedup_set_degrades_to_exact_for_trivial_groups() {
        let set: DedupSet<TwoProcessSwapConsensus> = DedupSet::reduced(Canonicalizer::trivial(), 8);
        assert!(matches!(set, DedupSet::Exact(_)));
        assert_eq!(set.group_order(), 1);
    }

    #[test]
    fn two_process_consensus_is_equivariant() {
        assert_equivariant(&TwoProcessSwapConsensus, &[0, 1], 2, 4);
        assert_equivariant(&TwoProcessSwapConsensus, &[7, 7], 2, 4);
        assert_equivariant(&TwoProcessSwapConsensus, &[3, 9], 2, 4);
    }
}
