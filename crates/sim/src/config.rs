//! Configurations and steps — the paper's execution model, executable.
//!
//! A configuration consists of a state for every process and a value for
//! every object (Section 2). [`Configuration::step`] applies exactly one
//! step: the scheduled process applies its poised operation to an object,
//! obtains the response determined by the object's current value, performs
//! its local computation, and either continues or decides.

use std::collections::HashSet;
use std::fmt;

use swapcons_objects::{HistorylessOp, ObjectSchema, SchemaError};

use crate::history::StepRecord;
use crate::ids::{ObjectId, ProcessId};
use crate::protocol::{Protocol, SimValue, Transition};

/// Status of one process within a configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProcStatus<S> {
    /// Still participating; holds the local state.
    Running(S),
    /// Terminated with a decision. Decided processes take no further steps.
    Decided(u64),
}

impl<S> ProcStatus<S> {
    /// The local state, if still running.
    pub fn state(&self) -> Option<&S> {
        match self {
            ProcStatus::Running(s) => Some(s),
            ProcStatus::Decided(_) => None,
        }
    }

    /// The decision, if decided.
    pub fn decision(&self) -> Option<u64> {
        match self {
            ProcStatus::Running(_) => None,
            ProcStatus::Decided(v) => Some(*v),
        }
    }
}

/// A reachable configuration of a protocol: object values, process statuses,
/// and the inputs that produced the initial configuration (kept for validity
/// checking).
pub struct Configuration<P: Protocol> {
    objects: Vec<P::Value>,
    procs: Vec<ProcStatus<P::State>>,
    inputs: Vec<u64>,
}

// Manual impls: the derive would demand `P: Clone`/`P: Hash` etc., but only
// `P::Value` and `P::State` appear in fields, and the `Protocol` trait
// already requires Clone + Eq + Hash of both.
impl<P: Protocol> Clone for Configuration<P> {
    fn clone(&self) -> Self {
        Configuration {
            objects: self.objects.clone(),
            procs: self.procs.clone(),
            inputs: self.inputs.clone(),
        }
    }
}

impl<P: Protocol> PartialEq for Configuration<P> {
    fn eq(&self, other: &Self) -> bool {
        self.objects == other.objects && self.procs == other.procs && self.inputs == other.inputs
    }
}

impl<P: Protocol> Eq for Configuration<P> {}

impl<P: Protocol> std::hash::Hash for Configuration<P> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.objects.hash(state);
        self.procs.hash(state);
        self.inputs.hash(state);
    }
}

impl<P: Protocol> Configuration<P> {
    /// The initial configuration for the given per-process inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadInputs`] if the input vector violates the
    /// protocol's task (wrong length or out-of-range input), or a schema
    /// error if an initial object value violates its declared domain.
    pub fn initial(protocol: &P, inputs: &[u64]) -> Result<Self, SimError> {
        protocol
            .task()
            .check_inputs(inputs)
            .map_err(|v| SimError::BadInputs(v.to_string()))?;
        let schemas = protocol.schemas();
        let mut objects = Vec::with_capacity(schemas.len());
        for (i, schema) in schemas.iter().enumerate() {
            let value = protocol.initial_value(ObjectId(i));
            check_domain(schema, &value).map_err(|e| SimError::Schema {
                process: None,
                object: ObjectId(i),
                error: e,
            })?;
            objects.push(value);
        }
        let procs = inputs
            .iter()
            .enumerate()
            .map(
                |(i, &input)| match protocol.initial_decision(ProcessId(i), input) {
                    Some(v) => ProcStatus::Decided(v),
                    None => ProcStatus::Running(protocol.initial_state(ProcessId(i), input)),
                },
            )
            .collect();
        Ok(Configuration {
            objects,
            procs,
            inputs: inputs.to_vec(),
        })
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// Number of shared objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// The inputs this run started from.
    pub fn inputs(&self) -> &[u64] {
        &self.inputs
    }

    /// The value of object `obj` — the paper's `value(B, C)`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn value(&self, obj: ObjectId) -> &P::Value {
        &self.objects[obj.index()]
    }

    /// All object values, indexed by object id.
    pub fn object_values(&self) -> &[P::Value] {
        &self.objects
    }

    /// The status of process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn status(&self, pid: ProcessId) -> &ProcStatus<P::State> {
        &self.procs[pid.index()]
    }

    /// The local state of `pid`, if running.
    pub fn state(&self, pid: ProcessId) -> Option<&P::State> {
        self.status(pid).state()
    }

    /// The decision of `pid`, if decided.
    pub fn decision(&self, pid: ProcessId) -> Option<u64> {
        self.status(pid).decision()
    }

    /// Decisions of all processes, indexed by process id.
    pub fn decisions(&self) -> Vec<Option<u64>> {
        self.procs.iter().map(|s| s.decision()).collect()
    }

    /// The set of distinct decided values.
    pub fn decided_values(&self) -> HashSet<u64> {
        self.procs.iter().filter_map(|s| s.decision()).collect()
    }

    /// Ids of processes that have not yet decided.
    pub fn running(&self) -> Vec<ProcessId> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ProcStatus::Running(_)))
            .map(|(i, _)| ProcessId(i))
            .collect()
    }

    /// Whether every process has decided.
    pub fn all_decided(&self) -> bool {
        self.procs
            .iter()
            .all(|s| matches!(s, ProcStatus::Decided(_)))
    }

    /// The operation process `pid` is poised to apply (Section 2), or `None`
    /// if it has decided.
    pub fn poised(
        &self,
        protocol: &P,
        pid: ProcessId,
    ) -> Option<(ObjectId, HistorylessOp<P::Value>)> {
        self.state(pid).map(|s| protocol.poised(s))
    }

    /// Apply one step by `pid`, mutating the configuration and returning a
    /// record of the step.
    ///
    /// # Errors
    ///
    /// * [`SimError::ProcessDecided`] if `pid` has already decided;
    /// * [`SimError::Schema`] if the poised operation violates the target
    ///   object's schema (wrong operation kind or out-of-domain value) —
    ///   this indicates a bug in the protocol under test, and the
    ///   configuration is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range, or if the protocol's poised
    /// operation targets an out-of-range object (both are protocol bugs).
    pub fn step(&mut self, protocol: &P, pid: ProcessId) -> Result<StepRecord<P::Value>, SimError> {
        let state = match &self.procs[pid.index()] {
            ProcStatus::Running(s) => s.clone(),
            ProcStatus::Decided(_) => return Err(SimError::ProcessDecided(pid)),
        };
        let (obj, op) = protocol.poised(&state);
        assert!(
            obj.index() < self.objects.len(),
            "{pid:?} poised on out-of-range object {obj:?}"
        );
        let schema = protocol.schemas()[obj.index()];
        schema
            .check_op_kind(op.kind())
            .map_err(|e| SimError::Schema {
                process: Some(pid),
                object: obj,
                error: e,
            })?;
        if let Some(payload) = op.payload() {
            check_domain(&schema, payload).map_err(|e| SimError::Schema {
                process: Some(pid),
                object: obj,
                error: e,
            })?;
        }
        let current = &self.objects[obj.index()];
        let response = op.response(current);
        if let Some(next) = op.next_value(current) {
            self.objects[obj.index()] = next;
        }
        let decided = match protocol.observe(state, response.clone()) {
            Transition::Continue(next_state) => {
                self.procs[pid.index()] = ProcStatus::Running(next_state);
                None
            }
            Transition::Decide(v) => {
                self.procs[pid.index()] = ProcStatus::Decided(v);
                Some(v)
            }
        };
        Ok(StepRecord {
            pid,
            object: obj,
            op,
            response,
            decided,
        })
    }

    /// Whether this configuration is indistinguishable from `other` to every
    /// process in `pids` — the paper's `C1 ~P C2` (equal local states; note
    /// that indistinguishability of *configurations* constrains only process
    /// states, not object values).
    pub fn indistinguishable_to(&self, other: &Self, pids: &[ProcessId]) -> bool {
        pids.iter()
            .all(|&p| self.procs[p.index()] == other.procs[p.index()])
    }

    /// Whether the objects in `objs` hold the same values in `self` and
    /// `other` — the precondition for extending indistinguishable
    /// configurations by executions that access only those objects.
    pub fn same_object_values(&self, other: &Self, objs: &[ObjectId]) -> bool {
        objs.iter()
            .all(|&o| self.objects[o.index()] == other.objects[o.index()])
    }

    /// A compact fingerprint of the configuration (object values + process
    /// statuses), used by the model checker's visited set.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.objects.hash(&mut h);
        self.procs.hash(&mut h);
        h.finish()
    }

    /// Overwrite the value of an object. **System-level** operation used by
    /// adversary constructions to build hypothetical configurations; not
    /// reachable by any process step.
    pub fn poke_object(&mut self, obj: ObjectId, value: P::Value) {
        self.objects[obj.index()] = value;
    }
}

impl<P: Protocol> fmt::Debug for Configuration<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Configuration")
            .field("objects", &self.objects)
            .field("procs", &self.procs)
            .finish()
    }
}

fn check_domain<V: SimValue>(schema: &ObjectSchema, value: &V) -> Result<(), SchemaError> {
    match (schema.domain(), value.domain_point()) {
        (swapcons_objects::Domain::Unbounded, _) => Ok(()),
        (swapcons_objects::Domain::Bounded(_), Some(x)) => schema.check_value(x),
        (domain @ swapcons_objects::Domain::Bounded(_), None) => {
            // A composite value cannot inhabit a bounded integer domain.
            Err(SchemaError::ValueOutOfDomain {
                value: u64::MAX,
                domain,
            })
        }
    }
}

/// Errors produced by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The inputs passed to [`Configuration::initial`] violate the task.
    BadInputs(String),
    /// A decided process was scheduled.
    ProcessDecided(ProcessId),
    /// An operation violated an object's schema.
    Schema {
        /// The stepping process (`None` during initialization).
        process: Option<ProcessId>,
        /// The target object.
        object: ObjectId,
        /// The underlying schema error.
        error: SchemaError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadInputs(msg) => write!(f, "bad inputs: {msg}"),
            SimError::ProcessDecided(p) => write!(f, "{p} has already decided"),
            SimError::Schema {
                process,
                object,
                error,
            } => match process {
                Some(p) => write!(f, "{p} violated schema of {object}: {error}"),
                None => write!(f, "initial value of {object} violates schema: {error}"),
            },
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TwoProcessSwapConsensus;

    fn init(inputs: &[u64]) -> Configuration<TwoProcessSwapConsensus> {
        Configuration::initial(&TwoProcessSwapConsensus, inputs).unwrap()
    }

    #[test]
    fn initial_configuration_shape() {
        let c = init(&[0, 1]);
        assert_eq!(c.num_processes(), 2);
        assert_eq!(c.num_objects(), 1);
        assert_eq!(c.inputs(), &[0, 1]);
        assert_eq!(c.running(), vec![ProcessId(0), ProcessId(1)]);
        assert!(!c.all_decided());
    }

    #[test]
    fn bad_inputs_rejected() {
        let err = Configuration::initial(&TwoProcessSwapConsensus, &[0]).unwrap_err();
        assert!(matches!(err, SimError::BadInputs(_)));
        let err = Configuration::initial(&TwoProcessSwapConsensus, &[0, 99]).unwrap_err();
        assert!(matches!(err, SimError::BadInputs(_)));
    }

    #[test]
    fn first_swapper_decides_own_input() {
        let mut c = init(&[0, 1]);
        let rec = c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert_eq!(rec.decided, Some(0), "p0 sees ⊥ and decides its own input");
        assert_eq!(c.decision(ProcessId(0)), Some(0));
        let rec = c.step(&TwoProcessSwapConsensus, ProcessId(1)).unwrap();
        assert_eq!(rec.decided, Some(0), "p1 receives p0's input from the swap");
        assert!(c.all_decided());
        assert_eq!(c.decided_values().len(), 1);
    }

    #[test]
    fn stepping_decided_process_errors() {
        let mut c = init(&[1, 1]);
        c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        let err = c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap_err();
        assert_eq!(err, SimError::ProcessDecided(ProcessId(0)));
    }

    #[test]
    fn indistinguishability_over_subsets() {
        let a = init(&[0, 1]);
        let mut b = init(&[0, 0]);
        // p0 has the same state (same input 0); p1 differs.
        assert!(a.indistinguishable_to(&b, &[ProcessId(0)]));
        assert!(!a.indistinguishable_to(&b, &[ProcessId(1)]));
        // After p1 steps in b, p0 still cannot distinguish.
        b.step(&TwoProcessSwapConsensus, ProcessId(1)).unwrap();
        assert!(a.indistinguishable_to(&b, &[ProcessId(0)]));
    }

    #[test]
    fn same_object_values_tracks_swaps() {
        let a = init(&[0, 1]);
        let mut b = init(&[0, 1]);
        assert!(a.same_object_values(&b, &[ObjectId(0)]));
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert!(!a.same_object_values(&b, &[ObjectId(0)]));
    }

    #[test]
    fn fingerprints_distinguish_configurations() {
        let a = init(&[0, 1]);
        let mut b = init(&[0, 1]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn poke_object_changes_value() {
        use crate::testing::TwoProcConsensusValue;
        let mut c = init(&[0, 1]);
        c.poke_object(ObjectId(0), TwoProcConsensusValue::Input(1));
        assert_eq!(c.value(ObjectId(0)), &TwoProcConsensusValue::Input(1));
    }

    #[test]
    fn poised_returns_none_after_decision() {
        let mut c = init(&[0, 1]);
        assert!(c.poised(&TwoProcessSwapConsensus, ProcessId(0)).is_some());
        c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert!(c.poised(&TwoProcessSwapConsensus, ProcessId(0)).is_none());
    }
}
