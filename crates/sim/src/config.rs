//! Configurations and steps — the paper's execution model, executable.
//!
//! A configuration consists of a state for every process and a value for
//! every object (Section 2). [`Configuration::step`] applies exactly one
//! step: the scheduled process applies its poised operation to an object,
//! obtains the response determined by the object's current value, performs
//! its local computation, and either continues or decides.
//!
//! # Copy-on-write representation
//!
//! The exhaustive searches (the model checker, the valency oracle, the
//! Section 5 adversaries) clone configurations at every explored node, then
//! mutate only a fraction of them. Object and process storage is therefore
//! [`Arc`]-backed: [`Configuration::clone`] is three refcount bumps, and
//! [`Configuration::step`] / [`Configuration::poke_object`] copy the
//! affected vector only when it is actually shared ([`Arc::make_mut`]).
//! Observable behaviour is identical to deep cloning — the copy-on-write
//! property tests replay every lineage from scratch to prove it.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use swapcons_objects::{HistorylessOp, ObjectOp, ObjectSchema, Response, SchemaError};

use crate::history::StepRecord;
use crate::ids::{Action, ObjectId, ProcessId};
use crate::protocol::{Protocol, SimValue, Transition};

/// Status of one process within a configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProcStatus<S> {
    /// Still participating; holds the local state.
    Running(S),
    /// Terminated with a decision. Decided processes take no further steps.
    Decided(u64),
    /// Crashed: permanently stopped without deciding (Section 2's crash
    /// failures — to every other process, indistinguishable from being
    /// infinitely slow). The local state is dropped: no other process can
    /// ever observe it, so configurations differing only in a crashed
    /// process's final local state are identified, which both matches the
    /// model and shrinks the explored crash state space.
    Crashed,
}

impl<S> ProcStatus<S> {
    /// The local state, if still running.
    pub fn state(&self) -> Option<&S> {
        match self {
            ProcStatus::Running(s) => Some(s),
            ProcStatus::Decided(_) | ProcStatus::Crashed => None,
        }
    }

    /// The decision, if decided.
    pub fn decision(&self) -> Option<u64> {
        match self {
            ProcStatus::Running(_) | ProcStatus::Crashed => None,
            ProcStatus::Decided(v) => Some(*v),
        }
    }

    /// Whether the process has crashed.
    pub fn is_crashed(&self) -> bool {
        matches!(self, ProcStatus::Crashed)
    }
}

/// A reachable configuration of a protocol: object values, process statuses,
/// and the inputs that produced the initial configuration (kept for validity
/// checking).
pub struct Configuration<P: Protocol> {
    // `Arc<[T]>` rather than `Arc<Vec<T>>`: the control block and the
    // elements live in ONE allocation, so a copy-on-write detach is a single
    // malloc + memcpy per vector instead of two.
    objects: Arc<[P::Value]>,
    procs: Arc<[ProcStatus<P::State>]>,
    inputs: Arc<[u64]>,
}

/// Copy-on-write access: detach (one allocation) only if `arc` is shared.
fn cow_slice<T: Clone>(arc: &mut Arc<[T]>) -> &mut [T] {
    if Arc::get_mut(arc).is_none() {
        *arc = arc.iter().cloned().collect();
    }
    Arc::get_mut(arc).expect("uniquely owned after detach")
}

/// Overwrite `dst` with `src`'s elements, reusing `dst`'s allocation when it
/// is uniquely owned and the right length; falls back to sharing `src`.
fn clone_slice_from<T: Clone>(dst: &mut Arc<[T]>, src: &Arc<[T]>) {
    if Arc::ptr_eq(dst, src) {
        return;
    }
    match Arc::get_mut(dst) {
        Some(slice) if slice.len() == src.len() => {
            for (d, s) in slice.iter_mut().zip(src.iter()) {
                d.clone_from(s);
            }
        }
        _ => *dst = Arc::clone(src),
    }
}

// Manual impls: the derive would demand `P: Clone`/`P: Hash` etc., but only
// `P::Value` and `P::State` appear in fields, and the `Protocol` trait
// already requires Clone + Eq + Hash of both. Clone is the copy-on-write
// fast path: no object or process state is copied until a mutation hits a
// shared vector.
impl<P: Protocol> Clone for Configuration<P> {
    fn clone(&self) -> Self {
        Configuration {
            objects: Arc::clone(&self.objects),
            procs: Arc::clone(&self.procs),
            inputs: Arc::clone(&self.inputs),
        }
    }
}

impl<P: Protocol> PartialEq for Configuration<P> {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality short-circuits content comparison for clones that
        // have not diverged (the common case in visited sets).
        (Arc::ptr_eq(&self.objects, &other.objects) || self.objects == other.objects)
            && (Arc::ptr_eq(&self.procs, &other.procs) || self.procs == other.procs)
            && (Arc::ptr_eq(&self.inputs, &other.inputs) || self.inputs == other.inputs)
    }
}

impl<P: Protocol> Eq for Configuration<P> {}

impl<P: Protocol> std::hash::Hash for Configuration<P> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.objects.hash(state);
        self.procs.hash(state);
        self.inputs.hash(state);
    }
}

impl<P: Protocol> Configuration<P> {
    /// The initial configuration for the given per-process inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadInputs`] if the input vector violates the
    /// protocol's task (wrong length or out-of-range input), or a schema
    /// error if an initial object value violates its declared domain.
    pub fn initial(protocol: &P, inputs: &[u64]) -> Result<Self, SimError> {
        protocol
            .task()
            .check_inputs(inputs)
            .map_err(|v| SimError::BadInputs(v.to_string()))?;
        let schemas = protocol.schemas();
        let mut objects = Vec::with_capacity(schemas.len());
        for (i, schema) in schemas.iter().enumerate() {
            let value = protocol.initial_value(ObjectId(i));
            check_domain(schema, &value).map_err(|e| SimError::Schema {
                process: None,
                object: ObjectId(i),
                error: e,
            })?;
            objects.push(value);
        }
        let procs = inputs
            .iter()
            .enumerate()
            .map(
                |(i, &input)| match protocol.initial_decision(ProcessId(i), input) {
                    Some(v) => ProcStatus::Decided(v),
                    None => ProcStatus::Running(protocol.initial_state(ProcessId(i), input)),
                },
            )
            .collect();
        Ok(Configuration {
            objects: objects.into(),
            procs,
            inputs: inputs.into(),
        })
    }

    /// Assemble a configuration from raw parts — crate-internal, used by the
    /// canonicalization layer to materialize renamed twins.
    pub(crate) fn from_parts(
        objects: Vec<P::Value>,
        procs: Vec<ProcStatus<P::State>>,
        inputs: Arc<[u64]>,
    ) -> Self {
        Configuration {
            objects: objects.into(),
            procs: procs.into(),
            inputs,
        }
    }

    /// The shared input-vector storage (crate-internal; renamed twins alias
    /// it, since every admitted renaming stabilizes the inputs).
    pub(crate) fn inputs_handle(&self) -> &Arc<[u64]> {
        &self.inputs
    }

    /// The shared object-vector storage (crate-internal; the solo-outcome
    /// memo keys on it without copying any values).
    pub(crate) fn objects_handle(&self) -> &Arc<[P::Value]> {
        &self.objects
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// Number of shared objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// The inputs this run started from.
    pub fn inputs(&self) -> &[u64] {
        &self.inputs
    }

    /// The value of object `obj` — the paper's `value(B, C)`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn value(&self, obj: ObjectId) -> &P::Value {
        &self.objects[obj.index()]
    }

    /// All object values, indexed by object id.
    pub fn object_values(&self) -> &[P::Value] {
        &self.objects
    }

    /// The status of process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn status(&self, pid: ProcessId) -> &ProcStatus<P::State> {
        &self.procs[pid.index()]
    }

    /// The local state of `pid`, if running.
    pub fn state(&self, pid: ProcessId) -> Option<&P::State> {
        self.status(pid).state()
    }

    /// The decision of `pid`, if decided.
    pub fn decision(&self, pid: ProcessId) -> Option<u64> {
        self.status(pid).decision()
    }

    /// Decisions of all processes, indexed by process id.
    pub fn decisions(&self) -> Vec<Option<u64>> {
        self.procs.iter().map(|s| s.decision()).collect()
    }

    /// The set of distinct decided values.
    pub fn decided_values(&self) -> HashSet<u64> {
        self.procs.iter().filter_map(|s| s.decision()).collect()
    }

    /// Ids of processes that have not yet decided.
    pub fn running(&self) -> Vec<ProcessId> {
        let mut ids = Vec::new();
        self.running_into(&mut ids);
        ids
    }

    /// Fill `buf` with the ids of processes that have not yet decided —
    /// the allocation-free form of [`Configuration::running`] for callers
    /// (runners, the model checker) that query it every step and can reuse a
    /// scratch buffer. `buf` is cleared first.
    pub fn running_into(&self, buf: &mut Vec<ProcessId>) {
        buf.clear();
        buf.extend(
            self.procs
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, ProcStatus::Running(_)))
                .map(|(i, _)| ProcessId(i)),
        );
    }

    /// Fill `buf` with one [`Action::Step`] per running process — the
    /// allocation-free candidate enumeration the engine's default expansion
    /// strategy uses. `buf` is cleared first.
    pub fn running_actions_into(&self, buf: &mut Vec<Action>) {
        buf.clear();
        buf.extend(
            self.procs
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, ProcStatus::Running(_)))
                .map(|(i, _)| Action::Step(ProcessId(i))),
        );
    }

    /// Decisions of all processes as a non-allocating iterator — pair with
    /// [`crate::task::KSetTask::check_decisions`] on hot paths.
    pub fn decisions_iter(&self) -> impl Iterator<Item = Option<u64>> + Clone + '_ {
        self.procs.iter().map(|s| s.decision())
    }

    /// Whether every process has decided.
    pub fn all_decided(&self) -> bool {
        self.procs
            .iter()
            .all(|s| matches!(s, ProcStatus::Decided(_)))
    }

    /// Whether process `pid` has crashed.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].is_crashed()
    }

    /// Number of crashed processes — the failure count a crash-bounded
    /// exploration budgets against.
    pub fn num_crashed(&self) -> usize {
        self.procs.iter().filter(|s| s.is_crashed()).count()
    }

    /// Ids of crashed processes, in id order.
    pub fn crashed(&self) -> Vec<ProcessId> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_crashed())
            .map(|(i, _)| ProcessId(i))
            .collect()
    }

    /// Crash process `pid`: it permanently stops without deciding, and its
    /// local state is dropped (see [`ProcStatus::Crashed`]). Returns an undo
    /// token restoring the pre-crash status, mirroring
    /// [`Configuration::step_quiet_undoable`] so exploration engines treat
    /// crash transitions with the same delta-restore discipline as steps.
    ///
    /// # Errors
    ///
    /// * [`SimError::ProcessDecided`] if `pid` has already decided (a
    ///   decision is final; crashing afterwards changes nothing in the
    ///   model);
    /// * [`SimError::ProcessCrashed`] if `pid` has already crashed.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn crash(&mut self, pid: ProcessId) -> Result<StepUndo<P>, SimError> {
        match &self.procs[pid.index()] {
            ProcStatus::Running(_) => {}
            ProcStatus::Decided(_) => return Err(SimError::ProcessDecided(pid)),
            ProcStatus::Crashed => return Err(SimError::ProcessCrashed(pid)),
        }
        let procs = cow_slice(&mut self.procs);
        let prior = std::mem::replace(&mut procs[pid.index()], ProcStatus::Crashed);
        Ok(StepUndo {
            object: None,
            process: (pid, prior),
        })
    }

    /// The operation process `pid` is poised to apply (Section 2), or `None`
    /// if it has decided.
    pub fn poised(
        &self,
        protocol: &P,
        pid: ProcessId,
    ) -> Option<(ObjectId, ObjectOp<P::Value>)> {
        self.state(pid).map(|s| protocol.poised(s))
    }

    /// Apply one step by `pid`, mutating the configuration and returning a
    /// record of the step.
    ///
    /// # Errors
    ///
    /// * [`SimError::ProcessDecided`] if `pid` has already decided;
    /// * [`SimError::Schema`] if the poised operation violates the target
    ///   object's schema (wrong operation kind or out-of-domain value) —
    ///   this indicates a bug in the protocol under test, and the
    ///   configuration is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range, or if the protocol's poised
    /// operation targets an out-of-range object (both are protocol bugs).
    pub fn step(&mut self, protocol: &P, pid: ProcessId) -> Result<StepRecord<P::Value>, SimError> {
        let (obj, op) = self.validated_poised(protocol, pid)?;
        // Apply phase. The record keeps the operation, so the payload is
        // cloned into the object via the cloned op; the quiet paths below
        // move it instead.
        let (response, _) = self.apply_op(obj, op.clone(), false);
        let decided = self.absorb(protocol, pid, response.clone());
        Ok(StepRecord {
            pid,
            object: obj,
            op,
            response,
            decided,
        })
    }

    /// Apply `op` to the slot of `obj` — the one authoritative
    /// implementation of every [`ObjectOp`] kind's semantics in the
    /// simulator. The payload is *moved* into the object and, for a swap,
    /// the displaced value is *moved* into the response (zero value clones
    /// on the hot path). With `save_prior` set, a mutated slot's displaced
    /// value is additionally cloned and returned for delta-undo; operations
    /// that left the slot untouched (reads, lost test-and-sets, max-writes
    /// at or below the current value) return `None` — nothing to restore.
    ///
    /// # Panics
    ///
    /// Panics when a `MaxWrite`'s comparison is undefined because either
    /// side lacks a domain point — max registers hold integer-pointed
    /// values by construction, so this is a protocol bug.
    fn apply_op(
        &mut self,
        obj: ObjectId,
        op: ObjectOp<P::Value>,
        save_prior: bool,
    ) -> (Response<P::Value>, Option<(ObjectId, P::Value)>) {
        match op {
            ObjectOp::Historyless(HistorylessOp::Read) => (
                Response::to_read(self.objects[obj.index()].clone()),
                None,
            ),
            ObjectOp::MaxRead => (
                Response::to_max_read(self.objects[obj.index()].clone()),
                None,
            ),
            ObjectOp::Historyless(HistorylessOp::Write(next)) => {
                let prev = std::mem::replace(&mut cow_slice(&mut self.objects)[obj.index()], next);
                (Response::to_write(), save_prior.then(|| (obj, prev)))
            }
            ObjectOp::Historyless(HistorylessOp::Swap(next)) => {
                let prev = std::mem::replace(&mut cow_slice(&mut self.objects)[obj.index()], next);
                let saved = save_prior.then(|| (obj, prev.clone()));
                (Response::to_swap(prev), saved)
            }
            ObjectOp::TestAndSet(next) => {
                if self.objects[obj.index()].domain_point() == Some(0) {
                    let prev =
                        std::mem::replace(&mut cow_slice(&mut self.objects)[obj.index()], next);
                    (
                        Response::to_test_and_set(true),
                        save_prior.then(|| (obj, prev)),
                    )
                } else {
                    (Response::to_test_and_set(false), None)
                }
            }
            ObjectOp::MaxWrite(next) => {
                let current = self.objects[obj.index()]
                    .domain_point()
                    .expect("max register holds a composite value with no domain point");
                let offered = next
                    .domain_point()
                    .expect("max-write payload has no domain point");
                if offered > current {
                    let prev =
                        std::mem::replace(&mut cow_slice(&mut self.objects)[obj.index()], next);
                    (Response::to_max_write(), save_prior.then(|| (obj, prev)))
                } else {
                    (Response::to_max_write(), None)
                }
            }
        }
    }

    /// Validation phase shared by [`Configuration::step`] and
    /// [`Configuration::step_quiet`]: resolve the poised operation and check
    /// it against the target object's schema. Mutates nothing, so schema
    /// rejections leave the configuration untouched.
    fn validated_poised(
        &self,
        protocol: &P,
        pid: ProcessId,
    ) -> Result<(ObjectId, ObjectOp<P::Value>), SimError> {
        let state = match &self.procs[pid.index()] {
            ProcStatus::Running(s) => s,
            ProcStatus::Decided(_) => return Err(SimError::ProcessDecided(pid)),
            ProcStatus::Crashed => return Err(SimError::ProcessCrashed(pid)),
        };
        let (obj, op) = protocol.poised(state);
        assert!(
            obj.index() < self.objects.len(),
            "{pid:?} poised on out-of-range object {obj:?}"
        );
        let schema = protocol.schema(obj);
        schema
            .check_op_kind(op.kind())
            .map_err(|e| SimError::Schema {
                process: Some(pid),
                object: obj,
                error: e,
            })?;
        if let Some(payload) = op.payload() {
            check_domain(&schema, payload).map_err(|e| SimError::Schema {
                process: Some(pid),
                object: obj,
                error: e,
            })?;
        }
        Ok((obj, op))
    }

    /// Apply-phase tail shared by [`Configuration::step`] and
    /// [`Configuration::step_quiet`]: move `pid`'s state out of its
    /// (copy-on-write-detached) slot instead of cloning it for `observe`,
    /// store the successor status, and return the decision, if any.
    fn absorb(
        &mut self,
        protocol: &P,
        pid: ProcessId,
        response: Response<P::Value>,
    ) -> Option<u64> {
        let procs = cow_slice(&mut self.procs);
        let state = match std::mem::replace(&mut procs[pid.index()], ProcStatus::Decided(0)) {
            ProcStatus::Running(s) => s,
            ProcStatus::Decided(_) | ProcStatus::Crashed => {
                unreachable!("validated_poised checked Running")
            }
        };
        match protocol.observe(state, response) {
            Transition::Continue(next_state) => {
                procs[pid.index()] = ProcStatus::Running(next_state);
                None
            }
            Transition::Decide(v) => {
                procs[pid.index()] = ProcStatus::Decided(v);
                Some(v)
            }
        }
    }

    /// [`Configuration::step`] without the record: applies the step and
    /// returns only the decision it produced (if any).
    ///
    /// The exploration engines and solo runners discard the [`StepRecord`],
    /// so this path also skips the copies that exist only to populate it:
    /// the operation payload is *moved* into the object and the displaced
    /// value is *moved* into the response handed to `observe` — zero value
    /// clones on a swap step.
    ///
    /// # Errors
    ///
    /// Identical to [`Configuration::step`].
    ///
    /// # Panics
    ///
    /// Identical to [`Configuration::step`].
    pub fn step_quiet(&mut self, protocol: &P, pid: ProcessId) -> Result<Option<u64>, SimError> {
        let (obj, op) = self.validated_poised(protocol, pid)?;
        let (response, _) = self.apply_op(obj, op, false);
        Ok(self.absorb(protocol, pid, response))
    }

    /// [`Configuration::step_quiet`] plus an undo token: the returned
    /// [`StepUndo`] restores exactly the (at most) two mutated slots — the
    /// target object and the stepping process — via
    /// [`Configuration::undo_step`].
    ///
    /// This is the delta-restore pattern for the exploration engines'
    /// candidate-child loops: a child that turns out to be a duplicate is
    /// rolled back in `O(1)` element writes instead of re-copying the whole
    /// scratch state from the parent. Costs two extra small clones (the
    /// displaced object value and the pre-step process status) relative to
    /// `step_quiet`.
    ///
    /// # Errors
    ///
    /// Identical to [`Configuration::step`].
    ///
    /// # Panics
    ///
    /// Identical to [`Configuration::step`].
    pub fn step_quiet_undoable(
        &mut self,
        protocol: &P,
        pid: ProcessId,
    ) -> Result<(Option<u64>, StepUndo<P>), SimError> {
        let (obj, op) = self.validated_poised(protocol, pid)?;
        let prior_status = self.procs[pid.index()].clone();
        let (response, prior_object) = self.apply_op(obj, op, true);
        let decided = self.absorb(protocol, pid, response);
        Ok((
            decided,
            StepUndo {
                object: prior_object,
                process: (pid, prior_status),
            },
        ))
    }

    /// Roll back a step recorded by [`Configuration::step_quiet_undoable`].
    /// Only valid on the configuration that produced the token, with no
    /// intervening mutation.
    pub fn undo_step(&mut self, undo: StepUndo<P>) {
        if let Some((obj, value)) = undo.object {
            cow_slice(&mut self.objects)[obj.index()] = value;
        }
        let (pid, status) = undo.process;
        cow_slice(&mut self.procs)[pid.index()] = status;
    }

    /// Whether this configuration is indistinguishable from `other` to every
    /// process in `pids` — the paper's `C1 ~P C2` (equal local states; note
    /// that indistinguishability of *configurations* constrains only process
    /// states, not object values).
    pub fn indistinguishable_to(&self, other: &Self, pids: &[ProcessId]) -> bool {
        pids.iter()
            .all(|&p| self.procs[p.index()] == other.procs[p.index()])
    }

    /// Whether the objects in `objs` hold the same values in `self` and
    /// `other` — the precondition for extending indistinguishable
    /// configurations by executions that access only those objects.
    pub fn same_object_values(&self, other: &Self, objs: &[ObjectId]) -> bool {
        objs.iter()
            .all(|&o| self.objects[o.index()] == other.objects[o.index()])
    }

    /// A compact fingerprint of the configuration (object values + process
    /// statuses), used by the exploration engines' visited sets. Computed
    /// with FxHash — fast and deterministic, but *not* injective;
    /// [`crate::search::VisitedSet`] layers an exact-state fallback on top.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = fxhash::FxHasher::default();
        self.objects.hash(&mut h);
        self.procs.hash(&mut h);
        h.finish()
    }

    /// Overwrite the value of an object. **System-level** operation used by
    /// adversary constructions to build hypothetical configurations; not
    /// reachable by any process step.
    pub fn poke_object(&mut self, obj: ObjectId, value: P::Value) {
        cow_slice(&mut self.objects)[obj.index()] = value;
    }

    /// Make this configuration's state equal to `other`'s, reusing this
    /// configuration's storage when it is uniquely owned (no allocation).
    ///
    /// This is the scratch-buffer pattern for hot loops that repeatedly run
    /// hypothetical executions from many base configurations (the model
    /// checker's solo-termination check): resetting a scratch configuration
    /// costs element copies only, and the subsequent in-place mutations
    /// never trigger a copy-on-write detach.
    pub fn clone_state_from(&mut self, other: &Self) {
        clone_slice_from(&mut self.objects, &other.objects);
        clone_slice_from(&mut self.procs, &other.procs);
        if !Arc::ptr_eq(&self.inputs, &other.inputs) {
            self.inputs = Arc::clone(&other.inputs);
        }
    }

    /// Whether `self` and `other` share the same physical object storage —
    /// i.e. neither side has mutated since one was cloned from the other.
    /// Diagnostic hook for the copy-on-write tests; `true` implies (but is
    /// not implied by) equal object values.
    pub fn shares_object_storage(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.objects, &other.objects)
    }

    /// [`Configuration::shares_object_storage`], for the process-status
    /// vector.
    pub fn shares_process_storage(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.procs, &other.procs)
    }
}

impl<P: Protocol> fmt::Debug for Configuration<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Configuration")
            .field("objects", &self.objects)
            .field("procs", &self.procs)
            .finish()
    }
}

fn check_domain<V: SimValue>(schema: &ObjectSchema, value: &V) -> Result<(), SchemaError> {
    schema.check_domain_point(value.domain_point())
}

/// Undo token for one step, produced by
/// [`Configuration::step_quiet_undoable`]: the pre-step contents of the (at
/// most) two slots the step mutated.
pub struct StepUndo<P: Protocol> {
    /// The target object's displaced value (`None` for a trivial operation,
    /// which changes no object).
    object: Option<(ObjectId, P::Value)>,
    /// The stepping process's pre-step status.
    process: (ProcessId, ProcStatus<P::State>),
}

impl<P: Protocol> fmt::Debug for StepUndo<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepUndo")
            .field("object", &self.object)
            .field("process", &self.process)
            .finish()
    }
}

/// Errors produced by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The inputs passed to [`Configuration::initial`] violate the task.
    BadInputs(String),
    /// A decided process was scheduled.
    ProcessDecided(ProcessId),
    /// A crashed process was scheduled (or crashed a second time).
    ProcessCrashed(ProcessId),
    /// The protocol's `step` code panicked. Produced only by engines that
    /// isolate protocol panics ([`crate::engine::Engine`]); the panicking
    /// child configuration is discarded as poisoned, never explored.
    Panicked {
        /// The stepping process whose transition panicked.
        process: ProcessId,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// An operation violated an object's schema.
    Schema {
        /// The stepping process (`None` during initialization).
        process: Option<ProcessId>,
        /// The target object.
        object: ObjectId,
        /// The underlying schema error.
        error: SchemaError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadInputs(msg) => write!(f, "bad inputs: {msg}"),
            SimError::ProcessDecided(p) => write!(f, "{p} has already decided"),
            SimError::ProcessCrashed(p) => write!(f, "{p} has crashed"),
            SimError::Panicked { process, message } => {
                write!(f, "protocol step for {process} panicked: {message}")
            }
            SimError::Schema {
                process,
                object,
                error,
            } => match process {
                Some(p) => write!(f, "{p} violated schema of {object}: {error}"),
                None => write!(f, "initial value of {object} violates schema: {error}"),
            },
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TwoProcessSwapConsensus;

    fn init(inputs: &[u64]) -> Configuration<TwoProcessSwapConsensus> {
        Configuration::initial(&TwoProcessSwapConsensus, inputs).unwrap()
    }

    /// The sharded engine moves configurations between workers and shares
    /// them behind stripe locks, so the `Arc<[T]>` copy-on-write fields must
    /// be `Send + Sync` whenever the protocol's associated types are — which
    /// the `Protocol`/`SimValue` supertraits now guarantee for every
    /// protocol. Compile-time pin; no runtime body needed.
    #[test]
    fn configurations_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Configuration<TwoProcessSwapConsensus>>();
        assert_send_sync::<SimError>();
    }

    #[test]
    fn initial_configuration_shape() {
        let c = init(&[0, 1]);
        assert_eq!(c.num_processes(), 2);
        assert_eq!(c.num_objects(), 1);
        assert_eq!(c.inputs(), &[0, 1]);
        assert_eq!(c.running(), vec![ProcessId(0), ProcessId(1)]);
        assert!(!c.all_decided());
    }

    #[test]
    fn bad_inputs_rejected() {
        let err = Configuration::initial(&TwoProcessSwapConsensus, &[0]).unwrap_err();
        assert!(matches!(err, SimError::BadInputs(_)));
        let err = Configuration::initial(&TwoProcessSwapConsensus, &[0, 99]).unwrap_err();
        assert!(matches!(err, SimError::BadInputs(_)));
    }

    #[test]
    fn first_swapper_decides_own_input() {
        let mut c = init(&[0, 1]);
        let rec = c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert_eq!(rec.decided, Some(0), "p0 sees ⊥ and decides its own input");
        assert_eq!(c.decision(ProcessId(0)), Some(0));
        let rec = c.step(&TwoProcessSwapConsensus, ProcessId(1)).unwrap();
        assert_eq!(rec.decided, Some(0), "p1 receives p0's input from the swap");
        assert!(c.all_decided());
        assert_eq!(c.decided_values().len(), 1);
    }

    #[test]
    fn stepping_decided_process_errors() {
        let mut c = init(&[1, 1]);
        c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        let err = c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap_err();
        assert_eq!(err, SimError::ProcessDecided(ProcessId(0)));
    }

    #[test]
    fn indistinguishability_over_subsets() {
        let a = init(&[0, 1]);
        let mut b = init(&[0, 0]);
        // p0 has the same state (same input 0); p1 differs.
        assert!(a.indistinguishable_to(&b, &[ProcessId(0)]));
        assert!(!a.indistinguishable_to(&b, &[ProcessId(1)]));
        // After p1 steps in b, p0 still cannot distinguish.
        b.step(&TwoProcessSwapConsensus, ProcessId(1)).unwrap();
        assert!(a.indistinguishable_to(&b, &[ProcessId(0)]));
    }

    #[test]
    fn same_object_values_tracks_swaps() {
        let a = init(&[0, 1]);
        let mut b = init(&[0, 1]);
        assert!(a.same_object_values(&b, &[ObjectId(0)]));
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert!(!a.same_object_values(&b, &[ObjectId(0)]));
    }

    #[test]
    fn fingerprints_distinguish_configurations() {
        let a = init(&[0, 1]);
        let mut b = init(&[0, 1]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn poke_object_changes_value() {
        use crate::testing::TwoProcConsensusValue;
        let mut c = init(&[0, 1]);
        c.poke_object(ObjectId(0), TwoProcConsensusValue::Input(1));
        assert_eq!(c.value(ObjectId(0)), &TwoProcConsensusValue::Input(1));
    }

    #[test]
    fn clone_is_copy_on_write_not_deep() {
        // The acceptance test for the CoW representation: cloning bumps
        // refcounts and copies no object or process state.
        let a = init(&[0, 1]);
        let b = a.clone();
        assert!(
            a.shares_object_storage(&b),
            "clone must alias object storage"
        );
        assert!(
            a.shares_process_storage(&b),
            "clone must alias process storage"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn step_unshares_only_what_it_mutates() {
        let a = init(&[0, 1]);
        let mut b = a.clone();
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        // The step wrote an object and a process status: both vectors must
        // have been unshared, and the original must be untouched.
        assert!(!a.shares_object_storage(&b));
        assert!(!a.shares_process_storage(&b));
        assert_eq!(a.decision(ProcessId(0)), None, "original unaffected");
        assert_eq!(b.decision(ProcessId(0)), Some(0));
        // Further steps on the now-unique clone keep storage unique without
        // copying again (make_mut fast path) — behaviourally: still correct.
        b.step(&TwoProcessSwapConsensus, ProcessId(1)).unwrap();
        assert!(b.all_decided());
        assert!(!a.all_decided());
    }

    #[test]
    fn poke_object_is_copy_on_write() {
        use crate::testing::TwoProcConsensusValue;
        let a = init(&[0, 1]);
        let mut b = a.clone();
        b.poke_object(ObjectId(0), TwoProcConsensusValue::Input(9));
        assert!(!a.shares_object_storage(&b));
        assert!(
            a.shares_process_storage(&b),
            "poke touches no process state"
        );
        assert_eq!(a.value(ObjectId(0)), &TwoProcConsensusValue::Bot);
        assert_eq!(b.value(ObjectId(0)), &TwoProcConsensusValue::Input(9));
    }

    #[test]
    fn equality_survives_divergent_storage() {
        // Two configurations reached by different histories but with equal
        // content must compare equal even though no storage is shared.
        let mut a = init(&[1, 1]);
        let mut b = init(&[1, 1]);
        a.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert!(!a.shares_object_storage(&b));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn running_into_reuses_buffer() {
        let mut c = init(&[0, 1]);
        let mut buf = vec![ProcessId(99)]; // stale content must be cleared
        c.running_into(&mut buf);
        assert_eq!(buf, vec![ProcessId(0), ProcessId(1)]);
        c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        c.running_into(&mut buf);
        assert_eq!(buf, vec![ProcessId(1)]);
        assert_eq!(c.running(), buf, "running() and running_into agree");
    }

    #[test]
    fn decisions_iter_matches_decisions() {
        let mut c = init(&[0, 1]);
        c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert_eq!(c.decisions_iter().collect::<Vec<_>>(), c.decisions());
    }

    #[test]
    fn undo_step_restores_the_exact_state() {
        let reference = init(&[0, 1]);
        let mut c = reference.clone();
        // Detach from the reference first so the undo path exercises the
        // in-place element restore, not a copy-on-write detach.
        let (decided, undo) = c
            .step_quiet_undoable(&TwoProcessSwapConsensus, ProcessId(0))
            .unwrap();
        assert_eq!(decided, Some(0));
        assert_ne!(c, reference);
        c.undo_step(undo);
        assert_eq!(c, reference, "undo restores the pre-step configuration");
        assert_eq!(c.fingerprint(), reference.fingerprint());
        // The restored configuration steps exactly like a fresh one.
        let rec = c.step(&TwoProcessSwapConsensus, ProcessId(1)).unwrap();
        assert_eq!(rec.decided, Some(1));
    }

    #[test]
    fn undo_step_on_shared_storage_detaches_correctly() {
        let mut c = init(&[0, 1]);
        let (_, undo) = c
            .step_quiet_undoable(&TwoProcessSwapConsensus, ProcessId(0))
            .unwrap();
        // Share the stepped state (as the explorer does when it keeps a
        // child), then undo: the clone must keep the stepped state while the
        // original rolls back.
        let kept = c.clone();
        c.undo_step(undo);
        assert_eq!(c, init(&[0, 1]));
        assert_eq!(
            kept.decision(ProcessId(0)),
            Some(0),
            "kept child unaffected"
        );
    }

    #[test]
    fn poised_returns_none_after_decision() {
        let mut c = init(&[0, 1]);
        assert!(c.poised(&TwoProcessSwapConsensus, ProcessId(0)).is_some());
        c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert!(c.poised(&TwoProcessSwapConsensus, ProcessId(0)).is_none());
    }

    #[test]
    fn crash_drops_state_and_stops_the_process() {
        let mut c = init(&[0, 1]);
        c.crash(ProcessId(0)).unwrap();
        assert!(c.is_crashed(ProcessId(0)));
        assert_eq!(c.num_crashed(), 1);
        assert_eq!(c.crashed(), vec![ProcessId(0)]);
        assert_eq!(c.state(ProcessId(0)), None);
        assert_eq!(c.decision(ProcessId(0)), None);
        assert_eq!(c.running(), vec![ProcessId(1)], "crashed is not running");
        assert!(!c.all_decided());
        // A crashed process cannot step or crash again.
        assert_eq!(
            c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap_err(),
            SimError::ProcessCrashed(ProcessId(0))
        );
        assert_eq!(
            c.crash(ProcessId(0)).unwrap_err(),
            SimError::ProcessCrashed(ProcessId(0))
        );
        // The survivor still decides (its peer is just infinitely slow).
        let rec = c.step(&TwoProcessSwapConsensus, ProcessId(1)).unwrap();
        assert_eq!(rec.decided, Some(1));
    }

    #[test]
    fn crash_of_decided_process_is_rejected() {
        let mut c = init(&[0, 1]);
        c.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert_eq!(
            c.crash(ProcessId(0)).unwrap_err(),
            SimError::ProcessDecided(ProcessId(0))
        );
    }

    #[test]
    fn crash_undo_restores_the_exact_state() {
        let reference = init(&[0, 1]);
        let mut c = reference.clone();
        let undo = c.crash(ProcessId(1)).unwrap();
        assert_ne!(c, reference);
        assert_ne!(c.fingerprint(), reference.fingerprint());
        c.undo_step(undo);
        assert_eq!(c, reference, "undo restores the pre-crash configuration");
        assert_eq!(c.fingerprint(), reference.fingerprint());
    }

    #[test]
    fn crash_is_copy_on_write() {
        let a = init(&[0, 1]);
        let mut b = a.clone();
        b.crash(ProcessId(0)).unwrap();
        assert!(!a.shares_process_storage(&b));
        assert!(a.shares_object_storage(&b), "crash touches no object");
        assert!(!a.is_crashed(ProcessId(0)), "original unaffected");
    }

    #[test]
    fn crashed_configurations_with_different_histories_are_identified() {
        // The state-dropping design: crashing p0 before or after its swap
        // leads to configurations that differ only in the object — and two
        // pre-swap crash orders are literally equal.
        let mut a = init(&[0, 1]);
        let mut b = init(&[0, 1]);
        a.crash(ProcessId(0)).unwrap();
        b.crash(ProcessId(0)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
