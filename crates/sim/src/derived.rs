//! Layered protocols: flattening derived objects onto their base-object
//! implementations.
//!
//! The paper's space bounds price the **base objects** a protocol actually
//! consumes. [`LayeredProtocol`] makes that accounting honest for protocols
//! written against *derived* objects (see
//! [`swapcons_objects::derived`]): it wraps an inner protocol together with
//! an [`ObjectProgram`] per high-level object and presents the engine,
//! checker, and canonicalization layers with the **flattened base-object
//! set** — every simulated step is a base-object step, every schema the
//! engine validates is a base schema, and [`Protocol::num_objects`] counts
//! base objects, never the derived facade.
//!
//! A process of the layered protocol is the inner process plus an optional
//! **frame**: the program counter of the derived operation it is currently
//! mid-flight in. When the frame is empty, the process's next poised base
//! operation is obtained by compiling the inner protocol's poised high-level
//! operation (deterministically, so [`Protocol::poised`] remains a pure
//! function); when the frame is live, the process resumes the program where
//! it left off. Interleavings of *base* steps across processes are exactly
//! the executions the derived construction must survive — which is what the
//! linearizability gate below model-checks.
//!
//! # The linearizability gate
//!
//! [`SwapScripts`] is a harness protocol: each process runs a fixed script
//! of high-level swap/read operations against a single one-bit swap object
//! and decides an integer encoding its response sequence. Exploring *all*
//! interleavings with the engine and collecting the terminal decision
//! profiles ([`swap_outcome_profiles`]) yields the complete set of
//! observable outcome profiles of the object implementation. The gate then
//! checks, for the derived implementation
//! ([`swapcons_objects::AspnesOneBitSwap`] under [`LayeredProtocol`]):
//!
//! * every derived profile is **chain-consistent** — the operations
//!   linearize as a swap chain ([`chain_consistent`], reads modeled as
//!   identity edges `r → r`); and
//! * the derived profile set is a **subset of the native profile set** (the
//!   same scripts over an atomic one-bit swap object). Native profiles are
//!   exactly the outcomes an atomic swap admits under program-order
//!   respecting interleavings, so the inclusion is linearizability against
//!   the concurrent specification, not merely value conservation.

use std::collections::BTreeSet;

use swapcons_objects::linearize::{chain_consistent, SwapOp};
use swapcons_objects::{
    AspnesOneBitSwap, HistorylessOp, ObjectOp, ObjectProgram, ObjectSchema, ProgramStep, Response,
};

use crate::canon::{Renaming, Symmetry};
use crate::config::Configuration;
use crate::engine::{AllRunning, Budget, Control, Engine, Lifo, NodeCtx, Visitor};
use crate::ids::{Action, ObjectId, ProcessId};
use crate::protocol::{Protocol, Transition};
use crate::canon::DedupSet;
use crate::search::ScheduleArena;
use crate::task::KSetTask;

/// A protocol over derived objects, flattened onto the base-object set.
///
/// Each high-level object of the inner protocol is either **derived**
/// (backed by an [`ObjectProgram`], occupying a contiguous range of base
/// slots) or **native** (passed through unchanged, occupying one slot).
/// The flattened layout concatenates the per-object ranges in object order.
///
/// The inner protocol's value type must be `u64` — derived base objects
/// hold integer domain points, and the two kinds share one object array.
#[derive(Clone, Debug)]
pub struct LayeredProtocol<P, G> {
    inner: P,
    /// One entry per inner object: the implementing program, or `None` for
    /// a native pass-through slot.
    programs: Vec<Option<G>>,
    /// `base_start[h]` is the first flattened slot of inner object `h`;
    /// the last entry is the total base-object count.
    base_start: Vec<usize>,
}

/// State of a layered process: the inner state plus the in-flight derived
/// operation's program counter (`None` between high-level operations).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LayeredState<S, Pc> {
    /// The inner protocol's process state.
    pub inner: S,
    /// `(inner object index, program counter)` of the derived operation in
    /// progress, if any.
    pub frame: Option<(usize, Pc)>,
}

impl<P, G> LayeredProtocol<P, G>
where
    P: Protocol<Value = u64>,
    G: ObjectProgram,
{
    /// Layer `inner` over the given per-object programs (`None` = native
    /// pass-through).
    ///
    /// # Panics
    ///
    /// Panics if the program count differs from the inner object count, or
    /// if a program's derived schema differs from the schema the inner
    /// protocol declares for that object (the derived facade must offer
    /// exactly the capabilities the inner protocol was checked against).
    pub fn new(inner: P, programs: Vec<Option<G>>) -> Self {
        assert_eq!(
            programs.len(),
            inner.num_objects(),
            "one program slot per inner object"
        );
        let mut base_start = Vec::with_capacity(programs.len() + 1);
        let mut next = 0usize;
        for (h, program) in programs.iter().enumerate() {
            base_start.push(next);
            match program {
                Some(p) => {
                    assert_eq!(
                        p.object_schema(),
                        inner.schema(ObjectId(h)),
                        "program for object {h} implements a different schema \
                         than the inner protocol declares"
                    );
                    next += p.num_base_objects();
                }
                None => next += 1,
            }
        }
        base_start.push(next);
        LayeredProtocol {
            inner,
            programs,
            base_start,
        }
    }

    /// The inner protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The flattened slot of base object `offset` within inner object `h`.
    fn flat(&self, h: usize, offset: usize) -> ObjectId {
        debug_assert!(self.base_start[h] + offset < self.base_start[h + 1]);
        ObjectId(self.base_start[h] + offset)
    }

    /// Decompose a flattened slot into `(inner object index, offset)`.
    fn decompose(&self, obj: ObjectId) -> (usize, usize) {
        let i = obj.index();
        assert!(i < *self.base_start.last().unwrap(), "object {obj} out of range");
        // partition_point: first h with base_start[h] > i, minus one.
        let h = self.base_start.partition_point(|&s| s <= i) - 1;
        (h, i - self.base_start[h])
    }
}

impl<P> LayeredProtocol<P, AspnesOneBitSwap>
where
    P: Protocol<Value = u64>,
{
    /// Layer `inner` with **every** object derived as an
    /// [`AspnesOneBitSwap`] with the given alternation budget. Every inner
    /// object must be a readable binary swap; each program's initial bit is
    /// the inner object's initial value.
    pub fn derive_swaps(inner: P, capacity: usize) -> Self {
        let programs = (0..inner.num_objects())
            .map(|h| {
                let init = inner.initial_value(ObjectId(h));
                Some(AspnesOneBitSwap::new(capacity, init))
            })
            .collect();
        LayeredProtocol::new(inner, programs)
    }
}

impl<P, G> Protocol for LayeredProtocol<P, G>
where
    P: Protocol<Value = u64>,
    G: ObjectProgram + Sync,
{
    type State = LayeredState<P::State, G::Pc>;
    type Value = u64;

    fn name(&self) -> String {
        format!("{} [flattened onto base objects]", self.inner.name())
    }

    fn task(&self) -> KSetTask {
        self.inner.task()
    }

    fn num_objects(&self) -> usize {
        *self.base_start.last().unwrap()
    }

    fn schema(&self, obj: ObjectId) -> ObjectSchema {
        let (h, offset) = self.decompose(obj);
        match &self.programs[h] {
            Some(program) => program.base_schema(offset),
            None => self.inner.schema(ObjectId(h)),
        }
    }

    fn initial_value(&self, obj: ObjectId) -> u64 {
        let (h, offset) = self.decompose(obj);
        match &self.programs[h] {
            Some(program) => program.initial_base_value(offset),
            None => self.inner.initial_value(ObjectId(h)),
        }
    }

    fn initial_state(&self, pid: ProcessId, input: u64) -> Self::State {
        LayeredState {
            inner: self.inner.initial_state(pid, input),
            frame: None,
        }
    }

    fn initial_decision(&self, pid: ProcessId, input: u64) -> Option<u64> {
        self.inner.initial_decision(pid, input)
    }

    fn poised(&self, state: &Self::State) -> (ObjectId, ObjectOp<u64>) {
        let (hobj, op) = self.inner.poised(&state.inner);
        let h = hobj.index();
        match &self.programs[h] {
            None => (self.flat(h, 0), op),
            Some(program) => {
                // Between high-level operations the start counter is
                // recomputed by compiling the inner protocol's poised
                // operation — both are deterministic, so `poised` stays a
                // pure function of the state.
                let pc = match &state.frame {
                    Some((fh, pc)) => {
                        debug_assert_eq!(*fh, h, "frame does not match the poised object");
                        pc.clone()
                    }
                    None => program.compile(&op),
                };
                let (offset, base_op) = program.poised(&pc);
                (self.flat(h, offset), base_op)
            }
        }
    }

    fn observe(&self, state: Self::State, response: Response<u64>) -> Transition<Self::State> {
        let (hobj, op) = self.inner.poised(&state.inner);
        let h = hobj.index();
        match &self.programs[h] {
            None => match self.inner.observe(state.inner, response) {
                Transition::Continue(inner) => {
                    Transition::Continue(LayeredState { inner, frame: None })
                }
                Transition::Decide(d) => Transition::Decide(d),
            },
            Some(program) => {
                let pc = match state.frame {
                    Some((fh, pc)) => {
                        debug_assert_eq!(fh, h, "frame does not match the poised object");
                        pc
                    }
                    None => program.compile(&op),
                };
                match program.observe(pc, response) {
                    ProgramStep::Continue(next) => Transition::Continue(LayeredState {
                        inner: state.inner,
                        frame: Some((h, next)),
                    }),
                    ProgramStep::Return(high) => match self.inner.observe(state.inner, high) {
                        Transition::Continue(inner) => {
                            Transition::Continue(LayeredState { inner, frame: None })
                        }
                        Transition::Decide(d) => Transition::Decide(d),
                    },
                }
            }
        }
    }

    /// The inner protocol's **process** symmetry, lifted. Value
    /// interchangeability and declared object classes are deliberately
    /// dropped: program counters embed operand bits and the flattened
    /// object array reshapes declared blocks, so only renamings whose
    /// object motion is a function of `π` (the inner protocol's
    /// [`Protocol::rename_object`] override) lift soundly.
    fn symmetry(&self) -> Symmetry {
        Symmetry::process_classes(self.inner.symmetry().classes().to_vec())
    }

    fn rename_state(&self, state: &Self::State, renaming: &Renaming) -> Self::State {
        LayeredState {
            inner: self.inner.rename_state(&state.inner, renaming),
            // The frame follows its object: process π(p) is mid-flight on
            // the renamed object, at the same program counter (counters
            // embed alternation counts and operand bits — structural under
            // a process-only renaming).
            frame: state
                .frame
                .as_ref()
                .map(|(h, pc)| (self.inner.rename_object(ObjectId(*h), renaming).index(), pc.clone())),
        }
    }

    fn rename_value(&self, obj: ObjectId, value: &u64, renaming: &Renaming) -> u64 {
        let (h, _) = self.decompose(obj);
        match &self.programs[h] {
            // Base values are alternation counts and claim bits —
            // structural, never renamed.
            Some(_) => *value,
            None => self.inner.rename_value(ObjectId(h), value, renaming),
        }
    }

    fn rename_object(&self, obj: ObjectId, renaming: &Renaming) -> ObjectId {
        let (h, offset) = self.decompose(obj);
        let dst = self.inner.rename_object(ObjectId(h), renaming).index();
        debug_assert!(
            self.base_start[dst + 1] - self.base_start[dst]
                == self.base_start[h + 1] - self.base_start[h],
            "renaming moves object {h} onto {dst}, whose base range differs"
        );
        self.flat(dst, offset)
    }
}

/// Harness protocol for the linearizability gate: each process applies a
/// fixed script of high-level operations (`Swap`/`Read` with one-bit
/// operands) to a single one-bit swap object — object `0` — and decides an
/// integer encoding its full response sequence:
/// `(1 << len) | response bits, first response in the highest bit`.
///
/// Layer it with [`LayeredProtocol::derive_swaps`] to obtain the same
/// scripts over the Aspnes construction; [`swap_outcome_profiles`] collects
/// the terminal decision profiles of either stack.
#[derive(Clone, Debug)]
pub struct SwapScripts {
    init: u64,
    scripts: Vec<Vec<ObjectOp<u64>>>,
}

impl SwapScripts {
    /// A harness over the given per-process scripts and initial bit.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-swap/read script, or operands outside
    /// `{0, 1}` (the derived object under test is a *one-bit* swap).
    pub fn new(init: u64, scripts: Vec<Vec<ObjectOp<u64>>>) -> Self {
        assert!(init <= 1, "the object under test holds one bit");
        assert!(!scripts.is_empty(), "at least one process");
        for script in &scripts {
            assert!(!script.is_empty(), "scripts must be non-empty");
            for op in script {
                match op.as_historyless() {
                    Some(HistorylessOp::Read) => {}
                    Some(HistorylessOp::Swap(v)) if *v <= 1 => {}
                    _ => panic!("scripts are swap/read with one-bit operands, got {op:?}"),
                }
            }
        }
        SwapScripts { init, scripts }
    }

    /// The scripts under test.
    pub fn scripts(&self) -> &[Vec<ObjectOp<u64>>] {
        &self.scripts
    }

    /// Decode one process's decision back into completed swap operations,
    /// with reads modeled as identity edges `r → r` (a read returning `r`
    /// linearizes exactly where a `Swap(r)` returning `r` would).
    pub fn decode_ops(&self, pid: usize, decision: u64) -> Vec<SwapOp<u64>> {
        let script = &self.scripts[pid];
        let len = script.len();
        assert_eq!(decision >> len, 1, "decision {decision:#b} has a bad marker");
        script
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let returned = (decision >> (len - 1 - i)) & 1;
                match op.as_historyless() {
                    Some(HistorylessOp::Swap(v)) => SwapOp::new(*v, returned),
                    Some(HistorylessOp::Read) => SwapOp::new(returned, returned),
                    _ => unreachable!("constructor validated the script"),
                }
            })
            .collect()
    }

    /// Whether a terminal decision profile linearizes as a swap chain from
    /// the initial bit ([`chain_consistent`] over the decoded operations of
    /// every process).
    pub fn profile_chain_consistent(&self, profile: &[u64]) -> bool {
        let ops: Vec<SwapOp<u64>> = profile
            .iter()
            .enumerate()
            .flat_map(|(pid, &d)| self.decode_ops(pid, d))
            .collect();
        chain_consistent(&self.init, &ops)
    }
}

/// Per-process harness state: position in the script and the response bits
/// accumulated so far.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScriptState {
    /// The process running the script (scripts are per-process).
    pub pid: usize,
    /// Next script position.
    pub pos: usize,
    /// Responses received so far, first response in the highest bit.
    pub bits: u64,
}

impl Protocol for SwapScripts {
    type State = ScriptState;
    type Value = u64;

    fn name(&self) -> String {
        "swap-script linearizability harness".into()
    }

    fn task(&self) -> KSetTask {
        // The harness is not a k-set agreement protocol; decisions encode
        // response logs. The task is never checked (the gate drives the
        // engine directly), but `n` sizes the configurations.
        KSetTask::new(self.scripts.len(), self.scripts.len(), 1)
    }

    fn num_objects(&self) -> usize {
        1
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::readable_binary_swap()
    }

    fn initial_value(&self, _obj: ObjectId) -> u64 {
        self.init
    }

    fn initial_state(&self, pid: ProcessId, _input: u64) -> ScriptState {
        ScriptState {
            pid: pid.index(),
            pos: 0,
            bits: 0,
        }
    }

    fn poised(&self, state: &ScriptState) -> (ObjectId, ObjectOp<u64>) {
        (ObjectId(0), self.scripts[state.pid][state.pos].clone())
    }

    fn observe(&self, state: ScriptState, response: Response<u64>) -> Transition<ScriptState> {
        let bit = response.expect_value("swap and read both return the bit") & 1;
        let bits = (state.bits << 1) | bit;
        let pos = state.pos + 1;
        if pos == self.scripts[state.pid].len() {
            Transition::Decide((1 << pos) | bits)
        } else {
            Transition::Continue(ScriptState { pos, bits, ..state })
        }
    }
}

/// Collects the decision profile of every terminal configuration.
struct TerminalProfiles {
    profiles: BTreeSet<Vec<u64>>,
}

impl<P: Protocol> Visitor<P> for TerminalProfiles {
    fn enter(
        &mut self,
        _protocol: &P,
        config: &Configuration<P>,
        _ctx: &NodeCtx<'_>,
        candidates: &[Action],
    ) -> Control {
        if candidates.is_empty() && config.all_decided() {
            self.profiles.insert(
                config
                    .decisions_iter()
                    .map(|d| d.expect("all decided"))
                    .collect(),
            );
        }
        Control::Continue
    }
}

/// Exhaustively explore every interleaving of `protocol` from the all-zero
/// input vector and return the set of terminal decision profiles (one
/// decision per process, in process order).
///
/// # Panics
///
/// Panics if the search exhausts `max_states` before completing — the gate
/// is only meaningful over the *complete* profile set.
pub fn swap_outcome_profiles<P: Protocol>(protocol: &P, max_states: usize) -> BTreeSet<Vec<u64>> {
    let inputs = vec![0u64; protocol.num_processes()];
    let root = Configuration::initial(protocol, &inputs).expect("valid inputs");
    let mut dedup = DedupSet::exact(max_states.min(1 << 12));
    let mut arena = ScheduleArena::new();
    let mut visitor = TerminalProfiles {
        profiles: BTreeSet::new(),
    };
    let stats = Engine::new(Budget::new(usize::MAX, max_states)).run(
        protocol,
        root,
        &mut dedup,
        &mut arena,
        &mut AllRunning,
        &mut Lifo::new(),
        &mut visitor,
    );
    assert!(
        stats.complete(),
        "profile collection must be exhaustive (visited {} states)",
        stats.states
    );
    visitor.profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::assert_equivariant;

    fn swap(v: u64) -> ObjectOp<u64> {
        ObjectOp::swap(v)
    }

    fn read() -> ObjectOp<u64> {
        ObjectOp::read()
    }

    /// The gate proper: for the given scripts, the derived stack's outcome
    /// profiles must all be chain-consistent and a subset of the native
    /// (atomic) stack's profiles.
    fn check_gate(init: u64, scripts: Vec<Vec<ObjectOp<u64>>>, capacity: usize) {
        let native = SwapScripts::new(init, scripts.clone());
        let native_profiles = swap_outcome_profiles(&native, 1 << 20);
        let derived = LayeredProtocol::derive_swaps(SwapScripts::new(init, scripts), capacity);
        let derived_profiles = swap_outcome_profiles(&derived, 1 << 20);
        assert!(!derived_profiles.is_empty());
        for profile in &derived_profiles {
            assert!(
                native.profile_chain_consistent(profile),
                "derived profile {profile:?} does not linearize as a swap chain"
            );
            assert!(
                native_profiles.contains(profile),
                "derived profile {profile:?} is not an atomic-swap outcome"
            );
        }
        // Sanity on the spec side: the atomic object trivially linearizes.
        for profile in &native_profiles {
            assert!(native.profile_chain_consistent(profile));
        }
    }

    #[test]
    fn derived_swap_linearizes_two_contending_swappers() {
        // Both processes force an alternation on the same bit; the classic
        // winner/loser race through TestAndSet plus help-publish.
        check_gate(0, vec![vec![swap(1), swap(0)], vec![swap(1), read()]], 4);
    }

    #[test]
    fn derived_swap_linearizes_invisible_fast_paths() {
        // Swapping in the current bit takes the one-step invisible path;
        // interleaved with a visible swap it must still linearize.
        check_gate(0, vec![vec![swap(0), swap(1)], vec![swap(0), read()]], 4);
        check_gate(1, vec![vec![swap(1)], vec![swap(0), swap(1)]], 4);
    }

    #[test]
    fn derived_swap_linearizes_three_processes() {
        check_gate(0, vec![vec![swap(1)], vec![swap(0)], vec![read(), swap(1)]], 6);
    }

    #[test]
    fn native_pass_through_is_identity() {
        // Layering with no programs at all must not change the protocol's
        // observable behavior or its object pricing.
        let scripts = vec![vec![swap(1), read()], vec![swap(0)]];
        let native = SwapScripts::new(0, scripts.clone());
        let layered: LayeredProtocol<_, AspnesOneBitSwap> =
            LayeredProtocol::new(SwapScripts::new(0, scripts), vec![None]);
        assert_eq!(layered.num_objects(), native.num_objects());
        assert_eq!(layered.schema(ObjectId(0)), native.schema(ObjectId(0)));
        assert_eq!(
            swap_outcome_profiles(&layered, 1 << 16),
            swap_outcome_profiles(&native, 1 << 16)
        );
    }

    #[test]
    fn flattened_layout_prices_the_base_set() {
        // One derived one-bit swap with capacity 3 = 1 max register + 3 TAS
        // bits. That, not the facade, is the space the engine accounts.
        let derived =
            LayeredProtocol::derive_swaps(SwapScripts::new(0, vec![vec![swap(1)]]), 3);
        assert_eq!(derived.num_objects(), 4);
        assert_eq!(
            derived.schema(ObjectId(0)).kind(),
            swapcons_objects::ObjectKind::MaxRegister
        );
        for j in 1..4 {
            assert_eq!(derived.schema(ObjectId(j)), ObjectSchema::test_and_set());
            assert!(derived.schema(ObjectId(j)).kind().is_historyless());
        }
        assert_eq!(derived.initial_value(ObjectId(0)), 0);
    }

    #[test]
    fn layered_harness_is_equivariant() {
        // The lifted (trivial, here: scripts are per-process) symmetry obeys
        // the equivariance contract, mid-frame states included.
        let derived = LayeredProtocol::derive_swaps(
            SwapScripts::new(0, vec![vec![swap(1), swap(0)], vec![swap(1)]]),
            4,
        );
        assert_equivariant(&derived, &[0, 0], 8, 8);
    }

    #[test]
    #[should_panic(expected = "different schema")]
    fn schema_mismatch_is_rejected() {
        // The harness object is a readable binary swap; a program whose
        // derived facade differs (wrong initial bit is fine — wrong schema
        // is not, which we provoke with a mismatching inner) must be caught.
        struct WideSwap(SwapScripts);
        impl Protocol for WideSwap {
            type State = ScriptState;
            type Value = u64;
            fn name(&self) -> String {
                self.0.name()
            }
            fn task(&self) -> KSetTask {
                self.0.task()
            }
            fn num_objects(&self) -> usize {
                1
            }
            fn schema(&self, _obj: ObjectId) -> ObjectSchema {
                ObjectSchema::swap()
            }
            fn initial_value(&self, obj: ObjectId) -> u64 {
                self.0.initial_value(obj)
            }
            fn initial_state(&self, pid: ProcessId, input: u64) -> ScriptState {
                self.0.initial_state(pid, input)
            }
            fn poised(&self, state: &ScriptState) -> (ObjectId, ObjectOp<u64>) {
                self.0.poised(state)
            }
            fn observe(&self, state: ScriptState, r: Response<u64>) -> Transition<ScriptState> {
                self.0.observe(state, r)
            }
        }
        let inner = WideSwap(SwapScripts::new(0, vec![vec![swap(1)]]));
        let _ = LayeredProtocol::new(inner, vec![Some(AspnesOneBitSwap::new(2, 0))]);
    }

    #[test]
    fn decode_round_trips_response_bits() {
        let harness = SwapScripts::new(0, vec![vec![swap(1), read(), swap(0)]]);
        // Responses 0, 1, 1 -> decision 0b1_011.
        let ops = harness.decode_ops(0, 0b1011);
        assert_eq!(
            ops,
            vec![
                SwapOp::new(1, 0),
                SwapOp::new(1, 1), // read 1 modeled as identity edge
                SwapOp::new(0, 1),
            ]
        );
        assert!(harness.profile_chain_consistent(&[0b1011]));
        // Response 1 to the first swap would claim a bit nobody installed.
        assert!(!harness.profile_chain_consistent(&[0b1111]));
    }
}
