//! The strategy-driven search core shared by every exhaustive exploration
//! in the workspace.
//!
//! [`ModelChecker`](crate::explore::ModelChecker) and the lower-bound
//! valency oracle used to be near-duplicate hand-rolled DFS loops; every
//! hot-path lever (copy-on-write scratch children, delta-restore, the
//! schedule arena, symmetry-reduced dedup, budget accounting) had to land
//! twice and their cutoff disciplines drifted. This module owns that loop
//! once. [`Engine::run`] walks the configuration graph of a protocol,
//! deduplicating at **discovery time** through a [`DedupSet`] (exact,
//! symmetry-reduced, or opt-in hash-compacted), recording one
//! [`ScheduleArena`] node per kept edge, generating candidate children on a
//! recycled scratch configuration with
//! [`step_quiet_undoable`](crate::Configuration::step_quiet_undoable) /
//! [`undo_step`](crate::Configuration::undo_step) delta-restore, and
//! enforcing exact depth/state/frontier budgets with a uniform
//! completeness verdict ([`SearchStats::complete`]).
//!
//! The engine is parameterized by three strategies:
//!
//! * an **expansion policy** ([`Expansion`]) — which processes may step
//!   from a node: [`AllRunning`] for the model checker, [`GroupRestricted`]
//!   for the valency oracle, [`PrunedExpansion`] for scheduler-guided
//!   adversary searches;
//! * a **frontier order** ([`Frontier`]) — [`Lifo`] gives the classic DFS;
//!   [`BestFirst`] is a priority queue keyed by a pluggable score, which is
//!   what makes the Lemma 9 cover-and-block and lap-maximizing adversary
//!   searches expressible as searches instead of hand-coded schedules;
//! * a **visitor** ([`Visitor`]) — per-state and per-edge verdicts: safety
//!   plus solo termination for the checker, decided-value collection with
//!   early bivalence exit for the oracle. ([`AdversarySynthesis`] tracks
//!   its objective in the *frontier* instead, where the score is already
//!   being computed for the priority order.)
//!
//! # Budget discipline
//!
//! All accounting happens when a configuration is *discovered*, never when
//! it is popped: each configuration is fingerprinted exactly once, the
//! frontier never holds duplicates, and a child generated while a budget is
//! exhausted marks the search incomplete only if it is genuinely new — a
//! search whose post-budget children are all duplicates drained exactly at
//! the bound and is still exhaustive. (This is the discipline the model
//! checker always had; the valency oracle used to account at pop time and
//! could call an exactly-budget-sized space truncated.)
//!
//! # Writing a new search
//!
//! Pick (or write) one strategy of each kind and hand them to
//! [`Engine::run`]; the strategies keep whatever result the search is
//! after. [`synthesize`] is the worked example: a best-first frontier that
//! scores and records the extremum at discovery time turns the engine into
//! an adversary synthesizer returning the schedule maximizing a
//! caller-defined objective as a replayable witness.
//!
//! # Crash transitions
//!
//! Edges are [`Action`]s, not bare process ids: an expansion policy may
//! emit crash transitions alongside steps. [`CrashBounded`] wraps any inner
//! policy and adds a `Crash(p)` edge for every step candidate `p` while
//! fewer than `max_failures` processes have crashed, which makes the engine
//! enumerate **every crash pattern up to the failure budget** — the model
//! the paper's wait-free/obstruction-free distinction lives in.
//!
//! # Fault tolerance of the engine itself
//!
//! Three engine-level safeguards make long searches interruption-safe:
//! a wall-clock [`Engine::with_deadline`] (graceful partial
//! [`SearchStats`] with `deadline_truncated` set, never an unbounded run),
//! panic isolation around protocol `step` calls (a panicking transition is
//! reported to [`Visitor::step_error`] as [`SimError::Panicked`] and the
//! poisoned scratch child is discarded — the engine never aborts), and
//! checkpoint/resume ([`Checkpointing`], [`SearchImage`],
//! [`Engine::resume`]) with a parity guarantee: a resumed search visits
//! exactly the states, in exactly the order, the uninterrupted search would
//! have.

use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::canon::DedupSet;
use crate::config::{Configuration, SimError};
use crate::ids::{Action, ProcessId};
use crate::protocol::Protocol;
use crate::search::{NodeId, ScheduleArena};

/// Exact search budgets, enforced at discovery time.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum schedule length explored from the root.
    pub max_depth: usize,
    /// Maximum number of distinct configurations (orbits, under reduction)
    /// discovered.
    pub max_states: usize,
    /// Maximum pending-frontier size; exceeding it drops would-be children
    /// and marks the search incomplete, bounding memory even when
    /// `max_states` alone would not.
    pub max_frontier: usize,
}

impl Budget {
    /// A budget with the given depth and state bounds and an unbounded
    /// frontier.
    pub fn new(max_depth: usize, max_states: usize) -> Self {
        Budget {
            max_depth,
            max_states,
            max_frontier: usize::MAX,
        }
    }
}

/// Aggregate counters of one engine run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes dequeued and visited.
    pub states: usize,
    /// Visited nodes with no expansion candidates.
    pub terminal_states: usize,
    /// Length of the longest schedule visited.
    pub deepest: usize,
    /// Largest frontier size observed (memory high-water mark).
    pub peak_frontier: usize,
    /// Whether the visitor stopped the search early ([`Control::Stop`]).
    pub stopped: bool,
    /// A node with expansion candidates sat at the depth horizon: deeper
    /// schedules exist but were not explored.
    pub depth_truncated: bool,
    /// A genuinely new configuration was discarded because the state or
    /// frontier budget was exhausted (or a step error was skipped).
    pub budget_truncated: bool,
    /// The wall-clock deadline ([`Engine::with_deadline`]) expired with
    /// work still pending. Unlike `budget_truncated` this is recoverable:
    /// resuming from a checkpoint clears it.
    pub deadline_truncated: bool,
    /// A [`Checkpointing`] sink asked the search to pause. Like
    /// `deadline_truncated`, cleared on resume.
    pub paused: bool,
}

impl SearchStats {
    fn fresh() -> Self {
        SearchStats {
            states: 0,
            terminal_states: 0,
            deepest: 0,
            peak_frontier: 1,
            stopped: false,
            depth_truncated: false,
            budget_truncated: false,
            deadline_truncated: false,
            paused: false,
        }
    }

    /// `true` if no depth/state/frontier cutoff (or skipped step error)
    /// discarded work and no deadline or pause interrupted the run: the
    /// search covered the whole reachable space.
    pub fn complete(&self) -> bool {
        !self.depth_truncated && !self.budget_truncated && !self.deadline_truncated && !self.paused
    }
}

/// Flow control returned by visitor hooks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep searching.
    Continue,
    /// Abort the search now; [`Engine::run`] returns with
    /// [`SearchStats::stopped`] set (the checker found a violation, the
    /// oracle established bivalence).
    Stop,
}

/// Which transitions may be taken from a node.
pub trait Expansion<P: Protocol> {
    /// Fill `out` (cleared first by the caller contract being: the engine
    /// passes a cleared buffer) with the candidate actions, in the
    /// order their edges should be generated.
    fn candidates(&mut self, protocol: &P, config: &Configuration<P>, out: &mut Vec<Action>);
}

/// Expand every running (undecided, uncrashed) process — the model
/// checker's policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllRunning;

impl<P: Protocol> Expansion<P> for AllRunning {
    fn candidates(&mut self, _protocol: &P, config: &Configuration<P>, out: &mut Vec<Action>) {
        config.running_actions_into(out);
    }
}

/// Expand only the still-running members of a fixed process group — the
/// valency oracle's group-only executions. (Filters on *running* status,
/// not merely "no decision": a crashed process has no decision either but
/// must never step.)
#[derive(Clone, Copy, Debug)]
pub struct GroupRestricted<'a>(pub &'a [ProcessId]);

impl<P: Protocol> Expansion<P> for GroupRestricted<'_> {
    fn candidates(&mut self, _protocol: &P, config: &Configuration<P>, out: &mut Vec<Action>) {
        out.extend(
            self.0
                .iter()
                .copied()
                .filter(|&p| config.decision(p).is_none() && !config.is_crashed(p))
                .map(Action::Step),
        );
    }
}

/// Expansion driven by an arbitrary closure over the configuration —
/// scheduler-pruned adversary searches restrict or reorder the running set
/// (e.g. "only processes poised on a covered object").
pub struct PrunedExpansion<F>(pub F);

impl<P: Protocol, F> Expansion<P> for PrunedExpansion<F>
where
    F: FnMut(&P, &Configuration<P>, &mut Vec<Action>),
{
    fn candidates(&mut self, protocol: &P, config: &Configuration<P>, out: &mut Vec<Action>) {
        (self.0)(protocol, config, out);
    }
}

/// Crash-bounded wrapper: alongside every step candidate the inner policy
/// emits, offer crashing that process — as long as fewer than
/// `max_failures` processes have crashed so far. The engine then
/// exhaustively enumerates **every crash pattern up to the failure budget**
/// interleaved with every schedule, which is exactly the adversary class
/// wait-freedom quantifies over.
///
/// Crash edges are appended after the inner candidates, so a crash-free
/// exploration is a strict prefix of the crash-injected one at every node
/// (DFS order diverges only into the crash branches).
#[derive(Clone, Copy, Debug)]
pub struct CrashBounded<E> {
    /// The wrapped policy producing the step candidates.
    pub inner: E,
    /// Maximum number of processes the adversary may crash (the paper's
    /// `f`). `0` makes this wrapper the identity.
    pub max_failures: usize,
}

impl<E> CrashBounded<E> {
    /// Wrap `inner`, budgeting the adversary at `max_failures` crashes.
    pub fn new(inner: E, max_failures: usize) -> Self {
        CrashBounded {
            inner,
            max_failures,
        }
    }
}

impl<P: Protocol, E: Expansion<P>> Expansion<P> for CrashBounded<E> {
    fn candidates(&mut self, protocol: &P, config: &Configuration<P>, out: &mut Vec<Action>) {
        self.inner.candidates(protocol, config, out);
        if config.num_crashed() >= self.max_failures {
            return;
        }
        // Crash exactly the processes the inner policy lets step: crashing
        // a process the policy would never schedule only removes moves the
        // search was not going to take, so those branches are redundant.
        let steps = out.len();
        for i in 0..steps {
            if let Action::Step(p) = out[i] {
                out.push(Action::Crash(p));
            }
        }
    }
}

impl<F> std::fmt::Debug for PrunedExpansion<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrunedExpansion").finish_non_exhaustive()
    }
}

/// Order in which discovered configurations are visited.
pub trait Frontier<P: Protocol> {
    /// Enqueue a freshly discovered configuration.
    fn push(&mut self, protocol: &P, config: Configuration<P>, node: NodeId, depth: usize);
    /// Dequeue the next configuration to visit.
    fn pop(&mut self) -> Option<(Configuration<P>, NodeId)>;
    /// Number of pending configurations.
    fn len(&self) -> usize;
    /// Whether nothing is pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The pending node ids in *push order* (the order re-pushing them
    /// reproduces this frontier), for checkpointing. Frontiers that cannot
    /// reproduce their order (or choose not to support snapshots) return
    /// `None`; [`Lifo`] — the exhaustive clients' order — supports it.
    fn pending_nodes(&self) -> Option<Vec<NodeId>> {
        None
    }
}

/// Plain LIFO stack: depth-first search, the default order of both
/// rebuilt clients.
#[derive(Debug)]
pub struct Lifo<P: Protocol>(Vec<(Configuration<P>, NodeId)>);

impl<P: Protocol> Lifo<P> {
    /// An empty stack.
    pub fn new() -> Self {
        Lifo(Vec::new())
    }
}

impl<P: Protocol> Default for Lifo<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> Frontier<P> for Lifo<P> {
    fn push(&mut self, _protocol: &P, config: Configuration<P>, node: NodeId, _depth: usize) {
        self.0.push((config, node));
    }

    fn pop(&mut self) -> Option<(Configuration<P>, NodeId)> {
        self.0.pop()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn pending_nodes(&self) -> Option<Vec<NodeId>> {
        Some(self.0.iter().map(|(_, node)| *node).collect())
    }
}

/// Plain FIFO queue: breadth-first search in push order.
///
/// This is the frontier the sharded engine's *resume* path uses
/// ([`crate::explore::ModelChecker::with_threads`]): a sharded run explores
/// in depth-synchronized waves, so every state in its checkpoint image is
/// recorded at its **minimum** depth, and the image frontier is ordered
/// shallowest-first. Re-exploring that frontier FIFO preserves the
/// min-depth invariant by breadth-first induction, which is what makes a
/// resumed report's `deepest` (and every other deterministic counter) match
/// the uninterrupted sharded run exactly.
#[derive(Debug)]
pub struct Fifo<P: Protocol>(std::collections::VecDeque<(Configuration<P>, NodeId)>);

impl<P: Protocol> Fifo<P> {
    /// An empty queue.
    pub fn new() -> Self {
        Fifo(std::collections::VecDeque::new())
    }
}

impl<P: Protocol> Default for Fifo<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> Frontier<P> for Fifo<P> {
    fn push(&mut self, _protocol: &P, config: Configuration<P>, node: NodeId, _depth: usize) {
        self.0.push_back((config, node));
    }

    fn pop(&mut self) -> Option<(Configuration<P>, NodeId)> {
        self.0.pop_front()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn pending_nodes(&self) -> Option<Vec<NodeId>> {
        Some(self.0.iter().map(|(_, node)| *node).collect())
    }
}

/// One pending entry of a [`BestFirst`] frontier: ordered by score, ties
/// broken toward the most recently discovered entry (DFS-like bias), so
/// traversal order is deterministic.
struct Scored<P: Protocol> {
    score: u64,
    seq: u64,
    config: Configuration<P>,
    node: NodeId,
}

impl<P: Protocol> PartialEq for Scored<P> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}

impl<P: Protocol> Eq for Scored<P> {}

impl<P: Protocol> PartialOrd for Scored<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: Protocol> Ord for Scored<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.score, self.seq).cmp(&(other.score, other.seq))
    }
}

/// Priority frontier: always visit the highest-scoring pending
/// configuration next. The score is a pluggable function of the
/// configuration (and its depth) — lap totals for lap-maximizing adversary
/// synthesis, covered-object counts for cover-and-block searches.
pub struct BestFirst<P: Protocol, F> {
    heap: BinaryHeap<Scored<P>>,
    score: F,
    seq: u64,
}

impl<P: Protocol, F: FnMut(&P, &Configuration<P>, usize) -> u64> BestFirst<P, F> {
    /// An empty priority frontier scoring entries with `score(protocol,
    /// config, depth)`.
    pub fn new(score: F) -> Self {
        BestFirst {
            heap: BinaryHeap::new(),
            score,
            seq: 0,
        }
    }
}

impl<P: Protocol, F: FnMut(&P, &Configuration<P>, usize) -> u64> Frontier<P> for BestFirst<P, F> {
    fn push(&mut self, protocol: &P, config: Configuration<P>, node: NodeId, depth: usize) {
        let score = (self.score)(protocol, &config, depth);
        self.seq += 1;
        self.heap.push(Scored {
            score,
            seq: self.seq,
            config,
            node,
        });
    }

    fn pop(&mut self) -> Option<(Configuration<P>, NodeId)> {
        self.heap.pop().map(|s| (s.config, s.node))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<P: Protocol, F> std::fmt::Debug for BestFirst<P, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BestFirst")
            .field("pending", &self.heap.len())
            .finish_non_exhaustive()
    }
}

/// Read-only view of a visited node, handed to [`Visitor::enter`].
#[derive(Debug)]
pub struct NodeCtx<'a> {
    arena: &'a ScheduleArena,
    /// The node's arena id.
    pub node: NodeId,
    /// The node's depth (schedule length from the root).
    pub depth: usize,
}

impl NodeCtx<'_> {
    /// Materialize the schedule from the root to this node — the cold
    /// witness path. Crash transitions project to their process id; use
    /// [`NodeCtx::actions`] when the distinction matters.
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.arena.schedule(self.node)
    }

    /// Materialize the full action sequence (steps *and* crashes) from the
    /// root to this node.
    pub fn actions(&self) -> Vec<Action> {
        self.arena.actions(self.node)
    }
}

/// View of one generated edge, handed to [`Visitor::edge`] and
/// [`Visitor::step_error`]. The edge's arena node is created lazily — only
/// searches that actually need a witness for the edge pay for it.
#[derive(Debug)]
pub struct EdgeCtx<'a> {
    arena: &'a mut ScheduleArena,
    parent: NodeId,
    action: Action,
    node: Option<NodeId>,
}

impl EdgeCtx<'_> {
    /// The edge's transition.
    pub fn action(&self) -> Action {
        self.action
    }

    /// The process the edge steps — or crashes; see [`EdgeCtx::action`].
    pub fn pid(&self) -> ProcessId {
        self.action.pid()
    }

    /// The edge's arena node, created on first use.
    pub fn node(&mut self) -> NodeId {
        let (arena, parent, action) = (&mut *self.arena, self.parent, self.action);
        *self
            .node
            .get_or_insert_with(|| arena.child_action(parent, action))
    }

    /// Materialize the schedule from the root through this edge (pid
    /// projection; see [`EdgeCtx::actions`] for crash fidelity).
    pub fn schedule(&mut self) -> Vec<ProcessId> {
        let node = self.node();
        self.arena.schedule(node)
    }

    /// Materialize the full action sequence from the root through this
    /// edge.
    pub fn actions(&mut self) -> Vec<Action> {
        let node = self.node();
        self.arena.actions(node)
    }
}

/// Per-state and per-edge verdicts of a search.
///
/// Hook order per dequeued node: `enter` (with the node's expansion
/// candidates already computed), then — unless the node is terminal or
/// depth-cut — one `edge` (or `step_error`) call per candidate.
pub trait Visitor<P: Protocol> {
    /// Called once per dequeued node. `candidates` is what the expansion
    /// policy returned for this node (empty means terminal).
    fn enter(
        &mut self,
        protocol: &P,
        config: &Configuration<P>,
        ctx: &NodeCtx<'_>,
        candidates: &[Action],
    ) -> Control;

    /// Called for every generated edge within budget, including edges to
    /// already-known configurations (`is_new == false`), before the child
    /// is enqueued. `decided` is the decision the step produced, if any
    /// (always `None` for crash edges).
    fn edge(
        &mut self,
        _protocol: &P,
        _child: &Configuration<P>,
        _decided: Option<u64>,
        _is_new: bool,
        _ctx: &mut EdgeCtx<'_>,
    ) -> Control {
        Control::Continue
    }

    /// Called when the simulator rejects a candidate step — or when the
    /// protocol's step *panics* (reported as [`SimError::Panicked`]; the
    /// poisoned scratch child is discarded before this hook runs, so the
    /// search state is intact either way). Returning [`Control::Continue`]
    /// skips the edge and marks the search incomplete (the oracle's
    /// policy); returning [`Control::Stop`] aborts (the checker records a
    /// protocol-bug violation).
    fn step_error(&mut self, _protocol: &P, _error: SimError, _ctx: &mut EdgeCtx<'_>) -> Control {
        Control::Stop
    }
}

/// A serializable image of an in-flight search — everything needed to
/// resume it with full parity, minus the configurations themselves (which
/// are generic and are rebuilt by replaying each node's action schedule
/// from the root).
///
/// Produced by [`Checkpointing`] sinks; consumed by [`Engine::resume`].
/// The byte-level encoding and the checksummed snapshot-file format live in
/// [`crate::snapshot`].
#[derive(Clone, Debug)]
pub struct SearchImage {
    /// Counters as of the snapshot; resuming continues from them.
    pub stats: SearchStats,
    /// The schedule arena: one node per kept edge, crash bits included.
    pub arena: ScheduleArena,
    /// Every discovered node in **discovery order**, root first. Resuming
    /// re-inserts them into the dedup set in this exact order, which — under
    /// symmetry reduction — reproduces the same orbit representatives and
    /// therefore the same future dedup verdicts as the uninterrupted run.
    pub discovery: Vec<NodeId>,
    /// The pending frontier in push order ([`Frontier::pending_nodes`]).
    pub frontier: Vec<NodeId>,
}

/// Periodic snapshot hook for [`Engine::run_with`]: after every `interval`
/// visited states (and once more on deadline expiry) the engine hands a
/// fresh [`SearchImage`] to `sink`. The sink returning [`Control::Stop`]
/// *pauses* the search — [`SearchStats::paused`] is set and the run
/// returns; resume later with [`Engine::resume`].
pub struct Checkpointing<'s> {
    /// Snapshot every this many visited states (`0` is treated as `1`).
    pub interval: usize,
    /// Receives each snapshot. `Send` so a sharded run
    /// ([`crate::shard`]) can carry the hook into the worker that performs
    /// the stop-the-world drain; every sink in the workspace (file writers,
    /// image-capturing closures) is already `Send`.
    pub sink: &'s mut (dyn FnMut(&SearchImage) -> Control + Send),
}

impl fmt::Debug for Checkpointing<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpointing")
            .field("interval", &self.interval)
            .finish_non_exhaustive()
    }
}

/// A [`SearchImage`] that cannot seed a resumed search — internally
/// inconsistent (dangling node ids, replay failures, dedup mismatches).
/// Distinct from [`crate::snapshot::SnapshotError`], which covers the
/// file/bytes layer; this is the semantic layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeError {
    /// What was wrong with the image.
    pub reason: String,
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot resume search: {}", self.reason)
    }
}

impl std::error::Error for ResumeError {}

impl ResumeError {
    fn new(reason: impl Into<String>) -> Self {
        ResumeError {
            reason: reason.into(),
        }
    }
}

/// The search core. Owns only the budgets and the optional wall-clock
/// deadline; dedup set, arena, and strategies are caller state so clients
/// can keep using them after the run (materializing witness schedules,
/// reading orbit counts).
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    /// The run's budgets.
    pub budget: Budget,
    /// Optional wall-clock deadline; see [`Engine::with_deadline`].
    pub deadline: Option<Duration>,
}

impl Engine {
    /// An engine with the given budget and no deadline.
    pub fn new(budget: Budget) -> Self {
        Engine {
            budget,
            deadline: None,
        }
    }

    /// Bound the run by wall-clock time. When the deadline expires the run
    /// returns gracefully with partial [`SearchStats`] and
    /// `deadline_truncated` set (and, if checkpointing, takes a final
    /// snapshot first) — never an abort, never an unbounded run.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Search the configuration graph from `root`.
    ///
    /// The root is inserted into `dedup` (if not already present) and
    /// visited first; every further configuration is discovered through the
    /// expansion policy, deduplicated at discovery time, and visited in the
    /// frontier's order.
    #[allow(clippy::too_many_arguments)]
    pub fn run<P, E, F, V>(
        &self,
        protocol: &P,
        root: Configuration<P>,
        dedup: &mut DedupSet<P>,
        arena: &mut ScheduleArena,
        expansion: &mut E,
        frontier: &mut F,
        visitor: &mut V,
    ) -> SearchStats
    where
        P: Protocol,
        E: Expansion<P>,
        F: Frontier<P>,
        V: Visitor<P>,
    {
        self.run_with(
            protocol, root, dedup, arena, expansion, frontier, visitor, None,
        )
    }

    /// [`Engine::run`] with optional periodic checkpointing. Requires a
    /// frontier supporting [`Frontier::pending_nodes`] when `ckpt` is
    /// `Some` (the snapshot must capture the pending work).
    #[allow(clippy::too_many_arguments)]
    pub fn run_with<P, E, F, V>(
        &self,
        protocol: &P,
        root: Configuration<P>,
        dedup: &mut DedupSet<P>,
        arena: &mut ScheduleArena,
        expansion: &mut E,
        frontier: &mut F,
        visitor: &mut V,
        ckpt: Option<Checkpointing<'_>>,
    ) -> SearchStats
    where
        P: Protocol,
        E: Expansion<P>,
        F: Frontier<P>,
        V: Visitor<P>,
    {
        dedup.insert(protocol, &root);
        frontier.push(protocol, root, ScheduleArena::ROOT, 0);
        self.run_impl(
            protocol,
            dedup,
            arena,
            expansion,
            frontier,
            visitor,
            SearchStats::fresh(),
            vec![ScheduleArena::ROOT],
            ckpt,
        )
    }

    /// Resume a search from a [`SearchImage`] with full parity: the resumed
    /// run visits exactly the states, in exactly the order, the
    /// uninterrupted run would have, and ends with identical stats
    /// (up to the cleared `deadline_truncated`/`paused` interruption flags).
    ///
    /// `root` must be the same initial configuration, and `dedup`, `arena`,
    /// `frontier` must be freshly constructed with the same parameters
    /// (same reduction mode, same order) as the interrupted run; the
    /// visitor and expansion must be re-created by the caller likewise.
    /// Discovered configurations are rebuilt by replaying each node's
    /// action schedule from the root and re-inserted in the original
    /// discovery order, which under symmetry reduction reproduces the same
    /// orbit representatives — this is what makes the parity guarantee
    /// hold rather than merely approximate.
    ///
    /// # Errors
    ///
    /// [`ResumeError`] if the image is internally inconsistent: dangling
    /// node ids, schedules that fail to replay, discovery entries that
    /// deduplicate against each other, or a non-empty `dedup`/`frontier`.
    #[allow(clippy::too_many_arguments)]
    pub fn resume<P, E, F, V>(
        &self,
        protocol: &P,
        root: Configuration<P>,
        image: &SearchImage,
        dedup: &mut DedupSet<P>,
        arena: &mut ScheduleArena,
        expansion: &mut E,
        frontier: &mut F,
        visitor: &mut V,
        ckpt: Option<Checkpointing<'_>>,
    ) -> Result<SearchStats, ResumeError>
    where
        P: Protocol,
        E: Expansion<P>,
        F: Frontier<P>,
        V: Visitor<P>,
    {
        if !dedup.is_empty() || !frontier.is_empty() {
            return Err(ResumeError::new(
                "resume requires a fresh dedup set and frontier",
            ));
        }
        if image.discovery.first() != Some(&ScheduleArena::ROOT) {
            return Err(ResumeError::new("discovery order must start at the root"));
        }
        let node_ok =
            |n: NodeId| n == ScheduleArena::ROOT || (n.to_raw() as usize) < image.arena.len();
        if let Some(bad) = image
            .discovery
            .iter()
            .chain(image.frontier.iter())
            .find(|&&n| !node_ok(n))
        {
            return Err(ResumeError::new(format!(
                "node id {} out of range (arena has {} nodes)",
                bad.to_raw(),
                image.arena.len()
            )));
        }
        let rebuild = |node: NodeId| -> Result<Configuration<P>, ResumeError> {
            let mut config = root.clone();
            crate::runner::replay_actions(protocol, &mut config, &image.arena.actions(node))
                .map_err(|e| {
                    ResumeError::new(format!(
                        "schedule of node {} does not replay: {e}",
                        node.to_raw()
                    ))
                })?;
            Ok(config)
        };
        for &node in &image.discovery {
            let config = if node == ScheduleArena::ROOT {
                root.clone()
            } else {
                rebuild(node)?
            };
            if !dedup.insert(protocol, &config) {
                return Err(ResumeError::new(format!(
                    "discovery entry {} deduplicates against an earlier one",
                    node.to_raw()
                )));
            }
        }
        for &node in &image.frontier {
            let config = if node == ScheduleArena::ROOT {
                root.clone()
            } else {
                rebuild(node)?
            };
            let depth = image.arena.depth(node);
            frontier.push(protocol, config, node, depth);
        }
        *arena = image.arena.clone();
        let mut stats = image.stats;
        stats.deadline_truncated = false;
        stats.paused = false;
        Ok(self.run_impl(
            protocol,
            dedup,
            arena,
            expansion,
            frontier,
            visitor,
            stats,
            image.discovery.clone(),
            ckpt,
        ))
    }

    /// The shared search loop: `run_with` seeds a fresh search, `resume`
    /// seeds a restored one; both continue here.
    #[allow(clippy::too_many_arguments)]
    fn run_impl<P, E, F, V>(
        &self,
        protocol: &P,
        dedup: &mut DedupSet<P>,
        arena: &mut ScheduleArena,
        expansion: &mut E,
        frontier: &mut F,
        visitor: &mut V,
        mut stats: SearchStats,
        mut discovery: Vec<NodeId>,
        mut ckpt: Option<Checkpointing<'_>>,
    ) -> SearchStats
    where
        P: Protocol,
        E: Expansion<P>,
        F: Frontier<P>,
        V: Visitor<P>,
    {
        let started = Instant::now();
        let snapshot = |stats: &SearchStats,
                        arena: &ScheduleArena,
                        discovery: &[NodeId],
                        frontier: &F|
         -> SearchImage {
            SearchImage {
                stats: *stats,
                arena: arena.clone(),
                discovery: discovery.to_vec(),
                frontier: frontier
                    .pending_nodes()
                    .expect("checkpointing requires a frontier with pending_nodes support"),
            }
        };
        // Scratch buffers reused across nodes: the expansion candidates and
        // one configuration recycled between candidate children. A child is
        // generated by stepping the scratch in place and — when it is
        // rejected (duplicate or over budget) — *delta-restored*: the undo
        // token rolls back exactly the two mutated slots, so rejected
        // children cost O(1) element writes instead of a state re-copy.
        let mut candidates: Vec<Action> = Vec::new();
        let mut child_scratch: Option<Configuration<P>> = None;
        loop {
            if let Some(deadline) = self.deadline {
                if started.elapsed() >= deadline && !frontier.is_empty() {
                    stats.deadline_truncated = true;
                    if let Some(ckpt) = ckpt.as_mut() {
                        // Final snapshot so the interrupted run is
                        // resumable; its verdict (pause or not) no longer
                        // matters — the run is ending either way.
                        let image = snapshot(&stats, arena, &discovery, frontier);
                        let _ = (ckpt.sink)(&image);
                    }
                    return stats;
                }
            }
            let Some((config, node)) = frontier.pop() else {
                break;
            };
            stats.states += 1;
            let depth = arena.depth(node);
            stats.deepest = stats.deepest.max(depth);
            candidates.clear();
            expansion.candidates(protocol, &config, &mut candidates);
            let ctx = NodeCtx { arena, node, depth };
            if visitor.enter(protocol, &config, &ctx, &candidates) == Control::Stop {
                stats.stopped = true;
                return stats;
            }
            if candidates.is_empty() {
                stats.terminal_states += 1;
                self.maybe_checkpoint(&mut stats, arena, &discovery, frontier, &mut ckpt);
                if stats.paused {
                    return stats;
                }
                continue;
            }
            if depth >= self.budget.max_depth {
                stats.depth_truncated = true;
                self.maybe_checkpoint(&mut stats, arena, &discovery, frontier, &mut ckpt);
                if stats.paused {
                    return stats;
                }
                continue;
            }
            // `true` while the scratch holds exactly `config`'s state (so
            // the next candidate can step it directly); cleared when a kept
            // child leaves the scratch sharing storage with the frontier.
            let mut scratch_synced = false;
            for &action in &candidates {
                let child = match &mut child_scratch {
                    Some(s) => s,
                    None => child_scratch.insert(config.clone()),
                };
                if !scratch_synced {
                    child.clone_state_from(&config);
                }
                scratch_synced = true;
                let stepped = match action {
                    Action::Step(pid) => {
                        // Panic isolation: a protocol whose transition
                        // function panics poisons only this scratch child,
                        // which is discarded below — the search itself
                        // survives and reports through `step_error`.
                        match panic::catch_unwind(AssertUnwindSafe(|| {
                            child.step_quiet_undoable(protocol, pid)
                        })) {
                            Ok(result) => result,
                            Err(payload) => Err(SimError::Panicked {
                                process: pid,
                                message: panic_message(payload),
                            }),
                        }
                    }
                    Action::Crash(pid) => child.crash(pid).map(|undo| (None, undo)),
                };
                match stepped {
                    Ok((decided, undo)) => {
                        if dedup.len() >= self.budget.max_states
                            || frontier.len() >= self.budget.max_frontier
                        {
                            // A budget is exhausted: a child that is already
                            // known costs nothing to discard, but an
                            // *undiscovered* one is genuinely skipped work.
                            if !dedup.contains(protocol, child) {
                                stats.budget_truncated = true;
                            }
                            child.undo_step(undo);
                            continue;
                        }
                        let is_new = dedup.insert(protocol, child);
                        let mut edge = EdgeCtx {
                            arena,
                            parent: node,
                            action,
                            node: None,
                        };
                        if visitor.edge(protocol, child, decided, is_new, &mut edge)
                            == Control::Stop
                        {
                            stats.stopped = true;
                            return stats;
                        }
                        if is_new {
                            let child_node = edge.node();
                            if ckpt.is_some() {
                                discovery.push(child_node);
                            }
                            frontier.push(protocol, child.clone(), child_node, depth + 1);
                            scratch_synced = false;
                        } else {
                            child.undo_step(undo);
                        }
                    }
                    Err(e) => {
                        if matches!(e, SimError::Panicked { .. }) {
                            // The panicking step may have half-mutated the
                            // scratch: poisoned, drop it. (A schema
                            // rejection or crash error mutates nothing and
                            // keeps the scratch synced.)
                            child_scratch = None;
                            scratch_synced = false;
                        }
                        let mut edge = EdgeCtx {
                            arena,
                            parent: node,
                            action,
                            node: None,
                        };
                        match visitor.step_error(protocol, e, &mut edge) {
                            Control::Stop => {
                                stats.stopped = true;
                                return stats;
                            }
                            Control::Continue => stats.budget_truncated = true,
                        }
                    }
                }
            }
            stats.peak_frontier = stats.peak_frontier.max(frontier.len());
            self.maybe_checkpoint(&mut stats, arena, &discovery, frontier, &mut ckpt);
            if stats.paused {
                return stats;
            }
        }
        stats
    }

    /// Snapshot after every `interval` visited states; sets
    /// [`SearchStats::paused`] when the sink asks to stop.
    fn maybe_checkpoint<P: Protocol, F: Frontier<P>>(
        &self,
        stats: &mut SearchStats,
        arena: &ScheduleArena,
        discovery: &[NodeId],
        frontier: &F,
        ckpt: &mut Option<Checkpointing<'_>>,
    ) {
        let Some(ckpt) = ckpt.as_mut() else {
            return;
        };
        if !stats.states.is_multiple_of(ckpt.interval.max(1)) {
            return;
        }
        let image = SearchImage {
            stats: *stats,
            arena: arena.clone(),
            discovery: discovery.to_vec(),
            frontier: frontier
                .pending_nodes()
                .expect("checkpointing requires a frontier with pending_nodes support"),
        };
        if (ckpt.sink)(&image) == Control::Stop {
            stats.paused = true;
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Result of an [`AdversarySynthesis`] search: the extremal schedule as a
/// replayable witness.
#[derive(Clone, Debug)]
pub struct SynthesisReport<P: Protocol> {
    /// The best objective value found.
    pub best_score: u64,
    /// A schedule reaching a configuration with that objective value —
    /// replaying it from the initial configuration reproduces
    /// [`SynthesisReport::config`].
    pub schedule: Vec<ProcessId>,
    /// The extremal configuration itself.
    pub config: Configuration<P>,
    /// Distinct configurations explored.
    pub states: usize,
    /// Whether the whole (depth-bounded) space was covered; `false` means a
    /// state/frontier budget truncated the search, so a better schedule may
    /// exist within the depth bound.
    pub complete: bool,
    /// Longest schedule explored.
    pub deepest: usize,
}

/// Searches for the schedule maximizing a protocol-defined objective — the
/// adversary *synthesis* loop of the Lemma 9 playbook: instead of
/// hand-coding a nasty scheduler (cf.
/// [`LapLeadChasing`](crate::scheduler::LapLeadChasing)), ask the engine
/// for the worst reachable configuration and return the schedule that
/// produces it.
///
/// The search is best-first on the objective (so high-scoring regions are
/// reached before the state budget runs out) and exact: every configuration
/// within the depth/state/frontier budget is visited once, deduplicated
/// exactly, so with ample budgets the returned schedule is the true
/// depth-bounded maximum.
///
/// # Example
///
/// ```
/// use swapcons_sim::engine::AdversarySynthesis;
/// use swapcons_sim::testing::TwoProcessSwapConsensus;
/// use swapcons_sim::Configuration;
///
/// // "Most undecided processes" — maximized before anyone swaps.
/// let initial = Configuration::initial(&TwoProcessSwapConsensus, &[0, 1]).unwrap();
/// let report = AdversarySynthesis::new(4, 1_000)
///     .maximize(&TwoProcessSwapConsensus, &initial, |_, c| {
///         c.running().len() as u64
///     });
/// assert_eq!(report.best_score, 2);
/// assert!(report.schedule.is_empty(), "the initial configuration wins");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AdversarySynthesis {
    /// Search budgets.
    pub budget: Budget,
}

impl AdversarySynthesis {
    /// A synthesizer exploring to the given depth and state budget.
    pub fn new(max_depth: usize, max_states: usize) -> Self {
        AdversarySynthesis {
            budget: Budget::new(max_depth, max_states),
        }
    }

    /// Bound the pending frontier (memory high-water mark).
    pub fn with_frontier_budget(mut self, frontier: usize) -> Self {
        self.budget.max_frontier = frontier;
        self
    }

    /// Search all schedules from `initial` (up to the budgets) for the
    /// configuration maximizing `objective`, and return it with its
    /// schedule.
    ///
    /// The objective is evaluated exactly once per discovered
    /// configuration: the frontier scores entries for its priority order
    /// and tracks the maximum at the same time. Ties keep the
    /// first-discovered configuration, which is deterministic.
    pub fn maximize<P: Protocol>(
        &self,
        protocol: &P,
        initial: &Configuration<P>,
        objective: impl Fn(&P, &Configuration<P>) -> u64,
    ) -> SynthesisReport<P> {
        struct Best<P: Protocol> {
            score: u64,
            node: NodeId,
            config: Configuration<P>,
        }
        /// Best-first frontier that also records the extremum at push time,
        /// so the objective runs once per configuration (scoring can be
        /// expensive — the Lemma 8 pressure objective runs solo
        /// executions).
        struct SynthFrontier<'o, P: Protocol, O> {
            heap: BinaryHeap<Scored<P>>,
            objective: &'o O,
            seq: u64,
            best: Option<Best<P>>,
        }
        impl<P: Protocol, O: Fn(&P, &Configuration<P>) -> u64> Frontier<P> for SynthFrontier<'_, P, O> {
            fn push(
                &mut self,
                protocol: &P,
                config: Configuration<P>,
                node: NodeId,
                _depth: usize,
            ) {
                let score = (self.objective)(protocol, &config);
                if self.best.as_ref().is_none_or(|b| score > b.score) {
                    self.best = Some(Best {
                        score,
                        node,
                        config: config.clone(),
                    });
                }
                self.seq += 1;
                self.heap.push(Scored {
                    score,
                    seq: self.seq,
                    config,
                    node,
                });
            }

            fn pop(&mut self) -> Option<(Configuration<P>, NodeId)> {
                self.heap.pop().map(|s| (s.config, s.node))
            }

            fn len(&self) -> usize {
                self.heap.len()
            }
        }
        /// Nothing to check per state; a rejected step is skipped work
        /// (marks the search incomplete), never a silent abort.
        struct SynthVisitor;
        impl<P: Protocol> Visitor<P> for SynthVisitor {
            fn enter(
                &mut self,
                _protocol: &P,
                _config: &Configuration<P>,
                _ctx: &NodeCtx<'_>,
                _candidates: &[Action],
            ) -> Control {
                Control::Continue
            }

            fn step_error(
                &mut self,
                _protocol: &P,
                _error: SimError,
                _ctx: &mut EdgeCtx<'_>,
            ) -> Control {
                Control::Continue
            }
        }

        let capacity = self.budget.max_states.min(1 << 14);
        let mut dedup: DedupSet<P> = DedupSet::exact(capacity);
        let mut arena = ScheduleArena::new();
        let mut frontier = SynthFrontier {
            heap: BinaryHeap::new(),
            objective: &objective,
            seq: 0,
            best: None,
        };
        let stats = Engine::new(self.budget).run(
            protocol,
            initial.clone(),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut frontier,
            &mut SynthVisitor,
        );
        let best = frontier.best.expect("the root is always discovered");
        SynthesisReport {
            best_score: best.score,
            schedule: arena.schedule(best.node),
            config: best.config,
            states: dedup.len(),
            // The depth horizon *defines* a synthesis search (racing
            // protocols are unbounded); only a state/frontier budget — or
            // a skipped step error — genuinely truncates it.
            complete: !stats.budget_truncated,
            deepest: stats.deepest,
        }
    }
}

/// Convenience: [`AdversarySynthesis::maximize`] from an input vector.
///
/// # Panics
///
/// Panics if the inputs are invalid for the protocol's task.
pub fn synthesize<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    max_depth: usize,
    max_states: usize,
    objective: impl Fn(&P, &Configuration<P>) -> u64,
) -> SynthesisReport<P> {
    let initial = Configuration::initial(protocol, inputs)
        .expect("adversary synthesis requires valid inputs");
    AdversarySynthesis::new(max_depth, max_states).maximize(protocol, &initial, objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use crate::testing::TwoProcessSwapConsensus;

    fn init(inputs: &[u64]) -> Configuration<TwoProcessSwapConsensus> {
        Configuration::initial(&TwoProcessSwapConsensus, inputs).unwrap()
    }

    /// A visitor that records visit order and nothing else.
    struct Recorder {
        depths: Vec<usize>,
    }

    impl<P: Protocol> Visitor<P> for Recorder {
        fn enter(
            &mut self,
            _protocol: &P,
            _config: &Configuration<P>,
            ctx: &NodeCtx<'_>,
            _candidates: &[Action],
        ) -> Control {
            self.depths.push(ctx.depth);
            Control::Continue
        }
    }

    #[test]
    fn lifo_engine_covers_the_two_process_space() {
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let mut visitor = Recorder { depths: Vec::new() };
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut visitor,
        );
        // The known space: 5 configurations (initial, two mids, two
        // terminals), all reachable within depth 2.
        assert_eq!(stats.states, 5);
        assert_eq!(dedup.len(), 5);
        assert!(stats.complete());
        assert!(!stats.stopped);
        assert_eq!(stats.deepest, 2);
        assert_eq!(stats.terminal_states, 2);
        assert_eq!(visitor.depths.len(), 5);
    }

    #[test]
    fn group_restricted_expansion_limits_the_walk() {
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let mut visitor = Recorder { depths: Vec::new() };
        let group = [ProcessId(0)];
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut GroupRestricted(&group),
            &mut Lifo::new(),
            &mut visitor,
        );
        // p0-only executions: initial and the configuration after p0's
        // single swap. p1 never steps.
        assert_eq!(stats.states, 2);
        assert!(stats.complete());
    }

    #[test]
    fn pruned_expansion_sees_the_configuration() {
        // Prune to "p1 only, and only before anyone decided".
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let mut visitor = Recorder { depths: Vec::new() };
        let mut expansion = PrunedExpansion(
            |_: &TwoProcessSwapConsensus,
             c: &Configuration<TwoProcessSwapConsensus>,
             out: &mut Vec<Action>| {
                if c.decided_values().is_empty() {
                    out.extend(
                        c.running()
                            .into_iter()
                            .filter(|p| p.index() == 1)
                            .map(Action::Step),
                    );
                }
            },
        );
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut expansion,
            &mut Lifo::new(),
            &mut visitor,
        );
        // Initial, then p1 decided (terminal for the pruned policy).
        assert_eq!(stats.states, 2);
    }

    #[test]
    fn exact_state_budget_still_reports_complete() {
        // The budget-accounting discipline, pinned at the engine level: a
        // budget of exactly the space size drains without skipping work.
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 5)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut Recorder { depths: Vec::new() },
        );
        assert_eq!(stats.states, 5);
        assert!(stats.complete(), "exactly-sized budget is still exhaustive");
        assert!(!stats.budget_truncated);
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 4)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut Recorder { depths: Vec::new() },
        );
        assert!(!stats.complete(), "one state fewer genuinely truncates");
        assert!(stats.budget_truncated && !stats.depth_truncated);
    }

    #[test]
    fn stop_from_enter_aborts_immediately() {
        struct StopAtDepth1;
        impl<P: Protocol> Visitor<P> for StopAtDepth1 {
            fn enter(
                &mut self,
                _p: &P,
                _c: &Configuration<P>,
                ctx: &NodeCtx<'_>,
                _cands: &[Action],
            ) -> Control {
                if ctx.depth >= 1 {
                    Control::Stop
                } else {
                    Control::Continue
                }
            }
        }
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut StopAtDepth1,
        );
        assert!(stats.stopped);
        assert!(stats.states < 5);
    }

    #[test]
    fn edge_hook_sees_duplicates_and_decisions() {
        struct EdgeLog {
            decided_edges: usize,
            duplicate_edges: usize,
            schedules_ok: bool,
        }
        impl<P: Protocol> Visitor<P> for EdgeLog {
            fn enter(
                &mut self,
                _p: &P,
                _c: &Configuration<P>,
                _ctx: &NodeCtx<'_>,
                _cands: &[Action],
            ) -> Control {
                Control::Continue
            }
            fn edge(
                &mut self,
                _p: &P,
                _child: &Configuration<P>,
                decided: Option<u64>,
                is_new: bool,
                ctx: &mut EdgeCtx<'_>,
            ) -> Control {
                if decided.is_some() {
                    self.decided_edges += 1;
                    let schedule = ctx.schedule();
                    self.schedules_ok &= schedule.last() == Some(&ctx.pid());
                }
                if !is_new {
                    self.duplicate_edges += 1;
                }
                Control::Continue
            }
        }
        let mut visitor = EdgeLog {
            decided_edges: 0,
            duplicate_edges: 0,
            schedules_ok: true,
        };
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        // Unanimous inputs: the two schedule orders converge on the same
        // terminal, so the second order's last edge is a duplicate.
        Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[1, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut visitor,
        );
        // Every edge in this protocol decides; the two orders converge on
        // duplicate terminals.
        assert!(visitor.decided_edges >= 4, "{}", visitor.decided_edges);
        assert!(visitor.duplicate_edges >= 1);
        assert!(visitor.schedules_ok, "edge schedules end with the edge pid");
    }

    #[test]
    fn best_first_visits_high_scores_before_low() {
        // Score = number of decided processes: the best-first engine must
        // reach a terminal configuration before exhausting the mids.
        let mut order: Vec<usize> = Vec::new();
        struct ScoreLog<'a> {
            order: &'a mut Vec<usize>,
        }
        impl<P: Protocol> Visitor<P> for ScoreLog<'_> {
            fn enter(
                &mut self,
                _p: &P,
                c: &Configuration<P>,
                _ctx: &NodeCtx<'_>,
                _cands: &[Action],
            ) -> Control {
                self.order.push(c.decisions_iter().flatten().count());
                Control::Continue
            }
        }
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut BestFirst::new(|_: &TwoProcessSwapConsensus, c: &Configuration<_>, _| {
                c.decisions_iter().flatten().count() as u64
            }),
            &mut ScoreLog { order: &mut order },
        );
        assert_eq!(order.len(), 5);
        // Root first (forced), then the best-first order must surface a
        // fully decided configuration before the last mid.
        let first_terminal = order.iter().position(|&d| d == 2).unwrap();
        let last_mid = order.iter().rposition(|&d| d == 1).unwrap();
        assert!(
            first_terminal < last_mid,
            "best-first must chase decisions: {order:?}"
        );
    }

    #[test]
    fn synthesis_returns_a_replayable_extremal_schedule() {
        // Objective: number of decided processes. The maximum (2) is
        // reached by any length-2 schedule; the witness must replay to the
        // reported configuration.
        let report = synthesize(&TwoProcessSwapConsensus, &[0, 1], 10, 10_000, |_, c| {
            c.decisions_iter().flatten().count() as u64
        });
        assert_eq!(report.best_score, 2);
        assert_eq!(report.schedule.len(), 2);
        assert!(report.complete);
        assert_eq!(report.states, 5);
        let mut replay = init(&[0, 1]);
        runner::replay(&TwoProcessSwapConsensus, &mut replay, &report.schedule).unwrap();
        assert_eq!(replay, report.config, "witness replays to the extremum");
    }

    #[test]
    fn synthesis_objective_zero_keeps_the_root() {
        let report = synthesize(&TwoProcessSwapConsensus, &[3, 4], 10, 10_000, |_, _| 0);
        assert_eq!(report.best_score, 0);
        assert!(report.schedule.is_empty(), "ties keep the first visit");
    }

    #[test]
    fn synthesis_truncation_is_reported() {
        let report = synthesize(&TwoProcessSwapConsensus, &[0, 1], 10, 3, |_, c| {
            c.decisions_iter().flatten().count() as u64
        });
        assert!(!report.complete);
        assert!(report.states <= 3);
    }

    #[test]
    fn crash_bounded_zero_failures_is_the_identity() {
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut CrashBounded::new(AllRunning, 0),
            &mut Lifo::new(),
            &mut Recorder { depths: Vec::new() },
        );
        assert_eq!(stats.states, 5, "f = 0 explores the crash-free space");
        assert!(stats.complete());
    }

    #[test]
    fn crash_bounded_enumerates_every_crash_pattern() {
        struct CrashCensus {
            crashed_configs: usize,
            max_crashed: usize,
        }
        impl<P: Protocol> Visitor<P> for CrashCensus {
            fn enter(
                &mut self,
                _p: &P,
                c: &Configuration<P>,
                _ctx: &NodeCtx<'_>,
                _cands: &[Action],
            ) -> Control {
                let crashed = c.num_crashed();
                if crashed > 0 {
                    self.crashed_configs += 1;
                }
                self.max_crashed = self.max_crashed.max(crashed);
                Control::Continue
            }
        }
        let mut visitor = CrashCensus {
            crashed_configs: 0,
            max_crashed: 0,
        };
        let mut dedup = DedupSet::exact(64);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut CrashBounded::new(AllRunning, 1),
            &mut Lifo::new(),
            &mut visitor,
        );
        assert!(stats.complete());
        assert!(
            stats.states > 5,
            "crash injection must enlarge the space: {}",
            stats.states
        );
        assert!(
            visitor.crashed_configs > 0,
            "crashed configurations visited"
        );
        assert_eq!(visitor.max_crashed, 1, "failure budget respected");
    }

    #[test]
    fn zero_deadline_truncates_gracefully() {
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 10_000))
            .with_deadline(Duration::ZERO)
            .run(
                &TwoProcessSwapConsensus,
                init(&[0, 1]),
                &mut dedup,
                &mut arena,
                &mut AllRunning,
                &mut Lifo::new(),
                &mut Recorder { depths: Vec::new() },
            );
        assert!(stats.deadline_truncated);
        assert!(!stats.complete());
        assert!(!stats.stopped, "a deadline is not a visitor abort");
        assert_eq!(stats.states, 0, "expired before the first visit");
    }

    #[test]
    fn panicking_step_is_isolated_and_reported() {
        use crate::task::KSetTask;
        use swapcons_objects::{ObjectOp, ObjectSchema, Response};

        /// Delegates everything to the two-process consensus protocol but
        /// panics on every observe — a worst-case protocol bug.
        struct PanickyProtocol;
        impl Protocol for PanickyProtocol {
            type State = <TwoProcessSwapConsensus as Protocol>::State;
            type Value = <TwoProcessSwapConsensus as Protocol>::Value;
            fn name(&self) -> String {
                "panicky".into()
            }
            fn task(&self) -> KSetTask {
                TwoProcessSwapConsensus.task()
            }
            fn num_objects(&self) -> usize {
                TwoProcessSwapConsensus.num_objects()
            }
            fn schema(&self, obj: crate::ObjectId) -> ObjectSchema {
                TwoProcessSwapConsensus.schema(obj)
            }
            fn initial_value(&self, obj: crate::ObjectId) -> Self::Value {
                TwoProcessSwapConsensus.initial_value(obj)
            }
            fn initial_state(&self, pid: ProcessId, input: u64) -> Self::State {
                TwoProcessSwapConsensus.initial_state(pid, input)
            }
            fn poised(&self, state: &Self::State) -> (crate::ObjectId, ObjectOp<Self::Value>) {
                TwoProcessSwapConsensus.poised(state)
            }
            fn observe(
                &self,
                _state: Self::State,
                _response: Response<Self::Value>,
            ) -> crate::Transition<Self::State> {
                panic!("injected protocol bug")
            }
        }

        struct PanicLog {
            panics: Vec<(ProcessId, String)>,
        }
        impl Visitor<PanickyProtocol> for PanicLog {
            fn enter(
                &mut self,
                _p: &PanickyProtocol,
                _c: &Configuration<PanickyProtocol>,
                _ctx: &NodeCtx<'_>,
                _cands: &[Action],
            ) -> Control {
                Control::Continue
            }
            fn step_error(
                &mut self,
                _p: &PanickyProtocol,
                error: SimError,
                ctx: &mut EdgeCtx<'_>,
            ) -> Control {
                if let SimError::Panicked { process, message } = error {
                    self.panics.push((process, message));
                    assert_eq!(ctx.pid(), self.panics.last().unwrap().0);
                }
                Control::Continue
            }
        }

        let root = Configuration::initial(&PanickyProtocol, &[0, 1]).unwrap();
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let mut visitor = PanicLog { panics: Vec::new() };
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &PanickyProtocol,
            root,
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut visitor,
        );
        assert!(!stats.stopped, "Continue from step_error keeps searching");
        assert_eq!(stats.states, 1, "only the root is reachable");
        assert!(stats.budget_truncated, "skipped edges mark incompleteness");
        assert_eq!(visitor.panics.len(), 2, "both processes' steps panicked");
        assert!(visitor.panics[0].1.contains("injected protocol bug"));
    }

    #[test]
    fn pause_and_resume_have_full_parity() {
        // Uninterrupted baseline.
        let mut dedup = DedupSet::exact(64);
        let mut arena = ScheduleArena::new();
        let mut baseline_visitor = Recorder { depths: Vec::new() };
        let baseline = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut CrashBounded::new(AllRunning, 1),
            &mut Lifo::new(),
            &mut baseline_visitor,
        );
        let baseline_states = dedup.len();

        // Interrupted run: pause at the first snapshot (after 2 states).
        let mut image: Option<SearchImage> = None;
        let mut sink = |img: &SearchImage| {
            image = Some(img.clone());
            Control::Stop
        };
        let mut dedup2 = DedupSet::exact(64);
        let mut arena2 = ScheduleArena::new();
        let mut first_visitor = Recorder { depths: Vec::new() };
        let paused = Engine::new(Budget::new(10, 10_000)).run_with(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup2,
            &mut arena2,
            &mut CrashBounded::new(AllRunning, 1),
            &mut Lifo::new(),
            &mut first_visitor,
            Some(Checkpointing {
                interval: 2,
                sink: &mut sink,
            }),
        );
        assert!(paused.paused);
        assert!(!paused.complete());
        assert_eq!(paused.states, 2);
        let image = image.expect("a snapshot was taken");
        assert_eq!(image.stats.states, 2);

        // Resume with entirely fresh state.
        let mut dedup3 = DedupSet::exact(64);
        let mut arena3 = ScheduleArena::new();
        let mut resumed_visitor = Recorder { depths: Vec::new() };
        let resumed = Engine::new(Budget::new(10, 10_000))
            .resume(
                &TwoProcessSwapConsensus,
                init(&[0, 1]),
                &image,
                &mut dedup3,
                &mut arena3,
                &mut CrashBounded::new(AllRunning, 1),
                &mut Lifo::new(),
                &mut resumed_visitor,
                None,
            )
            .unwrap();
        assert_eq!(resumed, baseline, "stats parity");
        assert_eq!(dedup3.len(), baseline_states, "state-count parity");
        // The resumed run visits exactly the not-yet-visited suffix, in the
        // same order.
        assert_eq!(
            first_visitor.depths.len() + resumed_visitor.depths.len(),
            baseline_visitor.depths.len()
        );
        assert_eq!(
            resumed_visitor.depths,
            baseline_visitor.depths[first_visitor.depths.len()..]
        );
    }

    #[test]
    fn resume_rejects_inconsistent_images() {
        let mut image: Option<SearchImage> = None;
        let mut sink = |img: &SearchImage| {
            image = Some(img.clone());
            Control::Stop
        };
        let mut dedup = DedupSet::exact(64);
        let mut arena = ScheduleArena::new();
        Engine::new(Budget::new(10, 10_000)).run_with(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut Recorder { depths: Vec::new() },
            Some(Checkpointing {
                interval: 1,
                sink: &mut sink,
            }),
        );
        let good = image.unwrap();

        let resume = |img: &SearchImage| {
            let mut dedup = DedupSet::exact(64);
            let mut arena = ScheduleArena::new();
            Engine::new(Budget::new(10, 10_000)).resume(
                &TwoProcessSwapConsensus,
                init(&[0, 1]),
                img,
                &mut dedup,
                &mut arena,
                &mut AllRunning,
                &mut Lifo::new(),
                &mut Recorder { depths: Vec::new() },
                None,
            )
        };
        assert!(resume(&good).is_ok());

        // Dangling frontier node.
        let mut bad = good.clone();
        bad.frontier.push(NodeId::from_raw(9_999));
        assert!(resume(&bad).unwrap_err().reason.contains("out of range"));

        // Discovery not rooted.
        let mut bad = good.clone();
        bad.discovery.remove(0);
        assert!(resume(&bad)
            .unwrap_err()
            .reason
            .contains("start at the root"));

        // Duplicate discovery entry.
        let mut bad = good.clone();
        let last = *bad.discovery.last().unwrap();
        bad.discovery.push(last);
        assert!(resume(&bad).unwrap_err().reason.contains("deduplicates"));
    }
}
