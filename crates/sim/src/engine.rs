//! The strategy-driven search core shared by every exhaustive exploration
//! in the workspace.
//!
//! [`ModelChecker`](crate::explore::ModelChecker) and the lower-bound
//! valency oracle used to be near-duplicate hand-rolled DFS loops; every
//! hot-path lever (copy-on-write scratch children, delta-restore, the
//! schedule arena, symmetry-reduced dedup, budget accounting) had to land
//! twice and their cutoff disciplines drifted. This module owns that loop
//! once. [`Engine::run`] walks the configuration graph of a protocol,
//! deduplicating at **discovery time** through a [`DedupSet`] (exact,
//! symmetry-reduced, or opt-in hash-compacted), recording one
//! [`ScheduleArena`] node per kept edge, generating candidate children on a
//! recycled scratch configuration with
//! [`step_quiet_undoable`](crate::Configuration::step_quiet_undoable) /
//! [`undo_step`](crate::Configuration::undo_step) delta-restore, and
//! enforcing exact depth/state/frontier budgets with a uniform
//! completeness verdict ([`SearchStats::complete`]).
//!
//! The engine is parameterized by three strategies:
//!
//! * an **expansion policy** ([`Expansion`]) — which processes may step
//!   from a node: [`AllRunning`] for the model checker, [`GroupRestricted`]
//!   for the valency oracle, [`PrunedExpansion`] for scheduler-guided
//!   adversary searches;
//! * a **frontier order** ([`Frontier`]) — [`Lifo`] gives the classic DFS;
//!   [`BestFirst`] is a priority queue keyed by a pluggable score, which is
//!   what makes the Lemma 9 cover-and-block and lap-maximizing adversary
//!   searches expressible as searches instead of hand-coded schedules;
//! * a **visitor** ([`Visitor`]) — per-state and per-edge verdicts: safety
//!   plus solo termination for the checker, decided-value collection with
//!   early bivalence exit for the oracle. ([`AdversarySynthesis`] tracks
//!   its objective in the *frontier* instead, where the score is already
//!   being computed for the priority order.)
//!
//! # Budget discipline
//!
//! All accounting happens when a configuration is *discovered*, never when
//! it is popped: each configuration is fingerprinted exactly once, the
//! frontier never holds duplicates, and a child generated while a budget is
//! exhausted marks the search incomplete only if it is genuinely new — a
//! search whose post-budget children are all duplicates drained exactly at
//! the bound and is still exhaustive. (This is the discipline the model
//! checker always had; the valency oracle used to account at pop time and
//! could call an exactly-budget-sized space truncated.)
//!
//! # Writing a new search
//!
//! Pick (or write) one strategy of each kind and hand them to
//! [`Engine::run`]; the strategies keep whatever result the search is
//! after. [`synthesize`] is the worked example: a best-first frontier that
//! scores and records the extremum at discovery time turns the engine into
//! an adversary synthesizer returning the schedule maximizing a
//! caller-defined objective as a replayable witness.

use std::collections::BinaryHeap;

use crate::canon::DedupSet;
use crate::config::{Configuration, SimError};
use crate::ids::ProcessId;
use crate::protocol::Protocol;
use crate::search::{NodeId, ScheduleArena};

/// Exact search budgets, enforced at discovery time.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum schedule length explored from the root.
    pub max_depth: usize,
    /// Maximum number of distinct configurations (orbits, under reduction)
    /// discovered.
    pub max_states: usize,
    /// Maximum pending-frontier size; exceeding it drops would-be children
    /// and marks the search incomplete, bounding memory even when
    /// `max_states` alone would not.
    pub max_frontier: usize,
}

impl Budget {
    /// A budget with the given depth and state bounds and an unbounded
    /// frontier.
    pub fn new(max_depth: usize, max_states: usize) -> Self {
        Budget {
            max_depth,
            max_states,
            max_frontier: usize::MAX,
        }
    }
}

/// Aggregate counters of one engine run.
#[derive(Clone, Copy, Debug)]
pub struct SearchStats {
    /// Nodes dequeued and visited.
    pub states: usize,
    /// Visited nodes with no expansion candidates.
    pub terminal_states: usize,
    /// Length of the longest schedule visited.
    pub deepest: usize,
    /// Largest frontier size observed (memory high-water mark).
    pub peak_frontier: usize,
    /// Whether the visitor stopped the search early ([`Control::Stop`]).
    pub stopped: bool,
    /// A node with expansion candidates sat at the depth horizon: deeper
    /// schedules exist but were not explored.
    pub depth_truncated: bool,
    /// A genuinely new configuration was discarded because the state or
    /// frontier budget was exhausted (or a step error was skipped).
    pub budget_truncated: bool,
}

impl SearchStats {
    /// `true` if no depth/state/frontier cutoff (or skipped step error)
    /// discarded work: the search covered the whole reachable space.
    pub fn complete(&self) -> bool {
        !self.depth_truncated && !self.budget_truncated
    }
}

/// Flow control returned by visitor hooks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep searching.
    Continue,
    /// Abort the search now; [`Engine::run`] returns with
    /// [`SearchStats::stopped`] set (the checker found a violation, the
    /// oracle established bivalence).
    Stop,
}

/// Which processes may step from a node.
pub trait Expansion<P: Protocol> {
    /// Fill `out` (cleared first by the caller contract being: the engine
    /// passes a cleared buffer) with the candidate process ids, in the
    /// order their edges should be generated.
    fn candidates(&mut self, protocol: &P, config: &Configuration<P>, out: &mut Vec<ProcessId>);
}

/// Expand every running (undecided) process — the model checker's policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllRunning;

impl<P: Protocol> Expansion<P> for AllRunning {
    fn candidates(&mut self, _protocol: &P, config: &Configuration<P>, out: &mut Vec<ProcessId>) {
        config.running_into(out);
    }
}

/// Expand only the undecided members of a fixed process group — the valency
/// oracle's group-only executions.
#[derive(Clone, Copy, Debug)]
pub struct GroupRestricted<'a>(pub &'a [ProcessId]);

impl<P: Protocol> Expansion<P> for GroupRestricted<'_> {
    fn candidates(&mut self, _protocol: &P, config: &Configuration<P>, out: &mut Vec<ProcessId>) {
        out.extend(
            self.0
                .iter()
                .copied()
                .filter(|&p| config.decision(p).is_none()),
        );
    }
}

/// Expansion driven by an arbitrary closure over the configuration —
/// scheduler-pruned adversary searches restrict or reorder the running set
/// (e.g. "only processes poised on a covered object").
pub struct PrunedExpansion<F>(pub F);

impl<P: Protocol, F> Expansion<P> for PrunedExpansion<F>
where
    F: FnMut(&P, &Configuration<P>, &mut Vec<ProcessId>),
{
    fn candidates(&mut self, protocol: &P, config: &Configuration<P>, out: &mut Vec<ProcessId>) {
        (self.0)(protocol, config, out);
    }
}

impl<F> std::fmt::Debug for PrunedExpansion<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrunedExpansion").finish_non_exhaustive()
    }
}

/// Order in which discovered configurations are visited.
pub trait Frontier<P: Protocol> {
    /// Enqueue a freshly discovered configuration.
    fn push(&mut self, protocol: &P, config: Configuration<P>, node: NodeId, depth: usize);
    /// Dequeue the next configuration to visit.
    fn pop(&mut self) -> Option<(Configuration<P>, NodeId)>;
    /// Number of pending configurations.
    fn len(&self) -> usize;
    /// Whether nothing is pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Plain LIFO stack: depth-first search, the default order of both
/// rebuilt clients.
#[derive(Debug)]
pub struct Lifo<P: Protocol>(Vec<(Configuration<P>, NodeId)>);

impl<P: Protocol> Lifo<P> {
    /// An empty stack.
    pub fn new() -> Self {
        Lifo(Vec::new())
    }
}

impl<P: Protocol> Default for Lifo<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> Frontier<P> for Lifo<P> {
    fn push(&mut self, _protocol: &P, config: Configuration<P>, node: NodeId, _depth: usize) {
        self.0.push((config, node));
    }

    fn pop(&mut self) -> Option<(Configuration<P>, NodeId)> {
        self.0.pop()
    }

    fn len(&self) -> usize {
        self.0.len()
    }
}

/// One pending entry of a [`BestFirst`] frontier: ordered by score, ties
/// broken toward the most recently discovered entry (DFS-like bias), so
/// traversal order is deterministic.
struct Scored<P: Protocol> {
    score: u64,
    seq: u64,
    config: Configuration<P>,
    node: NodeId,
}

impl<P: Protocol> PartialEq for Scored<P> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}

impl<P: Protocol> Eq for Scored<P> {}

impl<P: Protocol> PartialOrd for Scored<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: Protocol> Ord for Scored<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.score, self.seq).cmp(&(other.score, other.seq))
    }
}

/// Priority frontier: always visit the highest-scoring pending
/// configuration next. The score is a pluggable function of the
/// configuration (and its depth) — lap totals for lap-maximizing adversary
/// synthesis, covered-object counts for cover-and-block searches.
pub struct BestFirst<P: Protocol, F> {
    heap: BinaryHeap<Scored<P>>,
    score: F,
    seq: u64,
}

impl<P: Protocol, F: FnMut(&P, &Configuration<P>, usize) -> u64> BestFirst<P, F> {
    /// An empty priority frontier scoring entries with `score(protocol,
    /// config, depth)`.
    pub fn new(score: F) -> Self {
        BestFirst {
            heap: BinaryHeap::new(),
            score,
            seq: 0,
        }
    }
}

impl<P: Protocol, F: FnMut(&P, &Configuration<P>, usize) -> u64> Frontier<P> for BestFirst<P, F> {
    fn push(&mut self, protocol: &P, config: Configuration<P>, node: NodeId, depth: usize) {
        let score = (self.score)(protocol, &config, depth);
        self.seq += 1;
        self.heap.push(Scored {
            score,
            seq: self.seq,
            config,
            node,
        });
    }

    fn pop(&mut self) -> Option<(Configuration<P>, NodeId)> {
        self.heap.pop().map(|s| (s.config, s.node))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<P: Protocol, F> std::fmt::Debug for BestFirst<P, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BestFirst")
            .field("pending", &self.heap.len())
            .finish_non_exhaustive()
    }
}

/// Read-only view of a visited node, handed to [`Visitor::enter`].
#[derive(Debug)]
pub struct NodeCtx<'a> {
    arena: &'a ScheduleArena,
    /// The node's arena id.
    pub node: NodeId,
    /// The node's depth (schedule length from the root).
    pub depth: usize,
}

impl NodeCtx<'_> {
    /// Materialize the schedule from the root to this node — the cold
    /// witness path.
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.arena.schedule(self.node)
    }
}

/// View of one generated edge, handed to [`Visitor::edge`] and
/// [`Visitor::step_error`]. The edge's arena node is created lazily — only
/// searches that actually need a witness for the edge pay for it.
#[derive(Debug)]
pub struct EdgeCtx<'a> {
    arena: &'a mut ScheduleArena,
    parent: NodeId,
    pid: ProcessId,
    node: Option<NodeId>,
}

impl EdgeCtx<'_> {
    /// The stepping process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The edge's arena node, created on first use.
    pub fn node(&mut self) -> NodeId {
        let (arena, parent, pid) = (&mut *self.arena, self.parent, self.pid);
        *self.node.get_or_insert_with(|| arena.child(parent, pid))
    }

    /// Materialize the schedule from the root through this edge.
    pub fn schedule(&mut self) -> Vec<ProcessId> {
        let node = self.node();
        self.arena.schedule(node)
    }
}

/// Per-state and per-edge verdicts of a search.
///
/// Hook order per dequeued node: `enter` (with the node's expansion
/// candidates already computed), then — unless the node is terminal or
/// depth-cut — one `edge` (or `step_error`) call per candidate.
pub trait Visitor<P: Protocol> {
    /// Called once per dequeued node. `candidates` is what the expansion
    /// policy returned for this node (empty means terminal).
    fn enter(
        &mut self,
        protocol: &P,
        config: &Configuration<P>,
        ctx: &NodeCtx<'_>,
        candidates: &[ProcessId],
    ) -> Control;

    /// Called for every generated edge within budget, including edges to
    /// already-known configurations (`is_new == false`), before the child
    /// is enqueued. `decided` is the decision the step produced, if any.
    fn edge(
        &mut self,
        _protocol: &P,
        _child: &Configuration<P>,
        _decided: Option<u64>,
        _is_new: bool,
        _ctx: &mut EdgeCtx<'_>,
    ) -> Control {
        Control::Continue
    }

    /// Called when the simulator rejects a candidate step. Returning
    /// [`Control::Continue`] skips the edge and marks the search incomplete
    /// (the oracle's policy); returning [`Control::Stop`] aborts (the
    /// checker records a protocol-bug violation).
    fn step_error(&mut self, _protocol: &P, _error: SimError, _ctx: &mut EdgeCtx<'_>) -> Control {
        Control::Stop
    }
}

/// The search core. Owns nothing but the budget; dedup set, arena, and
/// strategies are caller state so clients can keep using them after the
/// run (materializing witness schedules, reading orbit counts).
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    /// The run's budgets.
    pub budget: Budget,
}

impl Engine {
    /// An engine with the given budget.
    pub fn new(budget: Budget) -> Self {
        Engine { budget }
    }

    /// Search the configuration graph from `root`.
    ///
    /// The root is inserted into `dedup` (if not already present) and
    /// visited first; every further configuration is discovered through the
    /// expansion policy, deduplicated at discovery time, and visited in the
    /// frontier's order.
    #[allow(clippy::too_many_arguments)]
    pub fn run<P, E, F, V>(
        &self,
        protocol: &P,
        root: Configuration<P>,
        dedup: &mut DedupSet<P>,
        arena: &mut ScheduleArena,
        expansion: &mut E,
        frontier: &mut F,
        visitor: &mut V,
    ) -> SearchStats
    where
        P: Protocol,
        E: Expansion<P>,
        F: Frontier<P>,
        V: Visitor<P>,
    {
        let mut stats = SearchStats {
            states: 0,
            terminal_states: 0,
            deepest: 0,
            peak_frontier: 1,
            stopped: false,
            depth_truncated: false,
            budget_truncated: false,
        };
        // Scratch buffers reused across nodes: the expansion candidates and
        // one configuration recycled between candidate children. A child is
        // generated by stepping the scratch in place and — when it is
        // rejected (duplicate or over budget) — *delta-restored*: the undo
        // token rolls back exactly the two mutated slots, so rejected
        // children cost O(1) element writes instead of a state re-copy.
        let mut candidates: Vec<ProcessId> = Vec::new();
        let mut child_scratch: Option<Configuration<P>> = None;
        dedup.insert(protocol, &root);
        frontier.push(protocol, root, ScheduleArena::ROOT, 0);
        while let Some((config, node)) = frontier.pop() {
            stats.states += 1;
            let depth = arena.depth(node);
            stats.deepest = stats.deepest.max(depth);
            candidates.clear();
            expansion.candidates(protocol, &config, &mut candidates);
            let ctx = NodeCtx { arena, node, depth };
            if visitor.enter(protocol, &config, &ctx, &candidates) == Control::Stop {
                stats.stopped = true;
                return stats;
            }
            if candidates.is_empty() {
                stats.terminal_states += 1;
                continue;
            }
            if depth >= self.budget.max_depth {
                stats.depth_truncated = true;
                continue;
            }
            // `true` while the scratch holds exactly `config`'s state (so
            // the next candidate can step it directly); cleared when a kept
            // child leaves the scratch sharing storage with the frontier.
            let mut scratch_synced = false;
            for &pid in &candidates {
                let child = match &mut child_scratch {
                    Some(s) => s,
                    None => child_scratch.insert(config.clone()),
                };
                if !scratch_synced {
                    child.clone_state_from(&config);
                }
                scratch_synced = true;
                match child.step_quiet_undoable(protocol, pid) {
                    Ok((decided, undo)) => {
                        if dedup.len() >= self.budget.max_states
                            || frontier.len() >= self.budget.max_frontier
                        {
                            // A budget is exhausted: a child that is already
                            // known costs nothing to discard, but an
                            // *undiscovered* one is genuinely skipped work.
                            if !dedup.contains(protocol, child) {
                                stats.budget_truncated = true;
                            }
                            child.undo_step(undo);
                            continue;
                        }
                        let is_new = dedup.insert(protocol, child);
                        let mut edge = EdgeCtx {
                            arena,
                            parent: node,
                            pid,
                            node: None,
                        };
                        if visitor.edge(protocol, child, decided, is_new, &mut edge)
                            == Control::Stop
                        {
                            stats.stopped = true;
                            return stats;
                        }
                        if is_new {
                            let child_node = edge.node();
                            frontier.push(protocol, child.clone(), child_node, depth + 1);
                            scratch_synced = false;
                        } else {
                            child.undo_step(undo);
                        }
                    }
                    Err(e) => {
                        // A schema rejection mutates nothing, so the scratch
                        // stays synced with `config` on this path.
                        let mut edge = EdgeCtx {
                            arena,
                            parent: node,
                            pid,
                            node: None,
                        };
                        match visitor.step_error(protocol, e, &mut edge) {
                            Control::Stop => {
                                stats.stopped = true;
                                return stats;
                            }
                            Control::Continue => stats.budget_truncated = true,
                        }
                    }
                }
            }
            stats.peak_frontier = stats.peak_frontier.max(frontier.len());
        }
        stats
    }
}

/// Result of an [`AdversarySynthesis`] search: the extremal schedule as a
/// replayable witness.
#[derive(Clone, Debug)]
pub struct SynthesisReport<P: Protocol> {
    /// The best objective value found.
    pub best_score: u64,
    /// A schedule reaching a configuration with that objective value —
    /// replaying it from the initial configuration reproduces
    /// [`SynthesisReport::config`].
    pub schedule: Vec<ProcessId>,
    /// The extremal configuration itself.
    pub config: Configuration<P>,
    /// Distinct configurations explored.
    pub states: usize,
    /// Whether the whole (depth-bounded) space was covered; `false` means a
    /// state/frontier budget truncated the search, so a better schedule may
    /// exist within the depth bound.
    pub complete: bool,
    /// Longest schedule explored.
    pub deepest: usize,
}

/// Searches for the schedule maximizing a protocol-defined objective — the
/// adversary *synthesis* loop of the Lemma 9 playbook: instead of
/// hand-coding a nasty scheduler (cf.
/// [`LapLeadChasing`](crate::scheduler::LapLeadChasing)), ask the engine
/// for the worst reachable configuration and return the schedule that
/// produces it.
///
/// The search is best-first on the objective (so high-scoring regions are
/// reached before the state budget runs out) and exact: every configuration
/// within the depth/state/frontier budget is visited once, deduplicated
/// exactly, so with ample budgets the returned schedule is the true
/// depth-bounded maximum.
///
/// # Example
///
/// ```
/// use swapcons_sim::engine::AdversarySynthesis;
/// use swapcons_sim::testing::TwoProcessSwapConsensus;
/// use swapcons_sim::Configuration;
///
/// // "Most undecided processes" — maximized before anyone swaps.
/// let initial = Configuration::initial(&TwoProcessSwapConsensus, &[0, 1]).unwrap();
/// let report = AdversarySynthesis::new(4, 1_000)
///     .maximize(&TwoProcessSwapConsensus, &initial, |_, c| {
///         c.running().len() as u64
///     });
/// assert_eq!(report.best_score, 2);
/// assert!(report.schedule.is_empty(), "the initial configuration wins");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AdversarySynthesis {
    /// Search budgets.
    pub budget: Budget,
}

impl AdversarySynthesis {
    /// A synthesizer exploring to the given depth and state budget.
    pub fn new(max_depth: usize, max_states: usize) -> Self {
        AdversarySynthesis {
            budget: Budget::new(max_depth, max_states),
        }
    }

    /// Bound the pending frontier (memory high-water mark).
    pub fn with_frontier_budget(mut self, frontier: usize) -> Self {
        self.budget.max_frontier = frontier;
        self
    }

    /// Search all schedules from `initial` (up to the budgets) for the
    /// configuration maximizing `objective`, and return it with its
    /// schedule.
    ///
    /// The objective is evaluated exactly once per discovered
    /// configuration: the frontier scores entries for its priority order
    /// and tracks the maximum at the same time. Ties keep the
    /// first-discovered configuration, which is deterministic.
    pub fn maximize<P: Protocol>(
        &self,
        protocol: &P,
        initial: &Configuration<P>,
        objective: impl Fn(&P, &Configuration<P>) -> u64,
    ) -> SynthesisReport<P> {
        struct Best<P: Protocol> {
            score: u64,
            node: NodeId,
            config: Configuration<P>,
        }
        /// Best-first frontier that also records the extremum at push time,
        /// so the objective runs once per configuration (scoring can be
        /// expensive — the Lemma 8 pressure objective runs solo
        /// executions).
        struct SynthFrontier<'o, P: Protocol, O> {
            heap: BinaryHeap<Scored<P>>,
            objective: &'o O,
            seq: u64,
            best: Option<Best<P>>,
        }
        impl<P: Protocol, O: Fn(&P, &Configuration<P>) -> u64> Frontier<P> for SynthFrontier<'_, P, O> {
            fn push(
                &mut self,
                protocol: &P,
                config: Configuration<P>,
                node: NodeId,
                _depth: usize,
            ) {
                let score = (self.objective)(protocol, &config);
                if self.best.as_ref().is_none_or(|b| score > b.score) {
                    self.best = Some(Best {
                        score,
                        node,
                        config: config.clone(),
                    });
                }
                self.seq += 1;
                self.heap.push(Scored {
                    score,
                    seq: self.seq,
                    config,
                    node,
                });
            }

            fn pop(&mut self) -> Option<(Configuration<P>, NodeId)> {
                self.heap.pop().map(|s| (s.config, s.node))
            }

            fn len(&self) -> usize {
                self.heap.len()
            }
        }
        /// Nothing to check per state; a rejected step is skipped work
        /// (marks the search incomplete), never a silent abort.
        struct SynthVisitor;
        impl<P: Protocol> Visitor<P> for SynthVisitor {
            fn enter(
                &mut self,
                _protocol: &P,
                _config: &Configuration<P>,
                _ctx: &NodeCtx<'_>,
                _candidates: &[ProcessId],
            ) -> Control {
                Control::Continue
            }

            fn step_error(
                &mut self,
                _protocol: &P,
                _error: SimError,
                _ctx: &mut EdgeCtx<'_>,
            ) -> Control {
                Control::Continue
            }
        }

        let capacity = self.budget.max_states.min(1 << 14);
        let mut dedup: DedupSet<P> = DedupSet::exact(capacity);
        let mut arena = ScheduleArena::new();
        let mut frontier = SynthFrontier {
            heap: BinaryHeap::new(),
            objective: &objective,
            seq: 0,
            best: None,
        };
        let stats = Engine::new(self.budget).run(
            protocol,
            initial.clone(),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut frontier,
            &mut SynthVisitor,
        );
        let best = frontier.best.expect("the root is always discovered");
        SynthesisReport {
            best_score: best.score,
            schedule: arena.schedule(best.node),
            config: best.config,
            states: dedup.len(),
            // The depth horizon *defines* a synthesis search (racing
            // protocols are unbounded); only a state/frontier budget — or
            // a skipped step error — genuinely truncates it.
            complete: !stats.budget_truncated,
            deepest: stats.deepest,
        }
    }
}

/// Convenience: [`AdversarySynthesis::maximize`] from an input vector.
///
/// # Panics
///
/// Panics if the inputs are invalid for the protocol's task.
pub fn synthesize<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    max_depth: usize,
    max_states: usize,
    objective: impl Fn(&P, &Configuration<P>) -> u64,
) -> SynthesisReport<P> {
    let initial = Configuration::initial(protocol, inputs)
        .expect("adversary synthesis requires valid inputs");
    AdversarySynthesis::new(max_depth, max_states).maximize(protocol, &initial, objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use crate::testing::TwoProcessSwapConsensus;

    fn init(inputs: &[u64]) -> Configuration<TwoProcessSwapConsensus> {
        Configuration::initial(&TwoProcessSwapConsensus, inputs).unwrap()
    }

    /// A visitor that records visit order and nothing else.
    struct Recorder {
        depths: Vec<usize>,
    }

    impl<P: Protocol> Visitor<P> for Recorder {
        fn enter(
            &mut self,
            _protocol: &P,
            _config: &Configuration<P>,
            ctx: &NodeCtx<'_>,
            _candidates: &[ProcessId],
        ) -> Control {
            self.depths.push(ctx.depth);
            Control::Continue
        }
    }

    #[test]
    fn lifo_engine_covers_the_two_process_space() {
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let mut visitor = Recorder { depths: Vec::new() };
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut visitor,
        );
        // The known space: 5 configurations (initial, two mids, two
        // terminals), all reachable within depth 2.
        assert_eq!(stats.states, 5);
        assert_eq!(dedup.len(), 5);
        assert!(stats.complete());
        assert!(!stats.stopped);
        assert_eq!(stats.deepest, 2);
        assert_eq!(stats.terminal_states, 2);
        assert_eq!(visitor.depths.len(), 5);
    }

    #[test]
    fn group_restricted_expansion_limits_the_walk() {
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let mut visitor = Recorder { depths: Vec::new() };
        let group = [ProcessId(0)];
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut GroupRestricted(&group),
            &mut Lifo::new(),
            &mut visitor,
        );
        // p0-only executions: initial and the configuration after p0's
        // single swap. p1 never steps.
        assert_eq!(stats.states, 2);
        assert!(stats.complete());
    }

    #[test]
    fn pruned_expansion_sees_the_configuration() {
        // Prune to "p1 only, and only before anyone decided".
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let mut visitor = Recorder { depths: Vec::new() };
        let mut expansion = PrunedExpansion(
            |_: &TwoProcessSwapConsensus,
             c: &Configuration<TwoProcessSwapConsensus>,
             out: &mut Vec<ProcessId>| {
                if c.decided_values().is_empty() {
                    out.extend(c.running().into_iter().filter(|p| p.index() == 1));
                }
            },
        );
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut expansion,
            &mut Lifo::new(),
            &mut visitor,
        );
        // Initial, then p1 decided (terminal for the pruned policy).
        assert_eq!(stats.states, 2);
    }

    #[test]
    fn exact_state_budget_still_reports_complete() {
        // The budget-accounting discipline, pinned at the engine level: a
        // budget of exactly the space size drains without skipping work.
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 5)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut Recorder { depths: Vec::new() },
        );
        assert_eq!(stats.states, 5);
        assert!(stats.complete(), "exactly-sized budget is still exhaustive");
        assert!(!stats.budget_truncated);
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 4)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut Recorder { depths: Vec::new() },
        );
        assert!(!stats.complete(), "one state fewer genuinely truncates");
        assert!(stats.budget_truncated && !stats.depth_truncated);
    }

    #[test]
    fn stop_from_enter_aborts_immediately() {
        struct StopAtDepth1;
        impl<P: Protocol> Visitor<P> for StopAtDepth1 {
            fn enter(
                &mut self,
                _p: &P,
                _c: &Configuration<P>,
                ctx: &NodeCtx<'_>,
                _cands: &[ProcessId],
            ) -> Control {
                if ctx.depth >= 1 {
                    Control::Stop
                } else {
                    Control::Continue
                }
            }
        }
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        let stats = Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut StopAtDepth1,
        );
        assert!(stats.stopped);
        assert!(stats.states < 5);
    }

    #[test]
    fn edge_hook_sees_duplicates_and_decisions() {
        struct EdgeLog {
            decided_edges: usize,
            duplicate_edges: usize,
            schedules_ok: bool,
        }
        impl<P: Protocol> Visitor<P> for EdgeLog {
            fn enter(
                &mut self,
                _p: &P,
                _c: &Configuration<P>,
                _ctx: &NodeCtx<'_>,
                _cands: &[ProcessId],
            ) -> Control {
                Control::Continue
            }
            fn edge(
                &mut self,
                _p: &P,
                _child: &Configuration<P>,
                decided: Option<u64>,
                is_new: bool,
                ctx: &mut EdgeCtx<'_>,
            ) -> Control {
                if decided.is_some() {
                    self.decided_edges += 1;
                    let schedule = ctx.schedule();
                    self.schedules_ok &= schedule.last() == Some(&ctx.pid());
                }
                if !is_new {
                    self.duplicate_edges += 1;
                }
                Control::Continue
            }
        }
        let mut visitor = EdgeLog {
            decided_edges: 0,
            duplicate_edges: 0,
            schedules_ok: true,
        };
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        // Unanimous inputs: the two schedule orders converge on the same
        // terminal, so the second order's last edge is a duplicate.
        Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[1, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut visitor,
        );
        // Every edge in this protocol decides; the two orders converge on
        // duplicate terminals.
        assert!(visitor.decided_edges >= 4, "{}", visitor.decided_edges);
        assert!(visitor.duplicate_edges >= 1);
        assert!(visitor.schedules_ok, "edge schedules end with the edge pid");
    }

    #[test]
    fn best_first_visits_high_scores_before_low() {
        // Score = number of decided processes: the best-first engine must
        // reach a terminal configuration before exhausting the mids.
        let mut order: Vec<usize> = Vec::new();
        struct ScoreLog<'a> {
            order: &'a mut Vec<usize>,
        }
        impl<P: Protocol> Visitor<P> for ScoreLog<'_> {
            fn enter(
                &mut self,
                _p: &P,
                c: &Configuration<P>,
                _ctx: &NodeCtx<'_>,
                _cands: &[ProcessId],
            ) -> Control {
                self.order.push(c.decisions_iter().flatten().count());
                Control::Continue
            }
        }
        let mut dedup = DedupSet::exact(16);
        let mut arena = ScheduleArena::new();
        Engine::new(Budget::new(10, 10_000)).run(
            &TwoProcessSwapConsensus,
            init(&[0, 1]),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut BestFirst::new(|_: &TwoProcessSwapConsensus, c: &Configuration<_>, _| {
                c.decisions_iter().flatten().count() as u64
            }),
            &mut ScoreLog { order: &mut order },
        );
        assert_eq!(order.len(), 5);
        // Root first (forced), then the best-first order must surface a
        // fully decided configuration before the last mid.
        let first_terminal = order.iter().position(|&d| d == 2).unwrap();
        let last_mid = order.iter().rposition(|&d| d == 1).unwrap();
        assert!(
            first_terminal < last_mid,
            "best-first must chase decisions: {order:?}"
        );
    }

    #[test]
    fn synthesis_returns_a_replayable_extremal_schedule() {
        // Objective: number of decided processes. The maximum (2) is
        // reached by any length-2 schedule; the witness must replay to the
        // reported configuration.
        let report = synthesize(&TwoProcessSwapConsensus, &[0, 1], 10, 10_000, |_, c| {
            c.decisions_iter().flatten().count() as u64
        });
        assert_eq!(report.best_score, 2);
        assert_eq!(report.schedule.len(), 2);
        assert!(report.complete);
        assert_eq!(report.states, 5);
        let mut replay = init(&[0, 1]);
        runner::replay(&TwoProcessSwapConsensus, &mut replay, &report.schedule).unwrap();
        assert_eq!(replay, report.config, "witness replays to the extremum");
    }

    #[test]
    fn synthesis_objective_zero_keeps_the_root() {
        let report = synthesize(&TwoProcessSwapConsensus, &[3, 4], 10, 10_000, |_, _| 0);
        assert_eq!(report.best_score, 0);
        assert!(report.schedule.is_empty(), "ties keep the first visit");
    }

    #[test]
    fn synthesis_truncation_is_reported() {
        let report = synthesize(&TwoProcessSwapConsensus, &[0, 1], 10, 3, |_, c| {
            c.decisions_iter().flatten().count() as u64
        });
        assert!(!report.complete);
        assert!(report.states <= 3);
    }
}
